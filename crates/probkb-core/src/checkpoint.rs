//! Checkpoint/resume for the grounding loop (DESIGN.md, "Durability").
//!
//! [`ground_checkpointed`] runs Algorithm 1 exactly like
//! [`crate::grounding::ground`], but makes the run durable:
//!
//! * Before iteration 1 it writes a **base snapshot** of the freshly
//!   loaded engine state (`probkb_storage::snapshot`).
//! * After every completed iteration it appends one CRC-guarded frame to
//!   a **write-ahead log** and fsyncs it — the frame carries the exact
//!   new rows, violator set, and post-iteration fact count.
//! * Every [`CheckpointConfig::snapshot_every`] iterations it writes a
//!   fresh snapshot so recovery replays a bounded suffix of the log.
//!
//! A killed run resumes from the newest *valid* snapshot plus WAL
//! replay; torn or corrupted tails are truncated at the first bad frame,
//! damaged snapshots fall back to older ones (ultimately the base
//! snapshot or a fresh start). Because every iteration's effect is
//! recorded as data (not recomputed), a resumed run finishes with
//! **byte-identical** facts and factors to an uninterrupted one.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use probkb_kb::prelude::ProbKb;
use probkb_relational::prelude::{Error as EngineError, Row, Table};
use probkb_storage::error::io_err;
use probkb_storage::format::{
    decode_named_tables, encode_named_tables, get_table, put_table, ByteReader, ByteWriter,
};
use probkb_storage::kbcodec::{encode_kb, kb_digest};
use probkb_storage::snapshot::{list_snapshots, snapshot_file_name, Snapshot, SnapshotBuilder};
use probkb_storage::wal::{scan_wal, WalWriter};
use probkb_storage::{crc32, StorageError};

use crate::engine::{GroundingEngine, ViolatorKey};
use crate::grounding::{
    register_candidates, GroundingConfig, GroundingOutcome, GroundingReport, IterationStats,
};
use crate::relmodel::{load, tpi, FactRegistry};

/// WAL file name inside a checkpoint directory.
pub const WAL_FILE: &str = "grounding.wal";

/// Process exit code used by the crash-injection hook
/// (`PROBKB_CRASH_AFTER_ITER`), distinguishable from panics and normal
/// failures in recovery smoke tests.
pub const CRASH_EXIT_CODE: i32 = 86;

/// Environment variable read by [`CheckpointConfig::with_crash_from_env`]:
/// when set to an iteration number, the run exits with
/// [`CRASH_EXIT_CODE`] right after committing that iteration's WAL frame.
pub const CRASH_ENV_VAR: &str = "PROBKB_CRASH_AFTER_ITER";

/// Durability knobs for [`ground_checkpointed`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding the WAL and snapshots. Created if missing.
    pub dir: PathBuf,
    /// Write a full snapshot every N completed iterations (0 disables
    /// periodic snapshots; the base and final snapshots are always
    /// written).
    pub snapshot_every: usize,
    /// Crash-injection hook: exit the process with [`CRASH_EXIT_CODE`]
    /// immediately after committing this iteration's WAL frame (and its
    /// periodic snapshot, if due). `None` disables.
    pub crash_after_iteration: Option<usize>,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` with a snapshot every 5 iterations.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            snapshot_every: 5,
            crash_after_iteration: None,
        }
    }

    /// Enable the crash hook from [`CRASH_ENV_VAR`] if it is set to a
    /// parseable iteration number.
    pub fn with_crash_from_env(mut self) -> Self {
        if let Ok(v) = std::env::var(CRASH_ENV_VAR) {
            self.crash_after_iteration = v.trim().parse().ok();
        }
        self
    }
}

/// Errors from the checkpointed driver: either the engine failed (same
/// failures [`crate::grounding::ground`] surfaces) or durable storage did.
#[derive(Debug)]
pub enum CheckpointError {
    /// The grounding engine reported an error.
    Engine(EngineError),
    /// Reading or writing checkpoint state failed.
    Storage(StorageError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Engine(e) => write!(f, "engine: {e}"),
            CheckpointError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<EngineError> for CheckpointError {
    fn from(e: EngineError) -> Self {
        CheckpointError::Engine(e)
    }
}

impl From<StorageError> for CheckpointError {
    fn from(e: StorageError) -> Self {
        CheckpointError::Storage(e)
    }
}

/// Result alias for the checkpointed driver.
pub type CheckpointResult<T> = std::result::Result<T, CheckpointError>;

pub(crate) fn corrupt(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Storage(StorageError::Corrupt(msg.into()))
}

/// How a [`ground_checkpointed`] call recovered its starting state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeSummary {
    /// Iteration of the snapshot the state was restored from (`Some(0)`
    /// is the pre-iteration base snapshot); `None` for a fresh start.
    pub snapshot_iteration: Option<usize>,
    /// Completed iterations re-applied from the WAL on top of the
    /// snapshot.
    pub replayed_iterations: usize,
    /// The previous run had already finished (its factor frame was
    /// recovered), so no live grounding work was needed.
    pub completed_on_disk: bool,
}

impl ResumeSummary {
    /// True when any on-disk state was reused.
    pub fn resumed(&self) -> bool {
        self.snapshot_iteration.is_some()
    }
}

/// A grounding outcome plus how it was (re)started.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// The grounding result — byte-identical to an uninterrupted
    /// [`crate::grounding::ground`] run with the same inputs.
    pub outcome: GroundingOutcome,
    /// Recovery provenance.
    pub resume: ResumeSummary,
}

// ---------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------

const REC_BEGIN: u8 = 1;
const REC_PRECLEAN: u8 = 2;
const REC_ITERATION: u8 = 3;
const REC_FACTORS: u8 = 4;

/// One committed iteration, as logged: everything needed to re-apply its
/// effect to a restored engine without re-running the join queries.
#[derive(Debug, Clone)]
struct IterationRecord {
    iteration: usize,
    converged: bool,
    facts_after: usize,
    deleted: usize,
    queries: usize,
    elapsed: Duration,
    violators: Vec<(i64, i64)>,
    new_rows: Vec<Row>,
}

#[derive(Debug, Clone)]
enum WalRecord {
    Begin {
        kb_digest: u32,
        cfg_digest: u32,
        engine: String,
    },
    Preclean {
        deleted: usize,
        violators: Vec<(i64, i64)>,
    },
    Iteration(IterationRecord),
    Factors {
        table: Table,
        queries: usize,
        elapsed: Duration,
    },
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn put_violators(w: &mut ByteWriter, violators: &[(i64, i64)]) {
    w.put_u32(violators.len() as u32);
    for &(e, c) in violators {
        w.put_i64(e);
        w.put_i64(c);
    }
}

fn get_violators(r: &mut ByteReader<'_>) -> probkb_storage::Result<Vec<(i64, i64)>> {
    let n = r.get_u32()? as usize;
    let mut v = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let e = r.get_i64()?;
        let c = r.get_i64()?;
        v.push((e, c));
    }
    Ok(v)
}

fn sorted_violators(set: &HashSet<ViolatorKey>) -> Vec<(i64, i64)> {
    let mut v: Vec<(i64, i64)> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match rec {
        WalRecord::Begin {
            kb_digest,
            cfg_digest,
            engine,
        } => {
            w.put_u8(REC_BEGIN);
            w.put_u32(*kb_digest);
            w.put_u32(*cfg_digest);
            w.put_str(engine);
        }
        WalRecord::Preclean { deleted, violators } => {
            w.put_u8(REC_PRECLEAN);
            w.put_u64(*deleted as u64);
            put_violators(&mut w, violators);
        }
        WalRecord::Iteration(it) => {
            w.put_u8(REC_ITERATION);
            w.put_u64(it.iteration as u64);
            w.put_u8(it.converged as u8);
            w.put_u64(it.facts_after as u64);
            w.put_u64(it.deleted as u64);
            w.put_u64(it.queries as u64);
            w.put_u64(duration_us(it.elapsed));
            put_violators(&mut w, &it.violators);
            let mut rows = Table::empty(crate::relmodel::tpi_schema());
            for row in &it.new_rows {
                rows.push_unchecked(row.clone());
            }
            put_table(&mut w, &rows);
        }
        WalRecord::Factors {
            table,
            queries,
            elapsed,
        } => {
            w.put_u8(REC_FACTORS);
            w.put_u64(*queries as u64);
            w.put_u64(duration_us(*elapsed));
            put_table(&mut w, table);
        }
    }
    w.into_bytes()
}

fn decode_record(payload: &[u8]) -> probkb_storage::Result<WalRecord> {
    let mut r = ByteReader::new(payload);
    let rec = match r.get_u8()? {
        REC_BEGIN => WalRecord::Begin {
            kb_digest: r.get_u32()?,
            cfg_digest: r.get_u32()?,
            engine: r.get_str()?,
        },
        REC_PRECLEAN => WalRecord::Preclean {
            deleted: r.get_u64()? as usize,
            violators: get_violators(&mut r)?,
        },
        REC_ITERATION => {
            let iteration = r.get_u64()? as usize;
            let converged = r.get_u8()? != 0;
            let facts_after = r.get_u64()? as usize;
            let deleted = r.get_u64()? as usize;
            let queries = r.get_u64()? as usize;
            let elapsed = Duration::from_micros(r.get_u64()?);
            let violators = get_violators(&mut r)?;
            let new_rows = get_table(&mut r)?.into_rows();
            WalRecord::Iteration(IterationRecord {
                iteration,
                converged,
                facts_after,
                deleted,
                queries,
                elapsed,
                violators,
                new_rows,
            })
        }
        REC_FACTORS => {
            let queries = r.get_u64()? as usize;
            let elapsed = Duration::from_micros(r.get_u64()?);
            let table = get_table(&mut r)?;
            WalRecord::Factors {
                table,
                queries,
                elapsed,
            }
        }
        tag => {
            return Err(StorageError::Corrupt(format!(
                "unknown WAL record tag {tag}"
            )))
        }
    };
    if !r.is_at_end() {
        return Err(StorageError::Corrupt(format!(
            "WAL record has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(rec)
}

/// Digest of the [`GroundingConfig`] knobs that change a run's *output*
/// (threads and optimize only change scheduling and physical plans,
/// never results, so they are excluded — a run may resume under a
/// different optimizer setting).
pub(crate) fn config_digest(config: &GroundingConfig) -> u32 {
    let mut w = ByteWriter::new();
    w.put_u64(config.max_iterations as u64);
    w.put_u8(config.preclean as u8);
    w.put_u8(config.apply_constraints as u8);
    match config.max_total_facts {
        Some(cap) => {
            w.put_u8(1);
            w.put_u64(cap as u64);
        }
        None => w.put_u8(0),
    }
    crc32(&w.into_bytes())
}

// ---------------------------------------------------------------------
// Snapshot sections
// ---------------------------------------------------------------------

const SEC_META: &str = "meta";
const SEC_KB: &str = "kb";
const SEC_REGISTRY: &str = "registry";
const SEC_STATE: &str = "state";
const SEC_STATS: &str = "stats";
const SEC_FACTITER: &str = "factiter";

#[derive(Debug, Clone, PartialEq, Eq)]
struct SnapshotMeta {
    kb_digest: u32,
    cfg_digest: u32,
    engine: String,
    iteration: usize,
    precleaned: usize,
    converged: bool,
}

fn encode_meta(m: &SnapshotMeta) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(m.kb_digest);
    w.put_u32(m.cfg_digest);
    w.put_str(&m.engine);
    w.put_u64(m.iteration as u64);
    w.put_u64(m.precleaned as u64);
    w.put_u8(m.converged as u8);
    w.into_bytes()
}

fn decode_meta(bytes: &[u8]) -> probkb_storage::Result<SnapshotMeta> {
    let mut r = ByteReader::new(bytes);
    let m = SnapshotMeta {
        kb_digest: r.get_u32()?,
        cfg_digest: r.get_u32()?,
        engine: r.get_str()?,
        iteration: r.get_u64()? as usize,
        precleaned: r.get_u64()? as usize,
        converged: r.get_u8()? != 0,
    };
    if !r.is_at_end() {
        return Err(StorageError::Corrupt("meta has trailing bytes".into()));
    }
    Ok(m)
}

fn encode_registry(registry: &FactRegistry) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_i64(registry.next_id());
    let entries = registry.entries();
    w.put_u64(entries.len() as u64);
    for (key, id) in entries {
        for k in key {
            w.put_i64(k);
        }
        w.put_i64(id);
    }
    w.into_bytes()
}

fn decode_registry(bytes: &[u8]) -> probkb_storage::Result<FactRegistry> {
    let mut r = ByteReader::new(bytes);
    let next_id = r.get_i64()?;
    let n = r.get_u64()? as usize;
    let mut entries = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let mut key = [0i64; 5];
        for k in &mut key {
            *k = r.get_i64()?;
        }
        let id = r.get_i64()?;
        entries.push((key, id));
    }
    if !r.is_at_end() {
        return Err(StorageError::Corrupt("registry has trailing bytes".into()));
    }
    Ok(FactRegistry::from_entries(next_id, entries))
}

fn encode_stats(stats: &[IterationStats]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(stats.len() as u32);
    for s in stats {
        w.put_u64(s.iteration as u64);
        w.put_u64(s.new_facts as u64);
        w.put_u64(s.deleted_facts as u64);
        w.put_u64(s.facts_after as u64);
        w.put_u64(s.queries as u64);
        w.put_u64(duration_us(s.elapsed));
    }
    w.into_bytes()
}

fn decode_stats(bytes: &[u8]) -> probkb_storage::Result<Vec<IterationStats>> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_u32()? as usize;
    let mut stats = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        stats.push(IterationStats {
            iteration: r.get_u64()? as usize,
            new_facts: r.get_u64()? as usize,
            deleted_facts: r.get_u64()? as usize,
            facts_after: r.get_u64()? as usize,
            queries: r.get_u64()? as usize,
            elapsed: Duration::from_micros(r.get_u64()?),
        });
    }
    if !r.is_at_end() {
        return Err(StorageError::Corrupt("stats has trailing bytes".into()));
    }
    Ok(stats)
}

pub(crate) fn encode_factiter(fact_iteration: &HashMap<i64, usize>) -> Vec<u8> {
    let mut pairs: Vec<(i64, usize)> = fact_iteration.iter().map(|(&k, &v)| (k, v)).collect();
    pairs.sort_unstable();
    let mut w = ByteWriter::new();
    w.put_u64(pairs.len() as u64);
    for (id, iteration) in pairs {
        w.put_i64(id);
        w.put_u64(iteration as u64);
    }
    w.into_bytes()
}

pub(crate) fn decode_factiter(bytes: &[u8]) -> probkb_storage::Result<HashMap<i64, usize>> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_u64()? as usize;
    let mut map = HashMap::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let id = r.get_i64()?;
        let iteration = r.get_u64()? as usize;
        map.insert(id, iteration);
    }
    if !r.is_at_end() {
        return Err(StorageError::Corrupt("factiter has trailing bytes".into()));
    }
    Ok(map)
}

// ---------------------------------------------------------------------
// Run state
// ---------------------------------------------------------------------

/// The driver-side mutable state of a grounding run — everything outside
/// the engine that a snapshot must capture.
#[derive(Debug)]
struct RunState {
    registry: FactRegistry,
    precleaned: usize,
    preclean_done: bool,
    iterations: Vec<IterationStats>,
    fact_iteration: HashMap<i64, usize>,
    converged: bool,
    capped: bool,
    factors: Option<(Table, usize, Duration)>,
}

impl RunState {
    fn fresh(registry: FactRegistry, config: &GroundingConfig) -> RunState {
        RunState {
            registry,
            precleaned: 0,
            preclean_done: !config.preclean,
            iterations: Vec::new(),
            fact_iteration: HashMap::new(),
            converged: false,
            capped: false,
            factors: None,
        }
    }

    fn last_iteration(&self) -> usize {
        self.iterations.last().map(|s| s.iteration).unwrap_or(0)
    }
}

fn violator_set(violators: &[(i64, i64)]) -> HashSet<ViolatorKey> {
    violators.iter().copied().collect()
}

/// Re-apply logged WAL records on top of a state restored from a
/// snapshot taken after `snap_iteration`. Records at or before the
/// snapshot are skipped (their effects are already in the state); later
/// ones must form a contiguous run or the candidate is rejected.
fn apply_records(
    engine: &mut dyn GroundingEngine,
    config: &GroundingConfig,
    st: &mut RunState,
    snap_iteration: usize,
    records: &[WalRecord],
) -> CheckpointResult<usize> {
    let mut replayed = 0usize;
    for rec in records {
        match rec {
            WalRecord::Begin { .. } => {
                return Err(corrupt("unexpected mid-log Begin record"));
            }
            WalRecord::Preclean { deleted, violators } => {
                if snap_iteration == 0 && !st.preclean_done {
                    let applied = engine.delete_violators(&violator_set(violators))?;
                    if applied != *deleted {
                        return Err(corrupt(format!(
                            "preclean replay deleted {applied} facts, log says {deleted}"
                        )));
                    }
                    engine.redistribute()?;
                }
                st.precleaned = *deleted;
                st.preclean_done = true;
            }
            WalRecord::Iteration(it) => {
                if it.iteration <= snap_iteration {
                    continue; // already folded into the snapshot
                }
                let expected = st.last_iteration().max(snap_iteration) + 1;
                if it.iteration != expected {
                    return Err(corrupt(format!(
                        "WAL gap: expected iteration {expected}, found {}",
                        it.iteration
                    )));
                }
                let new_facts = it.new_rows.len();
                for row in &it.new_rows {
                    let key = [
                        row[tpi::R].as_int().expect("logged R"),
                        row[tpi::X].as_int().expect("logged x"),
                        row[tpi::C1].as_int().expect("logged C1"),
                        row[tpi::Y].as_int().expect("logged y"),
                        row[tpi::C2].as_int().expect("logged C2"),
                    ];
                    let logged_id = row[tpi::I].as_int().expect("logged id");
                    match st.registry.register(key) {
                        Some(id) if id == logged_id => {}
                        other => {
                            return Err(corrupt(format!(
                                "replay id mismatch: log assigns {logged_id}, registry {other:?}"
                            )));
                        }
                    }
                    st.fact_iteration.insert(logged_id, it.iteration);
                }
                if it.converged {
                    if new_facts != 0 {
                        return Err(corrupt("converged frame carries new rows"));
                    }
                    st.converged = true;
                } else {
                    engine.insert_facts(it.new_rows.clone())?;
                    if config.apply_constraints {
                        let deleted = engine.delete_violators(&violator_set(&it.violators))?;
                        if deleted != it.deleted {
                            return Err(corrupt(format!(
                                "iteration {} replay deleted {deleted} facts, log says {}",
                                it.iteration, it.deleted
                            )));
                        }
                    }
                    engine.redistribute()?;
                }
                let facts_after = engine.fact_count()?;
                if facts_after != it.facts_after {
                    return Err(corrupt(format!(
                        "iteration {} replay left {facts_after} facts, log says {}",
                        it.iteration, it.facts_after
                    )));
                }
                st.iterations.push(IterationStats {
                    iteration: it.iteration,
                    new_facts,
                    deleted_facts: it.deleted,
                    facts_after,
                    queries: it.queries,
                    elapsed: it.elapsed,
                });
                if let Some(cap) = config.max_total_facts {
                    if facts_after > cap {
                        st.capped = true;
                    }
                }
                replayed += 1;
            }
            WalRecord::Factors {
                table,
                queries,
                elapsed,
            } => {
                st.factors = Some((table.clone(), *queries, *elapsed));
            }
        }
    }
    Ok(replayed)
}

/// Restore engine + driver state from one snapshot file, then replay the
/// usable WAL suffix. Any failure rejects this candidate.
#[allow(clippy::too_many_arguments)]
fn try_resume_snapshot(
    engine: &mut dyn GroundingEngine,
    config: &GroundingConfig,
    path: &Path,
    snap_iteration: usize,
    records: &[WalRecord],
    kb_d: u32,
    cfg_d: u32,
    engine_name: &str,
) -> CheckpointResult<(RunState, usize)> {
    let snap = Snapshot::read_from(path)?;
    let meta = decode_meta(snap.section(SEC_META)?)?;
    if meta.kb_digest != kb_d || meta.cfg_digest != cfg_d || meta.engine != engine_name {
        return Err(corrupt(format!(
            "snapshot {} belongs to a different run",
            path.display()
        )));
    }
    if meta.iteration != snap_iteration {
        return Err(corrupt(format!(
            "snapshot {} names iteration {snap_iteration} but records {}",
            path.display(),
            meta.iteration
        )));
    }
    let state = decode_named_tables(snap.section(SEC_STATE)?)?;
    engine.import_state(&state)?;
    let mut st = RunState {
        registry: decode_registry(snap.section(SEC_REGISTRY)?)?,
        precleaned: meta.precleaned,
        preclean_done: !config.preclean || snap_iteration > 0,
        iterations: decode_stats(snap.section(SEC_STATS)?)?,
        fact_iteration: decode_factiter(snap.section(SEC_FACTITER)?)?,
        converged: meta.converged,
        capped: false,
        factors: None,
    };
    if st.last_iteration() != snap_iteration {
        return Err(corrupt("snapshot stats do not reach its iteration"));
    }
    if let (Some(cap), Some(last)) = (config.max_total_facts, st.iterations.last()) {
        if last.facts_after > cap {
            st.capped = true;
        }
    }
    let replayed = apply_records(engine, config, &mut st, snap_iteration, records)?;
    Ok((st, replayed))
}

/// Rebuild the base (iteration-0) state straight from the KB and replay
/// the whole usable WAL — the fallback when every snapshot is damaged
/// but the log survived.
fn try_resume_base(
    engine: &mut dyn GroundingEngine,
    kb: &ProbKb,
    config: &GroundingConfig,
    records: &[WalRecord],
) -> CheckpointResult<(RunState, usize)> {
    let rel = load(kb);
    engine.load(&rel)?;
    let mut st = RunState::fresh(rel.registry, config);
    let replayed = apply_records(engine, config, &mut st, 0, records)?;
    Ok((st, replayed))
}

fn write_snapshot(
    dir: &Path,
    meta: &SnapshotMeta,
    kb_bytes: &[u8],
    engine: &dyn GroundingEngine,
    st: &RunState,
) -> CheckpointResult<()> {
    let state = engine.export_state()?;
    let mut builder = SnapshotBuilder::new();
    builder
        .section(SEC_META, encode_meta(meta))
        .section(SEC_KB, kb_bytes.to_vec())
        .section(SEC_REGISTRY, encode_registry(&st.registry))
        .section(SEC_STATE, encode_named_tables(&state))
        .section(SEC_STATS, encode_stats(&st.iterations))
        .section(SEC_FACTITER, encode_factiter(&st.fact_iteration));
    builder.write_to(&dir.join(snapshot_file_name(meta.iteration)))?;
    Ok(())
}

/// Decode the intact frame prefix of the WAL into records, returning the
/// records and the byte offset the log stays valid up to (frames past a
/// CRC-valid-but-undecodable payload are discarded too).
fn decode_wal(path: &Path) -> CheckpointResult<(Vec<WalRecord>, u64)> {
    let scan = scan_wal(path)?;
    let mut records = Vec::with_capacity(scan.frames.len());
    let mut valid_len = scan.valid_len.min(probkb_storage::wal::WAL_MAGIC.len() as u64);
    for (frame, end) in scan.frames.iter().zip(&scan.frame_ends) {
        match decode_record(frame) {
            Ok(rec) => {
                records.push(rec);
                valid_len = *end;
            }
            Err(_) => break,
        }
    }
    Ok((records, valid_len))
}

fn clear_checkpoint_dir(dir: &Path) {
    for (_, path) in list_snapshots(dir) {
        let _ = fs::remove_file(path);
    }
    let _ = fs::remove_file(dir.join(WAL_FILE));
}

// ---------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------

/// Run Algorithm 1 durably: WAL-log every iteration, snapshot
/// periodically, and — if the checkpoint directory already holds state
/// from a compatible earlier run — resume from the last completed
/// iteration instead of starting over.
///
/// The outcome (facts, factors, fact-iteration map, per-iteration
/// counts) is byte-identical to [`crate::grounding::ground`] with the
/// same `kb`, `engine`, and `config`, whether the run is fresh, resumed
/// once, or resumed many times. On-disk state from a *different* KB,
/// config, or engine is detected by digest and discarded.
pub fn ground_checkpointed(
    kb: &ProbKb,
    engine: &mut dyn GroundingEngine,
    config: &GroundingConfig,
    ckpt: &CheckpointConfig,
) -> CheckpointResult<CheckpointedRun> {
    if let Some(threads) = config.threads {
        engine.set_threads(threads);
    }
    if let Some(optimize) = config.optimize {
        engine.set_optimize(optimize);
    }
    fs::create_dir_all(&ckpt.dir).map_err(|e| io_err(&ckpt.dir, e))?;

    let kb_bytes = encode_kb(kb);
    let kb_d = kb_digest(kb);
    let cfg_d = config_digest(config);
    let engine_name = engine.name().to_string();
    let wal_path = ckpt.dir.join(WAL_FILE);

    // Recover the usable WAL suffix: the log counts only if its Begin
    // frame matches this exact (KB, config, engine) triple.
    let (records, wal_valid_len) = decode_wal(&wal_path)?;
    let wal_ok = matches!(
        records.first(),
        Some(WalRecord::Begin { kb_digest, cfg_digest, engine })
            if *kb_digest == kb_d && *cfg_digest == cfg_d && engine == &engine_name
    );
    let usable: &[WalRecord] = if wal_ok { &records[1..] } else { &[] };

    // Resume cascade: newest snapshot → older snapshots → WAL-only
    // replay from a rebuilt base → fresh start.
    let load_start = Instant::now();
    let mut restored: Option<(RunState, ResumeSummary)> = None;
    for (snap_iteration, path) in list_snapshots(&ckpt.dir) {
        if let Ok((st, replayed)) = try_resume_snapshot(
            engine,
            config,
            &path,
            snap_iteration,
            usable,
            kb_d,
            cfg_d,
            &engine_name,
        ) {
            let completed = st.factors.is_some();
            restored = Some((
                st,
                ResumeSummary {
                    snapshot_iteration: Some(snap_iteration),
                    replayed_iterations: replayed,
                    completed_on_disk: completed,
                },
            ));
            break;
        }
    }
    if restored.is_none() && wal_ok {
        if let Ok((st, replayed)) = try_resume_base(engine, kb, config, usable) {
            let completed = st.factors.is_some();
            restored = Some((
                st,
                ResumeSummary {
                    snapshot_iteration: Some(0),
                    replayed_iterations: replayed,
                    completed_on_disk: completed,
                },
            ));
        }
    }

    let (mut st, resume, mut wal) = match restored {
        Some((st, resume)) => {
            let wal = if wal_ok {
                WalWriter::open_at(&wal_path, wal_valid_len)?
            } else {
                let mut wal = WalWriter::create(&wal_path)?;
                wal.append(&encode_record(&WalRecord::Begin {
                    kb_digest: kb_d,
                    cfg_digest: cfg_d,
                    engine: engine_name.clone(),
                }))?;
                wal.commit()?;
                wal
            };
            (st, resume, wal)
        }
        None => {
            // Fresh start: scrap unusable remnants, load, persist the
            // base snapshot and a new log before doing any work.
            clear_checkpoint_dir(&ckpt.dir);
            let rel = load(kb);
            engine.load(&rel)?;
            let st = RunState::fresh(rel.registry, config);
            write_snapshot(
                &ckpt.dir,
                &SnapshotMeta {
                    kb_digest: kb_d,
                    cfg_digest: cfg_d,
                    engine: engine_name.clone(),
                    iteration: 0,
                    precleaned: 0,
                    converged: false,
                },
                &kb_bytes,
                engine,
                &st,
            )?;
            let mut wal = WalWriter::create(&wal_path)?;
            wal.append(&encode_record(&WalRecord::Begin {
                kb_digest: kb_d,
                cfg_digest: cfg_d,
                engine: engine_name.clone(),
            }))?;
            wal.commit()?;
            let resume = ResumeSummary {
                snapshot_iteration: None,
                replayed_iterations: 0,
                completed_on_disk: false,
            };
            (st, resume, wal)
        }
    };
    let load_time = load_start.elapsed();

    let crash_if_due = |iteration: usize| {
        if ckpt.crash_after_iteration == Some(iteration) {
            eprintln!("[checkpoint] injected crash after iteration {iteration}");
            std::process::exit(CRASH_EXIT_CODE);
        }
    };

    // ----- live run (mirrors ground_loaded step for step) -----
    let mut dirty = false;
    if config.preclean && !st.preclean_done {
        let violators = engine.find_violators()?;
        st.precleaned = engine.delete_violators(&violators)?;
        engine.redistribute()?;
        st.preclean_done = true;
        wal.append(&encode_record(&WalRecord::Preclean {
            deleted: st.precleaned,
            violators: sorted_violators(&violators),
        }))?;
        wal.commit()?;
        dirty = true;
    }

    if !st.converged && !st.capped {
        for iteration in (st.last_iteration() + 1)..=config.max_iterations {
            let start = Instant::now();
            let (candidates, mut queries) = engine.ground_atoms()?;
            let new_rows = register_candidates(&mut st.registry, &candidates);
            let new_facts = new_rows.len();
            for row in &new_rows {
                st.fact_iteration
                    .insert(row[tpi::I].as_int().expect("fact id"), iteration);
            }
            if new_facts == 0 {
                st.converged = true;
                let facts_after = engine.fact_count()?;
                let elapsed = start.elapsed();
                st.iterations.push(IterationStats {
                    iteration,
                    new_facts: 0,
                    deleted_facts: 0,
                    facts_after,
                    queries,
                    elapsed,
                });
                wal.append(&encode_record(&WalRecord::Iteration(IterationRecord {
                    iteration,
                    converged: true,
                    facts_after,
                    deleted: 0,
                    queries,
                    elapsed,
                    violators: Vec::new(),
                    new_rows: Vec::new(),
                })))?;
                wal.commit()?;
                dirty = true;
                crash_if_due(iteration);
                break;
            }
            engine.insert_facts(new_rows.clone())?;

            let mut deleted_facts = 0;
            let mut violators = Vec::new();
            if config.apply_constraints {
                let found = engine.find_violators()?;
                queries += 2; // Type I + Type II violator queries
                deleted_facts = engine.delete_violators(&found)?;
                violators = sorted_violators(&found);
            }
            engine.redistribute()?;

            let facts_after = engine.fact_count()?;
            let elapsed = start.elapsed();
            st.iterations.push(IterationStats {
                iteration,
                new_facts,
                deleted_facts,
                facts_after,
                queries,
                elapsed,
            });
            wal.append(&encode_record(&WalRecord::Iteration(IterationRecord {
                iteration,
                converged: false,
                facts_after,
                deleted: deleted_facts,
                queries,
                elapsed,
                violators,
                new_rows,
            })))?;
            wal.commit()?;
            dirty = true;

            if ckpt.snapshot_every > 0 && iteration % ckpt.snapshot_every == 0 {
                write_snapshot(
                    &ckpt.dir,
                    &SnapshotMeta {
                        kb_digest: kb_d,
                        cfg_digest: cfg_d,
                        engine: engine_name.clone(),
                        iteration,
                        precleaned: st.precleaned,
                        converged: false,
                    },
                    &kb_bytes,
                    engine,
                    &st,
                )?;
            }
            crash_if_due(iteration);

            if let Some(cap) = config.max_total_facts {
                if facts_after > cap {
                    st.capped = true;
                    break;
                }
            }
        }
    }

    // A final snapshot caps how much WAL a later resume must replay.
    if dirty {
        write_snapshot(
            &ckpt.dir,
            &SnapshotMeta {
                kb_digest: kb_d,
                cfg_digest: cfg_d,
                engine: engine_name.clone(),
                iteration: st.last_iteration(),
                precleaned: st.precleaned,
                converged: st.converged,
            },
            &kb_bytes,
            engine,
            &st,
        )?;
    }

    let (factors, factor_queries, factor_time) = match st.factors.take() {
        Some(logged) => logged,
        None => {
            let factor_start = Instant::now();
            let (mut factors, factor_queries) = engine.ground_factors()?;
            crate::grounding::canonicalize_factors(&mut factors);
            let factor_time = factor_start.elapsed();
            wal.append(&encode_record(&WalRecord::Factors {
                table: factors.clone(),
                queries: factor_queries,
                elapsed: factor_time,
            }))?;
            wal.commit()?;
            (factors, factor_queries, factor_time)
        }
    };
    let mut facts = engine.facts()?;
    facts.sort_by_cols(&[tpi::I]);

    let report = GroundingReport {
        engine: engine_name,
        load_time,
        precleaned: st.precleaned,
        converged: st.converged,
        factor_time,
        factor_queries,
        total_facts: facts.len(),
        total_factors: factors.len(),
        iterations: st.iterations,
    };
    Ok(CheckpointedRun {
        outcome: GroundingOutcome {
            facts,
            factors,
            fact_iteration: st.fact_iteration,
            report,
        },
        resume,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounding::ground;
    use crate::semi_naive::SemiNaiveEngine;
    use probkb_kb::prelude::parse;
    use probkb_relational::prelude::Value;
    use probkb_storage::format::encode_table;

    fn chain_kb(n: usize) -> ProbKb {
        let mut text = String::new();
        for i in 0..n {
            text.push_str(&format!("fact 0.9 next(n{}:Node, n{}:Node)\n", i, i + 1));
        }
        text.push_str("rule 1.0 reach(x:Node, y:Node) :- next(x, y)\n");
        text.push_str("rule 1.0 reach(x:Node, y:Node) :- reach(x, z:Node), next(z, y)\n");
        parse(&text).unwrap().build()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "probkb-ckpt-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_checkpointed_run_matches_plain_ground() {
        let kb = chain_kb(6);
        let config = GroundingConfig::default();
        let mut plain_engine = SemiNaiveEngine::new();
        let plain = ground(&kb, &mut plain_engine, &config).unwrap();

        let dir = tmp_dir("fresh");
        let ckpt = CheckpointConfig::new(&dir);
        let mut engine = SemiNaiveEngine::new();
        let run = ground_checkpointed(&kb, &mut engine, &config, &ckpt).unwrap();

        assert!(!run.resume.resumed());
        assert_eq!(
            encode_table(&run.outcome.facts),
            encode_table(&plain.facts)
        );
        assert_eq!(
            encode_table(&run.outcome.factors),
            encode_table(&plain.factors)
        );
        assert_eq!(run.outcome.fact_iteration, plain.fact_iteration);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_run_resumes_without_rework() {
        let kb = chain_kb(5);
        let config = GroundingConfig::default();
        let dir = tmp_dir("done");
        let ckpt = CheckpointConfig::new(&dir);

        let mut engine = SemiNaiveEngine::new();
        let first = ground_checkpointed(&kb, &mut engine, &config, &ckpt).unwrap();

        let mut engine2 = SemiNaiveEngine::new();
        let second = ground_checkpointed(&kb, &mut engine2, &config, &ckpt).unwrap();
        assert!(second.resume.resumed());
        assert!(second.resume.completed_on_disk);
        assert_eq!(
            encode_table(&second.outcome.facts),
            encode_table(&first.outcome.facts)
        );
        assert_eq!(
            encode_table(&second.outcome.factors),
            encode_table(&first.outcome.factors)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_change_invalidates_on_disk_state() {
        let kb = chain_kb(5);
        let dir = tmp_dir("cfg");
        let ckpt = CheckpointConfig::new(&dir);

        let mut engine = SemiNaiveEngine::new();
        let config = GroundingConfig::default();
        ground_checkpointed(&kb, &mut engine, &config, &ckpt).unwrap();

        let changed = GroundingConfig {
            apply_constraints: false,
            ..GroundingConfig::default()
        };
        let mut engine2 = SemiNaiveEngine::new();
        let rerun = ground_checkpointed(&kb, &mut engine2, &changed, &ckpt).unwrap();
        assert!(!rerun.resume.resumed());

        let mut plain = SemiNaiveEngine::new();
        let expected = ground(&kb, &mut plain, &changed).unwrap();
        assert_eq!(
            encode_table(&rerun.outcome.facts),
            encode_table(&expected.facts)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_records_round_trip() {
        let recs = vec![
            WalRecord::Begin {
                kb_digest: 7,
                cfg_digest: 9,
                engine: "ProbKB".into(),
            },
            WalRecord::Preclean {
                deleted: 3,
                violators: vec![(1, 2), (3, 4)],
            },
            WalRecord::Iteration(IterationRecord {
                iteration: 2,
                converged: false,
                facts_after: 11,
                deleted: 1,
                queries: 4,
                elapsed: Duration::from_micros(1234),
                violators: vec![(9, 9)],
                new_rows: vec![vec![
                    Value::Int(5),
                    Value::Int(1),
                    Value::Int(2),
                    Value::Int(3),
                    Value::Int(4),
                    Value::Int(5),
                    Value::Null,
                ]],
            }),
        ];
        for rec in &recs {
            let bytes = encode_record(rec);
            let back = decode_record(&bytes).unwrap();
            assert_eq!(encode_record(&back), bytes);
        }
    }

    #[test]
    fn meta_and_registry_round_trip() {
        let meta = SnapshotMeta {
            kb_digest: 1,
            cfg_digest: 2,
            engine: "ProbKB".into(),
            iteration: 3,
            precleaned: 4,
            converged: true,
        };
        assert_eq!(decode_meta(&encode_meta(&meta)).unwrap(), meta);

        let mut reg = FactRegistry::new();
        reg.register([1, 2, 3, 4, 5]);
        reg.register([6, 7, 8, 9, 10]);
        let back = decode_registry(&encode_registry(&reg)).unwrap();
        assert_eq!(back.entries(), reg.entries());
        assert_eq!(back.next_id(), reg.next_id());
    }
}
