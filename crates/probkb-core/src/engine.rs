//! The [`GroundingEngine`] abstraction: the storage/execution backend
//! Algorithm 1 drives. Three implementations exist — single-node
//! ([`crate::single_node::SingleNodeEngine`], PostgreSQL-style), MPP
//! ([`crate::mpp_engine::MppEngine`], Greenplum-style), and the per-rule
//! Tuffy-T baseline ([`crate::tuffy::TuffyEngine`]).

use std::collections::HashSet;

use probkb_relational::prelude::{Error, Result, Row, Table};

use crate::relmodel::RelationalKb;

/// A `(entity, class)` pair flagged by constraint checking.
pub type ViolatorKey = (i64, i64);

/// Backend operations Algorithm 1 needs. Implementations differ in *how*
/// they store `TΠ`/`Mi` and execute the joins, not in semantics.
pub trait GroundingEngine {
    /// Engine name for reports ("ProbKB", "ProbKB-p", "Tuffy-T", ...).
    fn name(&self) -> &str;

    /// Cap the fork-join worker count the engine may use for batch
    /// grounding queries. Engines that execute serially ignore this; the
    /// default is a no-op so backends stay source-compatible.
    fn set_threads(&mut self, _threads: usize) {}

    /// Toggle the statistics-driven cost-based planner for the engine's
    /// batch queries. Plan choice only changes physical execution (join
    /// order, build sides, motions) — never results, since the driver
    /// canonicalizes row order — so the default is a no-op for backends
    /// without a planner.
    fn set_optimize(&mut self, _optimize: bool) {}

    /// Load the relational KB (the bulkload column of Table 3).
    fn load(&mut self, rel: &RelationalKb) -> Result<()>;

    /// Run every `groundAtoms` query once (Algorithm 1 lines 3–4),
    /// returning deduplicated candidate facts `(R, x, C1, y, C2)` and the
    /// number of queries executed — the paper's `O(k)` vs `O(n)` metric.
    fn ground_atoms(&mut self) -> Result<(Table, usize)>;

    /// Append freshly inferred `TΠ` rows (ids already assigned by the
    /// driver's [`crate::relmodel::FactRegistry`]).
    fn insert_facts(&mut self, rows: Vec<Row>) -> Result<usize>;

    /// Detect entities violating functional constraints (Query 3's
    /// subquery), for both Type I and Type II.
    fn find_violators(&mut self) -> Result<HashSet<ViolatorKey>>;

    /// Delete every fact mentioning a violating `(entity, class)` pair on
    /// either side (Query 3's DELETE; §5.2 removes ambiguous entities
    /// entirely). Returns the number of facts removed.
    fn delete_violators(&mut self, violators: &HashSet<ViolatorKey>) -> Result<usize>;

    /// End-of-iteration hook: `redistribute(TΠ)` in Algorithm 1 line 7.
    /// The MPP engine refreshes its redistributed materialized views here;
    /// single-node engines do nothing.
    fn redistribute(&mut self) -> Result<()>;

    /// Run every `groundFactors` query plus the singleton factors
    /// (Algorithm 1 lines 8–10), returning `TΦ` and the query count.
    fn ground_factors(&mut self) -> Result<(Table, usize)>;

    /// Current number of facts in `TΠ`.
    fn fact_count(&self) -> Result<usize>;

    /// A gathered snapshot of `TΠ`.
    fn facts(&self) -> Result<Table>;

    /// Export the engine's complete mutable state as named tables, for
    /// checkpointing (`probkb_core::checkpoint`). Single-node engines
    /// emit their catalog; the MPP engine emits one entry per segment
    /// slice, named via `probkb_mpp::cluster::slice_checkpoint_name`.
    /// The default errors, keeping backends without durable-state
    /// support source-compatible.
    fn export_state(&self) -> Result<Vec<(String, Table)>> {
        Err(Error::InvalidPlan(format!(
            "engine {} does not support checkpointing",
            self.name()
        )))
    }

    /// Replace the engine's state with a previously exported one. After
    /// a successful import the engine must behave exactly as it did at
    /// export time — same query results, same row orders — so a resumed
    /// run reproduces an uninterrupted one byte for byte.
    fn import_state(&mut self, _state: &[(String, Table)]) -> Result<()> {
        Err(Error::InvalidPlan(format!(
            "engine {} does not support checkpointing",
            self.name()
        )))
    }
}
