//! Durable incremental expansion (DESIGN.md, "Incremental expansion").
//!
//! [`DurableDeltaSession`] wraps a [`DeltaSession`] with the same
//! snapshot + write-ahead-log discipline [`crate::checkpoint`] gives the
//! batch grounding loop:
//!
//! * [`DurableDeltaSession::create`] grounds the base KB and writes a
//!   **base snapshot** (KB, `TΠ`, `TΦ`, derivation schedule) to the
//!   session directory.
//! * Every committed [`DurableDeltaSession::apply_delta`] appends one
//!   CRC-guarded frame to `delta.wal` carrying the *input* delta (facts
//!   and rules, verbatim) plus the expected post-delta fact/factor
//!   counts, then fsyncs before reporting success.
//! * [`DurableDeltaSession::resume`] restores the base snapshot and
//!   re-applies the committed delta suffix. Because
//!   [`DeltaSession::apply_delta`] is deterministic, replay lands on
//!   **byte-identical** facts and factors; the logged counts are checked
//!   after each replayed frame to catch divergence early.
//!
//! A crash between computing a delta and committing its frame simply
//! loses that delta: the torn tail is truncated on resume and the caller
//! re-submits. The crash points are injectable for tests via
//! [`CRASH_MID_DELTA_ENV`] and [`CRASH_AFTER_DELTA_ENV`] (process exits
//! with [`CRASH_EXIT_CODE`], mirroring `PROBKB_CRASH_AFTER_ITER`).

use std::fs;
use std::path::{Path, PathBuf};

use probkb_kb::prelude::{Atom, ClassId, EntityId, Fact, HornRule, ProbKb, RelationId, Var};
use probkb_storage::error::io_err;
use probkb_storage::format::{get_table, put_table, ByteReader, ByteWriter};
use probkb_storage::kbcodec::{decode_kb, encode_kb, kb_digest};
use probkb_storage::snapshot::{Snapshot, SnapshotBuilder};
use probkb_storage::wal::{scan_wal, WalWriter};
use probkb_storage::StorageError;

use crate::checkpoint::{
    config_digest, corrupt, decode_factiter, encode_factiter, CheckpointError, CheckpointResult,
    CRASH_EXIT_CODE,
};
use crate::delta::{DeltaApplied, DeltaSession, KbDelta};
use crate::grounding::GroundingConfig;

/// WAL file name inside a delta-session directory.
pub const DELTA_WAL_FILE: &str = "delta.wal";

/// Base snapshot file name inside a delta-session directory.
pub const DELTA_SNAPSHOT_FILE: &str = "delta-base.snapshot";

/// Env var: crash (exit [`CRASH_EXIT_CODE`]) after *computing* delta
/// number `N` but **before** its WAL frame is appended — the delta is
/// lost and must be re-submitted after resume.
pub const CRASH_MID_DELTA_ENV: &str = "PROBKB_CRASH_MID_DELTA";

/// Env var: crash (exit [`CRASH_EXIT_CODE`]) after delta number `N` is
/// fully committed — resume must replay it byte-identically.
pub const CRASH_AFTER_DELTA_ENV: &str = "PROBKB_CRASH_AFTER_DELTA";

/// WAL record tag for a committed delta (the batch checkpoint module
/// uses tags 1–4; sharing the numbering space keeps files unambiguous).
const REC_DELTA: u8 = 5;

// ---------------------------------------------------------------------
// Delta record codec
// ---------------------------------------------------------------------

fn put_var(w: &mut ByteWriter, v: Var) {
    w.put_u8(match v {
        Var::X => 0,
        Var::Y => 1,
        Var::Z => 2,
    });
}

fn get_var(r: &mut ByteReader<'_>) -> probkb_storage::Result<Var> {
    match r.get_u8()? {
        0 => Ok(Var::X),
        1 => Ok(Var::Y),
        2 => Ok(Var::Z),
        t => Err(StorageError::Corrupt(format!("bad var tag {t}"))),
    }
}

fn put_atom(w: &mut ByteWriter, atom: &Atom) {
    w.put_u32(atom.rel.0);
    put_var(w, atom.a);
    put_var(w, atom.b);
}

fn get_atom(r: &mut ByteReader<'_>) -> probkb_storage::Result<Atom> {
    let rel = RelationId(r.get_u32()?);
    let a = get_var(r)?;
    let b = get_var(r)?;
    Ok(Atom { rel, a, b })
}

fn put_opt_f64(w: &mut ByteWriter, v: Option<f64>) {
    match v {
        Some(x) => {
            w.put_u8(1);
            w.put_f64(x);
        }
        None => w.put_u8(0),
    }
}

fn get_opt_f64(r: &mut ByteReader<'_>) -> probkb_storage::Result<Option<f64>> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_f64()?)),
        t => Err(StorageError::Corrupt(format!("bad option tag {t}"))),
    }
}

fn encode_delta_record(
    seq: usize,
    delta: &KbDelta,
    facts_after: usize,
    factors_after: usize,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(REC_DELTA);
    w.put_u64(seq as u64);
    w.put_u64(delta.facts.len() as u64);
    for f in &delta.facts {
        w.put_u32(f.rel.0);
        w.put_u32(f.x.0);
        w.put_u32(f.c1.0);
        w.put_u32(f.y.0);
        w.put_u32(f.c2.0);
        put_opt_f64(&mut w, f.weight);
    }
    w.put_u64(delta.rules.len() as u64);
    for rule in &delta.rules {
        put_atom(&mut w, &rule.head);
        w.put_u64(rule.body.len() as u64);
        for atom in &rule.body {
            put_atom(&mut w, atom);
        }
        w.put_u32(rule.cx.0);
        w.put_u32(rule.cy.0);
        match rule.cz {
            Some(c) => {
                w.put_u8(1);
                w.put_u32(c.0);
            }
            None => w.put_u8(0),
        }
        w.put_f64(rule.weight);
        w.put_f64(rule.significance);
    }
    w.put_u64(facts_after as u64);
    w.put_u64(factors_after as u64);
    w.into_bytes()
}

/// A decoded delta frame: the input delta plus the fact/factor counts
/// the original apply produced (checked after replay).
struct DeltaRecord {
    seq: usize,
    delta: KbDelta,
    facts_after: usize,
    factors_after: usize,
}

fn decode_delta_record(payload: &[u8]) -> probkb_storage::Result<DeltaRecord> {
    let mut r = ByteReader::new(payload);
    let tag = r.get_u8()?;
    if tag != REC_DELTA {
        return Err(StorageError::Corrupt(format!("bad delta record tag {tag}")));
    }
    let seq = r.get_u64()? as usize;
    let n_facts = r.get_u64()? as usize;
    let mut facts = Vec::with_capacity(n_facts.min(1 << 20));
    for _ in 0..n_facts {
        let rel = RelationId(r.get_u32()?);
        let x = EntityId(r.get_u32()?);
        let c1 = ClassId(r.get_u32()?);
        let y = EntityId(r.get_u32()?);
        let c2 = ClassId(r.get_u32()?);
        let weight = get_opt_f64(&mut r)?;
        facts.push(Fact {
            rel,
            x,
            c1,
            y,
            c2,
            weight,
        });
    }
    let n_rules = r.get_u64()? as usize;
    let mut rules = Vec::with_capacity(n_rules.min(1 << 20));
    for _ in 0..n_rules {
        let head = get_atom(&mut r)?;
        let n_body = r.get_u64()? as usize;
        let mut body = Vec::with_capacity(n_body.min(1 << 10));
        for _ in 0..n_body {
            body.push(get_atom(&mut r)?);
        }
        let cx = ClassId(r.get_u32()?);
        let cy = ClassId(r.get_u32()?);
        let cz = match r.get_u8()? {
            0 => None,
            1 => Some(ClassId(r.get_u32()?)),
            t => return Err(StorageError::Corrupt(format!("bad cz tag {t}"))),
        };
        let weight = r.get_f64()?;
        let significance = r.get_f64()?;
        rules.push(HornRule {
            head,
            body,
            cx,
            cy,
            cz,
            weight,
            significance,
        });
    }
    let facts_after = r.get_u64()? as usize;
    let factors_after = r.get_u64()? as usize;
    if !r.is_at_end() {
        return Err(StorageError::Corrupt("delta record has trailing bytes".into()));
    }
    Ok(DeltaRecord {
        seq,
        delta: KbDelta { facts, rules },
        facts_after,
        factors_after,
    })
}

// ---------------------------------------------------------------------
// Base snapshot
// ---------------------------------------------------------------------

const SEC_META: &str = "meta";
const SEC_KB: &str = "kb";
const SEC_FACTS: &str = "facts";
const SEC_FACTORS: &str = "factors";
const SEC_FACTITER: &str = "factiter";

fn write_base_snapshot(path: &Path, session: &DeltaSession) -> probkb_storage::Result<()> {
    let mut meta = ByteWriter::new();
    meta.put_u32(kb_digest(session.kb()));
    meta.put_u32(config_digest(session.config()));
    meta.put_u64(session.facts().len() as u64);
    meta.put_u64(session.factors().len() as u64);

    let mut facts = ByteWriter::new();
    put_table(&mut facts, session.facts());
    let mut factors = ByteWriter::new();
    put_table(&mut factors, session.factors());

    SnapshotBuilder::new()
        .section(SEC_META, meta.into_bytes())
        .section(SEC_KB, encode_kb(session.kb()))
        .section(SEC_FACTS, facts.into_bytes())
        .section(SEC_FACTORS, factors.into_bytes())
        .section(SEC_FACTITER, encode_factiter(session.fact_iteration()))
        .write_to(path)
}

fn read_base_snapshot(
    path: &Path,
    config: &GroundingConfig,
) -> CheckpointResult<DeltaSession> {
    let snap = Snapshot::read_from(path)?;

    let kb: ProbKb = decode_kb(snap.section(SEC_KB)?)?;

    let mut meta = ByteReader::new(snap.section(SEC_META)?);
    let kb_d = meta.get_u32()?;
    let cfg_d = meta.get_u32()?;
    let n_facts = meta.get_u64()? as usize;
    let n_factors = meta.get_u64()? as usize;
    if !meta.is_at_end() {
        return Err(corrupt("delta snapshot meta has trailing bytes"));
    }
    if kb_d != kb_digest(&kb) {
        return Err(corrupt("delta snapshot KB digest mismatch"));
    }
    if cfg_d != config_digest(config) {
        return Err(corrupt(
            "delta snapshot was written under a different grounding config",
        ));
    }

    let mut fr = ByteReader::new(snap.section(SEC_FACTS)?);
    let facts = get_table(&mut fr)?;
    let mut gr = ByteReader::new(snap.section(SEC_FACTORS)?);
    let factors = get_table(&mut gr)?;
    if facts.len() != n_facts || factors.len() != n_factors {
        return Err(corrupt("delta snapshot table sizes disagree with meta"));
    }
    let fact_iteration = decode_factiter(snap.section(SEC_FACTITER)?)?;

    Ok(DeltaSession::from_parts(
        kb,
        config.clone(),
        facts,
        factors,
        fact_iteration,
    ))
}

// ---------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------

fn crash_if_requested(var: &str, seq: usize) {
    if let Ok(raw) = std::env::var(var) {
        if raw.trim().parse::<usize>().ok() == Some(seq) {
            eprintln!("probkb: injected crash ({var}={seq})");
            std::process::exit(CRASH_EXIT_CODE);
        }
    }
}

// ---------------------------------------------------------------------
// DurableDeltaSession
// ---------------------------------------------------------------------

/// How a [`DurableDeltaSession::resume`] recovered its state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaResume {
    /// Committed deltas re-applied from the WAL on top of the snapshot.
    pub replayed: usize,
    /// True when a torn or corrupt WAL tail was discarded.
    pub dropped_tail: bool,
}

/// A [`DeltaSession`] whose applied deltas survive process crashes.
#[derive(Debug)]
pub struct DurableDeltaSession {
    dir: PathBuf,
    session: DeltaSession,
    wal: WalWriter,
    applied: usize,
}

impl DurableDeltaSession {
    /// Ground `kb` from scratch, write the base snapshot into `dir`
    /// (created if missing), and start an empty delta WAL.
    pub fn create(
        dir: impl Into<PathBuf>,
        kb: ProbKb,
        config: GroundingConfig,
    ) -> CheckpointResult<DurableDeltaSession> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CheckpointError::Storage(io_err(&dir, e)))?;
        let session = DeltaSession::new(kb, config)?;
        write_base_snapshot(&dir.join(DELTA_SNAPSHOT_FILE), &session)?;
        let wal = WalWriter::create(&dir.join(DELTA_WAL_FILE))?;
        Ok(DurableDeltaSession {
            dir,
            session,
            wal,
            applied: 0,
        })
    }

    /// Restore the base snapshot from `dir` and replay every committed
    /// delta frame. `config` must match the one the session was created
    /// under (threads/optimizer knobs excluded — they never change
    /// results and may differ across restarts).
    pub fn resume(
        dir: impl Into<PathBuf>,
        config: &GroundingConfig,
    ) -> CheckpointResult<(DurableDeltaSession, DeltaResume)> {
        let dir = dir.into();
        let mut session = read_base_snapshot(&dir.join(DELTA_SNAPSHOT_FILE), config)?;

        let wal_path = dir.join(DELTA_WAL_FILE);
        let scan = scan_wal(&wal_path)?;
        let mut replayed = 0usize;
        for payload in &scan.frames {
            let rec = decode_delta_record(payload)?;
            if rec.seq != replayed + 1 {
                return Err(corrupt(format!(
                    "delta WAL sequence gap: expected {}, found {}",
                    replayed + 1,
                    rec.seq
                )));
            }
            session.apply_delta(&rec.delta)?;
            if session.facts().len() != rec.facts_after
                || session.factors().len() != rec.factors_after
            {
                return Err(corrupt(format!(
                    "delta {} replay diverged: {} facts / {} factors, logged {} / {}",
                    rec.seq,
                    session.facts().len(),
                    session.factors().len(),
                    rec.facts_after,
                    rec.factors_after
                )));
            }
            replayed += 1;
        }
        let wal = WalWriter::open_at(&wal_path, scan.valid_len)?;
        let resume = DeltaResume {
            replayed,
            dropped_tail: scan.truncated,
        };
        Ok((
            DurableDeltaSession {
                dir,
                session,
                wal,
                applied: replayed,
            },
            resume,
        ))
    }

    /// The underlying in-memory session.
    pub fn session(&self) -> &DeltaSession {
        &self.session
    }

    /// The session directory (snapshot + WAL live here).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of deltas durably committed so far.
    pub fn applied_deltas(&self) -> usize {
        self.applied
    }

    /// Apply `delta` and make it durable: compute via
    /// [`DeltaSession::apply_delta`], then append + fsync one WAL frame
    /// recording the delta and the resulting fact/factor counts. The
    /// delta is only considered committed once this returns `Ok`.
    pub fn apply_delta(&mut self, delta: &KbDelta) -> CheckpointResult<DeltaApplied> {
        let seq = self.applied + 1;
        let applied = self.session.apply_delta(delta)?;
        crash_if_requested(CRASH_MID_DELTA_ENV, seq);
        let payload = encode_delta_record(
            seq,
            delta,
            self.session.facts().len(),
            self.session.factors().len(),
        );
        self.wal.append(&payload)?;
        self.wal.commit()?;
        self.applied = seq;
        crash_if_requested(CRASH_AFTER_DELTA_ENV, seq);
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_kb::prelude::parse;
    use std::fs::OpenOptions;
    use std::io::Write as _;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const BASE: &str = r#"
        fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
        fact 0.90 born_in(Paul_Auster:Writer, Newark:City)
        rule 1.40 live_in(x:Writer, y:City) :- born_in(x, y)
        rule 0.90 famous_in(x:Writer, y:City) :- live_in(x, y)
    "#;

    const UNION: &str = r#"
        fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
        fact 0.90 born_in(Paul_Auster:Writer, Newark:City)
        rule 1.40 live_in(x:Writer, y:City) :- born_in(x, y)
        rule 0.90 famous_in(x:Writer, y:City) :- live_in(x, y)
        fact 0.80 born_in(Zadie_Smith:Writer, London:City)
        rule 0.70 visited(x:Writer, y:City) :- famous_in(x, y)
    "#;

    fn config() -> GroundingConfig {
        GroundingConfig {
            apply_constraints: false,
            ..GroundingConfig::default()
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "probkb-delta-store-{}-{name}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Base KB plus the (facts, rules) suffix that turns it into UNION.
    /// Truncating the union keeps both sides on the union's dictionary,
    /// so delta ids line up with the base KB's.
    fn base_and_delta() -> (ProbKb, KbDelta) {
        let union = parse(UNION).unwrap().build();
        let base = parse(BASE).unwrap().build();
        let (base_facts, base_rules) = (base.facts.len(), base.rules.len());
        let delta = KbDelta {
            facts: union.facts[base_facts..].to_vec(),
            rules: union.rules[base_rules..].to_vec(),
        };
        let mut base_kb = union;
        base_kb.facts.truncate(base_facts);
        base_kb.rules.truncate(base_rules);
        (base_kb, delta)
    }

    fn fingerprint(s: &DeltaSession) -> (String, String) {
        (format!("{:?}", s.facts()), format!("{:?}", s.factors()))
    }

    #[test]
    fn record_codec_roundtrip() {
        let (_, delta) = base_and_delta();
        let payload = encode_delta_record(3, &delta, 17, 23);
        let rec = decode_delta_record(&payload).unwrap();
        assert_eq!(rec.seq, 3);
        assert_eq!(rec.facts_after, 17);
        assert_eq!(rec.factors_after, 23);
        assert_eq!(rec.delta.facts, delta.facts);
        assert_eq!(rec.delta.rules, delta.rules);
    }

    #[test]
    fn create_apply_resume_is_byte_identical() {
        let dir = tmp_dir("roundtrip");
        let (base_kb, delta) = base_and_delta();
        let mut live = DurableDeltaSession::create(&dir, base_kb, config()).unwrap();
        live.apply_delta(&delta).unwrap();
        assert_eq!(live.applied_deltas(), 1);
        let want = fingerprint(live.session());
        drop(live);

        let (restored, resume) = DurableDeltaSession::resume(&dir, &config()).unwrap();
        assert_eq!(
            resume,
            DeltaResume {
                replayed: 1,
                dropped_tail: false
            }
        );
        assert_eq!(fingerprint(restored.session()), want);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_no_deltas_restores_base() {
        let dir = tmp_dir("empty");
        let (base_kb, _) = base_and_delta();
        let live = DurableDeltaSession::create(&dir, base_kb, config()).unwrap();
        let want = fingerprint(live.session());
        drop(live);

        let (restored, resume) = DurableDeltaSession::resume(&dir, &config()).unwrap();
        assert_eq!(resume.replayed, 0);
        assert_eq!(fingerprint(restored.session()), want);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_session_continues() {
        let dir = tmp_dir("torn");
        let (base_kb, delta) = base_and_delta();
        let mut live = DurableDeltaSession::create(&dir, base_kb, config()).unwrap();
        live.apply_delta(&delta).unwrap();
        let want = fingerprint(live.session());
        drop(live);

        // Simulate a crash mid-append: garbage after the committed frame.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(DELTA_WAL_FILE))
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]).unwrap();
        drop(f);

        let (mut restored, resume) = DurableDeltaSession::resume(&dir, &config()).unwrap();
        assert_eq!(
            resume,
            DeltaResume {
                replayed: 1,
                dropped_tail: true
            }
        );
        assert_eq!(fingerprint(restored.session()), want);

        // The truncated WAL must accept new commits.
        restored.apply_delta(&KbDelta::default()).unwrap();
        assert_eq!(restored.applied_deltas(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let dir = tmp_dir("cfg");
        let (base_kb, _) = base_and_delta();
        drop(DurableDeltaSession::create(&dir, base_kb, config()).unwrap());

        let other = GroundingConfig {
            max_iterations: 3,
            ..config()
        };
        let err = DurableDeltaSession::resume(&dir, &other).unwrap_err();
        assert!(err.to_string().contains("different grounding config"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
