//! The single-node engine: ProbKB on "PostgreSQL" — one facts table, six
//! MLN tables, batch join queries through the relational executor.

use std::collections::HashSet;

use probkb_kb::prelude::RulePattern;
use probkb_relational::prelude::*;
use probkb_support::sync::{default_threads, map_indices};

use crate::engine::{GroundingEngine, ViolatorKey};
use crate::queries::{
    ground_atoms_plan, ground_factors_plan, singleton_factors_plan, violators_plan,
};
use crate::relmodel::{candidate_schema, names, tphi_schema, tpi, RelationalKb};

/// Single-node batch-grounding engine.
#[derive(Debug)]
pub struct SingleNodeEngine {
    catalog: Catalog,
    patterns: Vec<RulePattern>,
    threads: usize,
    optimize: bool,
}

impl Default for SingleNodeEngine {
    fn default() -> Self {
        SingleNodeEngine {
            catalog: Catalog::new(),
            patterns: Vec::new(),
            threads: default_threads(),
            optimize: default_optimize(),
        }
    }
}

impl SingleNodeEngine {
    /// A fresh, unloaded engine.
    pub fn new() -> Self {
        SingleNodeEngine::default()
    }

    /// Builder-style [`GroundingEngine::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style [`GroundingEngine::set_optimize`].
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Direct access to the underlying catalog (tests, lineage queries).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn run(&self, plan: &Plan) -> Result<Table> {
        Executor::new(&self.catalog)
            .with_threads(self.threads)
            .with_optimize(self.optimize)
            .execute_table(plan)
    }

    /// Run independent per-partition plans on the fork-join pool and
    /// concatenate their outputs in plan order (so the result matches the
    /// serial loop row-for-row before deduplication).
    fn run_all_into(&self, plans: &[Plan], into: &mut Table) -> Result<()> {
        let outputs = map_indices(plans.len(), self.threads, |i| self.run(&plans[i]));
        for out in outputs {
            into.extend_from(out?);
        }
        Ok(())
    }
}

impl GroundingEngine for SingleNodeEngine {
    fn name(&self) -> &str {
        "ProbKB"
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    fn set_optimize(&mut self, optimize: bool) {
        self.optimize = optimize;
    }

    fn load(&mut self, rel: &RelationalKb) -> Result<()> {
        self.catalog.create_or_replace(names::TPI, rel.t_pi.clone());
        self.catalog
            .create_or_replace(names::TOMEGA, rel.t_omega.clone());
        self.patterns.clear();
        for (pattern, table) in &rel.mln {
            self.catalog
                .create_or_replace(names::mln(pattern.index()), table.clone());
            self.patterns.push(*pattern);
        }
        Ok(())
    }

    fn ground_atoms(&mut self) -> Result<(Table, usize)> {
        // One plan per structural partition; the plans only read the
        // catalog, so they run concurrently on the fork-join pool.
        let plans: Vec<Plan> = self
            .patterns
            .iter()
            .map(|p| ground_atoms_plan(*p, &names::mln(p.index()), names::TPI))
            .collect();
        let mut all = Table::empty(candidate_schema());
        self.run_all_into(&plans, &mut all)?;
        all.dedup_rows();
        Ok((all, plans.len()))
    }

    fn insert_facts(&mut self, rows: Vec<Row>) -> Result<usize> {
        self.catalog.insert_rows_unchecked(names::TPI, rows)
    }

    fn find_violators(&mut self) -> Result<HashSet<ViolatorKey>> {
        let mut violators = HashSet::new();
        for alpha in [1, 2] {
            let out = self.run(&violators_plan(names::TPI, names::TOMEGA, alpha))?;
            for row in out.rows() {
                violators.insert((
                    row[0].as_int().expect("entity id"),
                    row[1].as_int().expect("class id"),
                ));
            }
        }
        Ok(violators)
    }

    fn delete_violators(&mut self, violators: &HashSet<ViolatorKey>) -> Result<usize> {
        if violators.is_empty() {
            return Ok(0);
        }
        let keys: HashSet<Vec<Value>> = violators
            .iter()
            .map(|(e, c)| vec![Value::Int(*e), Value::Int(*c)])
            .collect();
        let subj = self
            .catalog
            .delete_matching(names::TPI, &[tpi::X, tpi::C1], &keys)?;
        let obj = self
            .catalog
            .delete_matching(names::TPI, &[tpi::Y, tpi::C2], &keys)?;
        Ok(subj + obj)
    }

    fn redistribute(&mut self) -> Result<()> {
        Ok(()) // single node: nothing to collocate
    }

    fn ground_factors(&mut self) -> Result<(Table, usize)> {
        // Bag union (∪B): duplicates across partitions are distinct
        // factors (Proposition 1 discussion). Plan-order concatenation
        // keeps the bag's row order identical to the serial loop.
        let mut plans: Vec<Plan> = self
            .patterns
            .iter()
            .map(|p| ground_factors_plan(*p, &names::mln(p.index()), names::TPI))
            .collect();
        plans.push(singleton_factors_plan(names::TPI));
        let mut phi = Table::empty(tphi_schema());
        self.run_all_into(&plans, &mut phi)?;
        Ok((phi, plans.len()))
    }

    fn fact_count(&self) -> Result<usize> {
        self.catalog.row_count(names::TPI)
    }

    fn facts(&self) -> Result<Table> {
        Ok((*self.catalog.get(names::TPI)?).clone())
    }

    fn export_state(&self) -> Result<Vec<(String, Table)>> {
        let mut state = Vec::new();
        for name in self.catalog.names() {
            state.push((name.clone(), (*self.catalog.get(&name)?).clone()));
        }
        Ok(state)
    }

    fn import_state(&mut self, state: &[(String, Table)]) -> Result<()> {
        self.catalog = Catalog::new();
        for (name, table) in state {
            self.catalog.create_or_replace(name.clone(), table.clone());
        }
        // Rebuild the pattern list from which Mi tables exist; iterating
        // ALL reproduces load()'s partition order.
        self.patterns = RulePattern::ALL
            .into_iter()
            .filter(|p| self.catalog.contains(&names::mln(p.index())))
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relmodel::load;
    use probkb_kb::prelude::parse;

    fn engine_with(text: &str) -> (SingleNodeEngine, crate::relmodel::RelationalKb) {
        let kb = parse(text).unwrap().build();
        let rel = load(&kb);
        let mut engine = SingleNodeEngine::new();
        engine.load(&rel).unwrap();
        (engine, rel)
    }

    #[test]
    fn ground_atoms_applies_rules_in_batches() {
        let (mut engine, _) = engine_with(
            r#"
            fact 0.96 born_in(RG:Writer, NYC:City)
            fact 0.93 born_in(RG:Writer, Brooklyn:Place)
            rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
            rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
            rule 2.68 grow_up_in(x:Writer, y:Place) :- born_in(x, y)
            rule 0.74 grow_up_in(x:Writer, y:City) :- born_in(x, y)
            "#,
        );
        let (candidates, queries) = engine.ground_atoms().unwrap();
        // Four new facts (live_in/grow_up_in × NYC/Brooklyn) from ONE query
        // — all four M1 rules applied in a single batch.
        assert_eq!(queries, 1);
        assert_eq!(candidates.len(), 4);
    }

    #[test]
    fn length3_rules_join_on_z() {
        let (mut engine, _) = engine_with(
            r#"
            fact 0.96 born_in(RG:Writer, NYC:City)
            fact 0.93 born_in(RG:Writer, Brooklyn:Place)
            rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
            "#,
        );
        let (candidates, _) = engine.ground_atoms().unwrap();
        assert_eq!(candidates.len(), 1); // located_in(Brooklyn, NYC)
    }

    #[test]
    fn violators_found_and_deleted() {
        let (mut engine, _) = engine_with(
            r#"
            fact 0.9 born_in(Mandel:Person, Berlin:City)
            fact 0.9 born_in(Mandel:Person, Baltimore:City)
            fact 0.9 born_in(Freud:Person, Vienna:City)
            functional born_in 1 1
            "#,
        );
        let violators = engine.find_violators().unwrap();
        assert_eq!(violators.len(), 1); // Mandel violates: two birth cities
        let deleted = engine.delete_violators(&violators).unwrap();
        assert_eq!(deleted, 2); // both Mandel facts removed
        assert_eq!(engine.fact_count().unwrap(), 1); // Freud survives
    }

    #[test]
    fn pseudo_functional_degree_allows_slack() {
        let (mut engine, _) = engine_with(
            r#"
            fact 0.9 live_in(A:Person, P1:City)
            fact 0.9 live_in(A:Person, P2:City)
            fact 0.9 live_in(B:Person, P1:City)
            functional live_in 1 2
            "#,
        );
        // A lives in two cities, allowed at degree 2.
        assert!(engine.find_violators().unwrap().is_empty());
    }

    #[test]
    fn type2_constraints_check_object_side() {
        let (mut engine, _) = engine_with(
            r#"
            fact 0.9 capital_of(Delhi:City, India:Country)
            fact 0.9 capital_of(Calcutta:City, India:Country)
            functional capital_of 2 1
            "#,
        );
        let violators = engine.find_violators().unwrap();
        assert_eq!(violators.len(), 1); // India has two capitals
        assert_eq!(engine.delete_violators(&violators).unwrap(), 2);
    }

    #[test]
    fn class_restricted_constraints_only_see_their_classes() {
        // born_in is functional only for (Person, City); the
        // (Person, Country) facts are exempt.
        let (mut engine, _) = engine_with(
            r#"
            fact 0.9 born_in(M:Person, Berlin:City)
            fact 0.9 born_in(M:Person, Munich:City)
            fact 0.9 born_in(M:Person, Germany:Country)
            fact 0.9 born_in(M:Person, Bavaria:Country)
            functional born_in 1 1 Person City
            "#,
        );
        let violators = engine.find_violators().unwrap();
        assert_eq!(violators.len(), 1); // (M, Person) — two birth cities
        // Deleting removes ALL facts of the violating entity (greedy
        // removal, §5.2), not only the in-class ones.
        assert_eq!(engine.delete_violators(&violators).unwrap(), 4);
    }

    #[test]
    fn unrestricted_constraints_span_class_pairs() {
        // The same data with an unrestricted constraint: the Country pair
        // also counts, but groups are per (R, x, C1, C2), so M violates
        // in both class groups and is detected once.
        let (mut engine, _) = engine_with(
            r#"
            fact 0.9 born_in(M:Person, Berlin:City)
            fact 0.9 born_in(M:Person, Munich:City)
            fact 0.9 born_in(M:Person, Germany:Country)
            functional born_in 1 1
            "#,
        );
        let violators = engine.find_violators().unwrap();
        assert_eq!(violators.len(), 1);
    }

    #[test]
    fn stats_rebuild_through_state_roundtrip() {
        // Planner statistics must never go stale across checkpoint
        // export/import: the imported catalog replaces every table, which
        // invalidates cached stats, and the next lookup re-analyzes.
        let (mut engine, _) = engine_with(
            r#"
            fact 0.96 born_in(RG:Writer, NYC:City)
            fact 0.93 born_in(RG:Writer, Brooklyn:Place)
            rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
            "#,
        );
        let before = engine.catalog().stats_of(names::TPI).unwrap();
        assert_eq!(before.row_count(), 2);

        // Mutate after the stats were cached, then export.
        engine
            .insert_facts(vec![vec![
                Value::Int(2),
                Value::Int(0),
                Value::Int(0),
                Value::Int(0),
                Value::Int(1),
                Value::Int(1),
                Value::Null,
            ]])
            .unwrap();
        let state = engine.export_state().unwrap();

        let mut resumed = SingleNodeEngine::new();
        resumed.import_state(&state).unwrap();
        let after = resumed.catalog().stats_of(names::TPI).unwrap();
        assert_eq!(after.row_count(), 3);
        assert_eq!(after.row_count(), resumed.fact_count().unwrap());
    }

    #[test]
    fn ground_factors_includes_singletons() {
        let (mut engine, _) = engine_with(
            r#"
            fact 0.96 born_in(RG:Writer, NYC:City)
            rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
            "#,
        );
        let (phi0, _) = engine.ground_factors().unwrap();
        // Before inferring anything: 1 singleton, 0 rule factors (the head
        // fact does not exist yet).
        assert_eq!(phi0.len(), 1);
    }
}
