//! Incremental knowledge expansion: `apply_delta` (live updates).
//!
//! A [`DeltaSession`] holds a fully-grounded KB and merges batches of new
//! facts and rules into it **without** re-grounding from scratch. The
//! post-delta facts table, factor table, and fact-derivation schedule are
//! byte-identical to a full re-ground of the union KB — enforced by the
//! differential suite (`tests/incremental_differential.rs`) — while the
//! work done is proportional to what the delta actually changes.
//!
//! # The union-renumbering replay
//!
//! Fact ids in a batch run are assigned per iteration: every round's new
//! candidate keys are sorted before registration
//! ([`crate::grounding::register_candidates`]), so ids encode the round at
//! which each fact is first derived. A delta can *accelerate* old
//! derivations (a new fact completes a rule body earlier) and *promote*
//! old derived facts into weighted base facts, so matching the batch run
//! means renumbering: `apply_delta` replays the union run round by round,
//! computing only delta-reachable derivations and **injecting** the old
//! run's recorded per-round schedule for everything else.
//!
//! Per round `r`, candidate keys come from four sources:
//!
//! 1. **Off-schedule frontier** (`T_dx` = facts that appeared last round
//!    at a different round than the base run, or delta base facts): the
//!    semi-naive plans `Mi ⋈ T_dx [⋈ TΠ]` over the *old* partitions.
//! 2. **Schedule × extra** (arity-3 only, `r ≥ 2`): a base fact scheduled
//!    last round joined with an off-schedule fact from *any* earlier
//!    round (`Mi ⋈ T_sched ⋈ T_extra`, both leg orders).
//! 3. **New-rule partitions** (`Mi_new` = union partition rows minus old
//!    rows): the full join at `r = 1`, then `Mi_new ⋈ T_fresh [⋈ TΠ]`
//!    where `T_fresh` is everything that arrived last round.
//! 4. **Injection**: the base run's round-`r` schedule, replayed from the
//!    recorded `fact_iteration` (already-registered keys no-op).
//!
//! Registration over the sorted union of these sources reproduces the
//! union run's round-`r` registrations exactly; convergence, the
//! iteration cap, and `max_total_facts` mirror for the same reason. The
//! factor pass reuses the old `TΦ` (ids remapped old → new) and adds only
//! factors with at least one new ground atom, via a disjoint old/new leg
//! decomposition of each partition join.
//!
//! Constraint enforcement deletes facts mid-run, which invalidates the
//! schedule-injection argument — sessions with active constraints fall
//! back to a full re-ground of the union (still byte-identical, reported
//! via [`DeltaReport::full_fallback`]).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use probkb_kb::prelude::{
    parse_into, Fact, HornRule, KbBuilder, ParseError, ProbKb, RulePattern,
};
use probkb_relational::prelude::*;
use probkb_support::sync::{default_threads, map_indices};

use crate::grounding::{
    canonicalize_factors, ground, register_candidates, GroundingConfig, GroundingOutcome,
};
use crate::queries::{ground_atoms_plan, ground_factors_plan, join_spec};
use crate::relmodel::{
    candidate_schema, load, mln_tables, names, tphi, tphi_schema, tpi, tpi_schema, FactRegistry,
};
use crate::semi_naive::SemiNaiveEngine;

/// Off-schedule frontier: facts first derived last round at a round the
/// base run did not predict (plus the delta's base facts at round 1).
const T_DX: &str = "T_dx";
/// The base run's schedule for last round (keys with recorded ids).
const T_SCHED: &str = "T_sched";
/// All off-schedule facts whose scheduled round has not passed yet.
const T_EXTRA: &str = "T_extra";
/// Everything that arrived last round: `T_dx ∪ T_sched`.
const T_FRESH: &str = "T_fresh";
/// Union-closure facts that already existed in the old closure.
const T_OLD: &str = "T_old";
/// Union-closure facts that are genuinely new.
const T_NEW: &str = "T_new";

/// Row count above which a per-round table borrows `TΠ`'s statistics
/// instead of being re-analyzed (it is a closure-sized subset of `TΠ`,
/// and the planner only needs "this leg is big").
const STATS_BORROW_MIN: usize = 4096;

/// The MLN table holding only the delta's rows of partition `i`.
fn m_new(i: usize) -> String {
    format!("M{i}_new")
}

/// A batch of new knowledge to merge into a live session.
#[derive(Debug, Clone, Default)]
pub struct KbDelta {
    /// New base facts (ids interned against the session's KB).
    pub facts: Vec<Fact>,
    /// New inference rules.
    pub rules: Vec<HornRule>,
}

impl KbDelta {
    /// True when the delta carries nothing.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty() && self.rules.is_empty()
    }
}

/// One replay round of an incremental apply.
#[derive(Debug, Clone)]
pub struct DeltaRound {
    /// 1-based round number (aligned with the batch run's iterations).
    pub round: usize,
    /// Facts newly registered this round (scheduled + off-schedule).
    pub new_facts: usize,
    /// Of those, facts the base run's schedule did not predict.
    pub off_schedule: usize,
    /// Delta queries executed (0 when the round was pure injection).
    pub queries: usize,
    /// Wall-clock time of the round.
    pub elapsed: Duration,
}

/// What an `apply_delta` call did.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// True when active constraints forced a full re-ground of the union.
    pub full_fallback: bool,
    /// Whether the replay reached the closure (vs. hitting a cap).
    pub converged: bool,
    /// Per-round replay statistics.
    pub rounds: Vec<DeltaRound>,
    /// Facts carried over from the old closure (renumbered, not re-derived).
    pub reused_facts: usize,
    /// Facts that exist only in the union closure.
    pub new_facts: usize,
    /// Factors carried over from the old `TΦ` (ids remapped).
    pub reused_factors: usize,
    /// Factors computed fresh (delta-restricted joins + new singletons).
    pub new_factors: usize,
    /// Queries used by the incremental factor pass.
    pub factor_queries: usize,
    /// Total wall-clock time of the apply.
    pub elapsed: Duration,
}

impl DeltaReport {
    /// One-line `EXPLAIN ANALYZE`-style annotation.
    pub fn annotate(&self) -> String {
        crate::explain::annotate(
            "ApplyDelta",
            &[
                (
                    "mode",
                    if self.full_fallback {
                        "full".to_string()
                    } else {
                        "incremental".to_string()
                    },
                ),
                ("rounds", self.rounds.len().to_string()),
                ("facts", format!("{}+{}", self.reused_facts, self.new_facts)),
                (
                    "factors",
                    format!("{}+{}", self.reused_factors, self.new_factors),
                ),
                (
                    "time",
                    probkb_relational::explain::fmt_duration(self.elapsed),
                ),
            ],
        )
    }
}

/// The outcome of one `apply_delta`: everything a live consumer (factor
/// graph, sampler) needs to follow the update without rebuilding.
#[derive(Debug)]
pub struct DeltaApplied {
    /// `remap[old_id] = new_id` for every fact of the pre-delta closure.
    /// Empty when [`DeltaReport::full_fallback`] is set (consumers must
    /// rebuild from [`DeltaSession::factors`] in that case).
    pub remap: Vec<i64>,
    /// Ids (post-renumbering) of facts that exist only in the new closure.
    pub new_fact_ids: Vec<i64>,
    /// The added factors (new joins + new singletons) in canonical order —
    /// feed to `GroundGraph::extend_with`. Empty on full fallback.
    pub added_factors: Table,
    /// Statistics for the apply.
    pub report: DeltaReport,
}

/// Delta-independent state for the next incremental apply, computed from
/// the session's current closure alone — so it can be built **off the
/// update critical path** (at session setup, or between deltas) and
/// consumed when the delta arrives.
///
/// Two kinds of state qualify:
///
/// * Base-run bookkeeping (old closure keys, EDB keys, the per-round
///   derivation schedule, weighted keys, the old MLN partition split).
/// * Indexes whose key columns exclude the fact-id and weight columns.
///   `T_sched` tables are rebuilt from the recorded schedule in recorded
///   order, so their indexes transfer as-is; `T_old` holds the base
///   closure's rows but possibly *reordered* (accelerated derivations
///   register earlier), so its indexes are rebased through the
///   old-to-new position permutation at apply time
///   ([`HashIndex::remap_positions`]). Debug builds verify every
///   installed index against a fresh build
///   ([`Catalog::install_index`]).
#[derive(Debug)]
struct PreparedApply {
    /// Catalog seeded with the base EDB `TΠ`, analyzed and indexed.
    catalog: Catalog,
    /// Rows of the base EDB — the prefix of the union load's `TΠ`.
    edb_len: usize,
    /// Old closure key → old fact id.
    old_ids: HashMap<[i64; 5], i64>,
    /// Keys of the old base (EDB) facts.
    base_edb: HashSet<[i64; 5]>,
    /// The base run's per-round derivation schedule.
    schedule: HashMap<usize, Vec<[i64; 5]>>,
    /// Keys that already carried a weight in the old closure.
    old_weighted: HashSet<[i64; 5]>,
    /// The old KB's MLN partition tables.
    old_mln: Vec<(RulePattern, Table)>,
    /// Row sets of the old partitions, for the old/new split.
    old_rows_of: HashMap<RulePattern, HashSet<Row>>,
    /// Body-leg + head-lookup indexes over the base closure; rebased onto
    /// the factor pass's `T_old` (same rows modulo ids, weights, order).
    t_old_indexes: Vec<Arc<HashIndex>>,
    /// Per-round body-leg indexes over the scheduled keys, valid for the
    /// round-`r+1` `T_sched` table.
    sched_indexes: HashMap<usize, Vec<Arc<HashIndex>>>,
}

impl PreparedApply {
    fn build(
        kb: &ProbKb,
        facts: &Table,
        fact_iteration: &HashMap<i64, usize>,
        threads: usize,
    ) -> Result<PreparedApply> {
        let rel = load(kb);
        let catalog = Catalog::new();
        let edb_len = rel.t_pi.len();
        catalog.create_or_replace(names::TPI, rel.t_pi);
        // Warm statistics so the cost-based planner puts the small delta
        // legs first; per-round appends bump these in place.
        catalog.analyze_parallel(names::TPI, threads)?;
        // Prebuilt indexes over the full-closure legs: every frontier plan
        // re-joins `TΠ` on `(R, C1, C2, z)` (z bound to X or Y) and the
        // factor plans add the head lookup `(R, C1, C2, X, Y)`. Indexing
        // once — maintained in place by the per-round appends — turns each
        // such join from an O(|TΠ|) rebuild into O(|frontier|) probes.
        for key_cols in tpi_join_keys() {
            catalog.build_index(names::TPI, &key_cols, threads)?;
        }

        let old_ids: HashMap<[i64; 5], i64> = facts
            .rows()
            .iter()
            .map(|r| (row_key(r), r[tpi::I].as_int().expect("fact id")))
            .collect();
        let base_edb: HashSet<[i64; 5]> = kb.facts.iter().map(fact_key).collect();
        let mut schedule: HashMap<usize, Vec<[i64; 5]>> = HashMap::new();
        for row in facts.rows() {
            let id = row[tpi::I].as_int().expect("fact id");
            if let Some(&r) = fact_iteration.get(&id) {
                schedule.entry(r).or_default().push(row_key(row));
            }
        }
        let old_weighted: HashSet<[i64; 5]> = facts
            .rows()
            .iter()
            .filter(|r| !r[tpi::W].is_null())
            .map(|r| row_key(r))
            .collect();
        let (old_mln, _) = mln_tables(&kb.rules);
        let old_rows_of: HashMap<RulePattern, HashSet<Row>> = old_mln
            .iter()
            .map(|(p, t)| (*p, t.rows().iter().cloned().collect()))
            .collect();

        // The replay's `T_old` has exactly the base closure's rows (the
        // indexed key columns exclude the renumbered id); apply rebases
        // the posting lists onto the replay's row order.
        let t_old_indexes: Vec<Arc<HashIndex>> = tpi_join_keys()
            .iter()
            .map(|key_cols| Arc::new(HashIndex::build_parallel(facts, key_cols, threads)))
            .collect();
        let sched_indexes: HashMap<usize, Vec<Arc<HashIndex>>> = schedule
            .iter()
            .map(|(&round, keys)| {
                let rows: Vec<Row> = keys.iter().map(|k| sched_key_row(k)).collect();
                let table = Table::from_rows_unchecked(tpi_schema(), rows);
                let indexes = tpi_join_keys()[..2]
                    .iter()
                    .map(|key_cols| Arc::new(HashIndex::build_parallel(&table, key_cols, threads)))
                    .collect();
                (round, indexes)
            })
            .collect();

        Ok(PreparedApply {
            catalog,
            edb_len,
            old_ids,
            base_edb,
            schedule,
            old_weighted,
            old_mln,
            old_rows_of,
            t_old_indexes,
            sched_indexes,
        })
    }
}

/// A live, incrementally-expandable grounding session.
#[derive(Debug)]
pub struct DeltaSession {
    kb: ProbKb,
    config: GroundingConfig,
    facts: Table,
    factors: Table,
    fact_iteration: HashMap<i64, usize>,
    last_catalog: Option<Catalog>,
    prepared: Option<PreparedApply>,
}

impl DeltaSession {
    /// Ground `kb` from scratch and open a session over the result.
    pub fn new(kb: ProbKb, config: GroundingConfig) -> Result<DeltaSession> {
        let mut engine = SemiNaiveEngine::new();
        let out = ground(&kb, &mut engine, &config)?;
        Ok(DeltaSession::from_outcome(kb, config, out))
    }

    /// Open a session over an already-computed grounding outcome.
    pub fn from_outcome(
        kb: ProbKb,
        config: GroundingConfig,
        outcome: GroundingOutcome,
    ) -> DeltaSession {
        DeltaSession::from_parts(kb, config, outcome.facts, outcome.factors, outcome.fact_iteration)
    }

    /// Reassemble a session from persisted state (checkpoint resume).
    pub fn from_parts(
        kb: ProbKb,
        config: GroundingConfig,
        facts: Table,
        factors: Table,
        fact_iteration: HashMap<i64, usize>,
    ) -> DeltaSession {
        DeltaSession {
            kb,
            config,
            facts,
            factors,
            fact_iteration,
            last_catalog: None,
            prepared: None,
        }
    }

    /// Precompute everything the next [`DeltaSession::apply_delta`] needs
    /// that does not depend on the delta itself: base-run bookkeeping,
    /// the analyzed-and-indexed EDB catalog, and the closure-order
    /// indexes the replay's `T_old`/`T_sched` tables will reuse.
    ///
    /// Calling this **off the update critical path** (right after opening
    /// the session, or between deltas) moves that maintenance out of the
    /// next apply's latency; an unprepared session computes the same
    /// state inline and produces byte-identical results. The prepared
    /// state is consumed by the next apply (any apply invalidates it —
    /// the closure it describes changed), so call it again between
    /// deltas. No-op for constraint-enforcing sessions, which always fall
    /// back to a full re-ground.
    pub fn prepare(&mut self) -> Result<()> {
        let constrained = (self.config.preclean || self.config.apply_constraints)
            && !self.kb.constraints.is_empty();
        if constrained || self.prepared.is_some() {
            return Ok(());
        }
        let threads = self.config.threads.unwrap_or_else(default_threads).max(1);
        self.prepared = Some(PreparedApply::build(
            &self.kb,
            &self.facts,
            &self.fact_iteration,
            threads,
        )?);
        Ok(())
    }

    /// The session's (union) knowledge base.
    pub fn kb(&self) -> &ProbKb {
        &self.kb
    }

    /// The grounding configuration the session replays under.
    pub fn config(&self) -> &GroundingConfig {
        &self.config
    }

    /// The current closure `TΠ`, sorted by fact id.
    pub fn facts(&self) -> &Table {
        &self.facts
    }

    /// The current canonical factor table `TΦ`.
    pub fn factors(&self) -> &Table {
        &self.factors
    }

    /// Round at which each inferred fact id was first derived (base facts
    /// absent), matching a batch run of the union KB.
    pub fn fact_iteration(&self) -> &HashMap<i64, usize> {
        &self.fact_iteration
    }

    /// The catalog of the most recent incremental apply — `TΠ` grown via
    /// `append_table` with statistics bumped in place, so `EXPLAIN` over
    /// it shows post-delta cardinality estimates. `None` before the first
    /// apply or after a full fallback.
    pub fn catalog(&self) -> Option<&Catalog> {
        self.last_catalog.as_ref()
    }

    /// Merge `delta` into the session. The resulting facts, factors, and
    /// derivation schedule are byte-identical to grounding
    /// `self.kb ∪ delta` from scratch under the session's config.
    pub fn apply_delta(&mut self, delta: &KbDelta) -> Result<DeltaApplied> {
        let start = Instant::now();
        let mut union_kb = self.kb.clone();
        union_kb.facts.extend(delta.facts.iter().cloned());
        union_kb.rules.extend(delta.rules.iter().cloned());

        let constrained = (self.config.preclean || self.config.apply_constraints)
            && !union_kb.constraints.is_empty();
        if constrained {
            self.apply_full(union_kb, start)
        } else {
            self.apply_incremental(union_kb, start)
        }
    }

    /// Parse KB-text statements (the `kb::parser` format: `fact`, `rule`,
    /// `functional`, `subclass` lines) into a [`KbDelta`] against this
    /// session's live id space. Names already known to the session keep
    /// their ids; new entities, classes, and relations are interned by
    /// appending, and the session's dictionaries/memberships/signatures
    /// adopt them immediately — the facts and rules themselves are *not*
    /// applied until the returned delta is passed to
    /// [`DeltaSession::apply_delta`]. This is the server's `APPLY_DELTA`
    /// ingestion path.
    pub fn parse_delta(&mut self, text: &str) -> std::result::Result<KbDelta, ParseError> {
        let mut builder = KbBuilder::from_kb(self.kb.clone());
        let n_facts = builder.fact_count();
        let n_rules = builder.rule_count();
        parse_into(&mut builder, text)?;
        let mut union_kb = builder.build();
        let delta = KbDelta {
            facts: union_kb.facts.split_off(n_facts),
            rules: union_kb.rules.split_off(n_rules),
        };
        // Adopt the extended dictionaries (and any new constraints) while
        // keeping the fact/rule sets exactly as they were — apply_delta
        // unions them in itself.
        self.kb = union_kb;
        Ok(delta)
    }

    /// Parse KB-text statements into the facts and rules they *denote*,
    /// without the duplicate-suppression of [`DeltaSession::parse_delta`]
    /// — a retraction refers to statements that already exist, which the
    /// dedup index would otherwise resolve to nothing. Names are looked
    /// up against the session's dictionaries via a throwaway builder;
    /// the session itself is untouched (retraction must not intern
    /// anything new into live state).
    pub fn parse_retraction(&self, text: &str) -> std::result::Result<KbDelta, ParseError> {
        let mut stripped = self.kb.clone();
        stripped.facts.clear();
        stripped.rules.clear();
        let mut builder = KbBuilder::from_kb(stripped);
        parse_into(&mut builder, text)?;
        let kb = builder.build();
        Ok(KbDelta {
            facts: kb.facts,
            rules: kb.rules,
        })
    }

    /// Remove facts and/or rules from the live session — **not yet
    /// supported**. Retraction cannot reuse the schedule-injection replay
    /// (a removed fact may invalidate derivations at *earlier* rounds
    /// than it was used, so the recorded schedule over-approximates);
    /// until provenance-guided deletion lands (ROADMAP item 2
    /// follow-up), every call returns a structured
    /// [`Error::Unsupported`] naming the feature, so callers (e.g. the
    /// server's `APPLY_DELTA` error path) can report it without string
    /// matching. The session is left untouched.
    pub fn retract(&mut self, retraction: &KbDelta) -> Result<DeltaApplied> {
        Err(Error::Unsupported {
            feature: "retract".into(),
            reason: format!(
                "in-place retraction of {} fact(s) and {} rule(s) is not implemented; \
                 rebuild a session from the surviving KB instead",
                retraction.facts.len(),
                retraction.rules.len()
            ),
        })
    }

    /// Constraint-enforcing sessions delete facts mid-run; replaying the
    /// recorded schedule is unsound there, so re-ground the union.
    fn apply_full(&mut self, union_kb: ProbKb, start: Instant) -> Result<DeltaApplied> {
        let mut engine = SemiNaiveEngine::new();
        let out = ground(&union_kb, &mut engine, &self.config)?;
        let rounds = out
            .report
            .iterations
            .iter()
            .map(|i| DeltaRound {
                round: i.iteration,
                new_facts: i.new_facts,
                off_schedule: i.new_facts,
                queries: i.queries,
                elapsed: i.elapsed,
            })
            .collect();
        let report = DeltaReport {
            full_fallback: true,
            converged: out.report.converged,
            rounds,
            reused_facts: 0,
            new_facts: out.facts.len(),
            reused_factors: 0,
            new_factors: out.factors.len(),
            factor_queries: out.report.factor_queries,
            elapsed: start.elapsed(),
        };
        self.kb = union_kb;
        self.facts = out.facts;
        self.factors = out.factors;
        self.fact_iteration = out.fact_iteration;
        self.last_catalog = None;
        self.prepared = None;
        Ok(DeltaApplied {
            remap: Vec::new(),
            new_fact_ids: Vec::new(),
            added_factors: Table::empty(tphi_schema()),
            report,
        })
    }

    fn apply_incremental(&mut self, union_kb: ProbKb, start: Instant) -> Result<DeltaApplied> {
        let threads = self.config.threads.unwrap_or_else(default_threads).max(1);
        let optimize = self.config.optimize.unwrap_or_else(default_optimize);
        let run = |catalog: &Catalog, plan: &Plan| -> Result<Table> {
            Executor::new(catalog)
                .with_threads(threads)
                .with_optimize(optimize)
                .execute(plan)
                .map(|(table, _)| table)
        };

        // Delta-independent state: consumed from a prior
        // [`DeltaSession::prepare`] (kept off the update critical path) or
        // computed here inline — the same construction either way, so
        // prepared and unprepared applies are byte-identical.
        let PreparedApply {
            catalog,
            edb_len,
            old_ids,
            base_edb,
            schedule,
            old_weighted,
            old_mln,
            old_rows_of,
            t_old_indexes,
            sched_indexes,
        } = match self.prepared.take() {
            Some(p) => p,
            None => PreparedApply::build(&self.kb, &self.facts, &self.fact_iteration, threads)?,
        };

        // Fresh union load: base facts keep their load-order ids, delta
        // facts append, first weight wins on duplicates — exactly the id
        // and weight assignment a batch run of the union would see. The
        // catalog already holds the base EDB prefix of `TΠ`, analyzed and
        // indexed; only the delta's suffix is appended (which bumps the
        // statistics and indexes in place).
        let rel = load(&union_kb);
        let mut registry = rel.registry;
        #[cfg(debug_assertions)]
        {
            let edb = catalog.get(names::TPI)?;
            assert_eq!(
                rel.t_pi.rows()[..edb_len],
                edb.rows()[..],
                "base EDB is not a prefix of the union load"
            );
        }
        catalog.append_table(
            names::TPI,
            &Table::from_rows_unchecked(tpi_schema(), rel.t_pi.rows()[edb_len..].to_vec()),
        )?;
        let mut old_partitions: Vec<RulePattern> = Vec::new();
        let mut new_partitions: Vec<RulePattern> = Vec::new();
        for (pattern, utable) in &rel.mln {
            let empty = HashSet::new();
            let old = old_rows_of.get(pattern).unwrap_or(&empty);
            let added: Vec<Row> = utable
                .rows()
                .iter()
                .filter(|r| !old.contains(*r))
                .cloned()
                .collect();
            if !old.is_empty() {
                let table = old_mln
                    .iter()
                    .find(|(p, _)| p == pattern)
                    .map(|(_, t)| t.clone())
                    .expect("old partition table");
                catalog.create_or_replace(names::mln(pattern.index()), table);
                old_partitions.push(*pattern);
            }
            if !added.is_empty() {
                catalog.create_or_replace(
                    m_new(pattern.index()),
                    Table::from_rows_unchecked(utable.schema().clone(), added),
                );
                new_partitions.push(*pattern);
            }
        }

        // Frontier init: the delta's base facts are "off schedule at
        // round 0". A delta fact whose key matches an old *derived* fact
        // promotes it to a (weighted) base fact — it is off schedule too,
        // until its recorded round passes.
        let mut x_rows: Vec<Row> = rel
            .t_pi
            .rows()
            .iter()
            .filter(|r| !base_edb.contains(&row_key(r)))
            .cloned()
            .collect();
        let mut extra: HashMap<[i64; 5], Row> =
            x_rows.iter().map(|r| (row_key(r), r.clone())).collect();
        let mut sched_rows: Vec<Row> = Vec::new();

        let mut rounds = Vec::new();
        let mut fact_iteration: HashMap<i64, usize> = HashMap::new();
        let mut converged = false;
        for round in 1..=self.config.max_iterations {
            let rstart = Instant::now();
            catalog.create_or_replace(T_DX, Table::from_rows_unchecked(tpi_schema(), x_rows.clone()));
            catalog.create_or_replace(
                T_SCHED,
                Table::from_rows_unchecked(tpi_schema(), sched_rows.clone()),
            );
            let mut extra_rows: Vec<Row> = extra.values().cloned().collect();
            extra_rows.sort_by_key(|r| r[tpi::I].as_int());
            catalog.create_or_replace(
                T_EXTRA,
                Table::from_rows_unchecked(tpi_schema(), extra_rows),
            );
            let mut fresh_rows = x_rows.clone();
            fresh_rows.extend(sched_rows.iter().cloned());
            catalog.create_or_replace(
                T_FRESH,
                Table::from_rows_unchecked(tpi_schema(), fresh_rows),
            );
            // Fresh statistics for the per-round tables (create_or_replace
            // invalidates them), so the join orderer sees the real — often
            // tiny — frontier cardinalities; and body-leg indexes over the
            // schedule, which round 1's bulk injection can make large. A
            // closure-sized round table is a subset of `TΠ`, so instead of
            // re-analyzing it we borrow `TΠ`'s statistics — all the
            // planner needs to know is "this leg is big, order it last".
            let tpi_stats = catalog.stats_of(names::TPI).expect("TΠ analyzed");
            for t in [T_DX, T_SCHED, T_EXTRA, T_FRESH] {
                if catalog.row_count(t)? >= STATS_BORROW_MIN {
                    catalog.set_stats(t, Arc::clone(&tpi_stats));
                } else {
                    catalog.analyze(t)?;
                }
            }
            // The schedule table's body-leg indexes were prebuilt from the
            // scheduled keys (same rows, same order, ids not indexed);
            // fall back to an inline build when unavailable.
            match sched_indexes.get(&(round - 1)) {
                Some(idxs) if idxs.iter().all(|i| i.rows_indexed() == sched_rows.len()) => {
                    for idx in idxs {
                        catalog.install_index(T_SCHED, Arc::clone(idx))?;
                    }
                }
                _ => {
                    for key_cols in &tpi_join_keys()[..2] {
                        catalog.build_index(T_SCHED, key_cols, threads)?;
                    }
                }
            }

            let mut plans: Vec<Plan> = Vec::new();
            for &p in &old_partitions {
                let m = names::mln(p.index());
                if p.arity() == 2 {
                    plans.push(atoms_plan_legs(p, &m, T_DX, T_DX));
                } else {
                    plans.push(atoms_plan_legs(p, &m, T_DX, names::TPI));
                    plans.push(atoms_plan_legs(p, &m, names::TPI, T_DX));
                    if round >= 2 {
                        plans.push(atoms_plan_legs(p, &m, T_SCHED, T_EXTRA));
                        plans.push(atoms_plan_legs(p, &m, T_EXTRA, T_SCHED));
                    }
                }
            }
            for &p in &new_partitions {
                let m = m_new(p.index());
                if round == 1 {
                    plans.push(ground_atoms_plan(p, &m, names::TPI));
                } else if p.arity() == 2 {
                    plans.push(atoms_plan_legs(p, &m, T_FRESH, T_FRESH));
                } else {
                    plans.push(atoms_plan_legs(p, &m, T_FRESH, names::TPI));
                    plans.push(atoms_plan_legs(p, &m, names::TPI, T_FRESH));
                }
            }
            let queries = plans.len();
            let mut candidates = Table::empty(candidate_schema());
            let outputs = map_indices(plans.len(), threads, |i| run(&catalog, &plans[i]));
            for out in outputs {
                candidates.extend_from(out?);
            }
            // Inject the base run's round-r schedule (dups no-op).
            let scheduled = schedule.get(&round);
            if let Some(keys) = scheduled {
                for k in keys {
                    candidates.push_unchecked(vec![
                        Value::Int(k[0]),
                        Value::Int(k[1]),
                        Value::Int(k[2]),
                        Value::Int(k[3]),
                        Value::Int(k[4]),
                    ]);
                }
            }

            let new_rows = register_candidates(&mut registry, &candidates);
            let new_facts = new_rows.len();
            for row in &new_rows {
                fact_iteration.insert(row[0].as_int().expect("fact id"), round);
            }
            if new_facts == 0 {
                converged = true;
                rounds.push(DeltaRound {
                    round,
                    new_facts: 0,
                    off_schedule: 0,
                    queries,
                    elapsed: rstart.elapsed(),
                });
                break;
            }
            catalog.append_table(
                names::TPI,
                &Table::from_rows_unchecked(tpi_schema(), new_rows.clone()),
            )?;

            let sched_set: HashSet<[i64; 5]> = scheduled
                .map(|ks| ks.iter().copied().collect())
                .unwrap_or_default();
            x_rows = new_rows
                .iter()
                .filter(|r| !sched_set.contains(&row_key(r)))
                .cloned()
                .collect();
            let off_schedule = x_rows.len();
            sched_rows = scheduled
                .map(|ks| ks.iter().map(|k| sched_row(&registry, k)).collect())
                .unwrap_or_default();
            // An off-schedule fact stops being "extra" once its scheduled
            // round passes: later pairings are base-covered by injection.
            for k in &sched_set {
                extra.remove(k);
            }
            for r in &x_rows {
                extra.insert(row_key(r), r.clone());
            }
            rounds.push(DeltaRound {
                round,
                new_facts,
                off_schedule,
                queries,
                elapsed: rstart.elapsed(),
            });

            if let Some(cap) = self.config.max_total_facts {
                if registry.len() > cap {
                    break;
                }
            }
        }

        // Factor pass: the old TΦ carries over with ids remapped; only
        // factors touching a new ground atom are computed, via a disjoint
        // old/new decomposition of each partition's body+head legs.
        let mut facts = (*catalog.get(names::TPI)?).clone();
        let mut t_old_rows = Vec::new();
        let mut t_new_rows = Vec::new();
        let mut new_fact_ids = Vec::new();
        // Where each base-closure row landed in `T_old`: the replay can
        // reorder old facts (accelerated derivations register earlier),
        // and the base closure is sorted by its dense ids, so
        // `old_pos[old_id] = T_old position` rebases the prepared indexes.
        let mut old_pos = vec![0usize; self.facts.len()];
        for row in facts.rows() {
            match old_ids.get(&row_key(row)) {
                Some(&old_id) => {
                    old_pos[old_id as usize] = t_old_rows.len();
                    t_old_rows.push(row.clone());
                }
                None => {
                    new_fact_ids.push(row[tpi::I].as_int().expect("fact id"));
                    t_new_rows.push(row.clone());
                }
            }
        }
        let reused_facts = t_old_rows.len();
        catalog.create_or_replace(T_OLD, Table::from_rows_unchecked(tpi_schema(), t_old_rows));
        catalog.create_or_replace(T_NEW, Table::from_rows_unchecked(tpi_schema(), t_new_rows));
        // `T_old` is closure-sized; statistics put it last in every factor
        // join and the indexes make those final legs O(matches) probes.
        // `T_old` is `TΠ` minus the (few) new facts, so its statistics are
        // borrowed from `TΠ` rather than recomputed; only the two body-leg
        // key sets are indexed (T_old never serves as a head leg — heads
        // resolve against `TΠ` or `T_new`).
        let tpi_stats = catalog.stats_of(names::TPI).expect("TΠ analyzed");
        catalog.set_stats(T_OLD, tpi_stats);
        catalog.analyze(T_NEW)?;
        // `T_old` holds exactly the base closure's rows (ids renumbered,
        // some weights promoted — neither is indexed), possibly reordered;
        // rebasing the prepared indexes through `old_pos` is equivalent to
        // rebuilding them, without rehashing or cloning any key.
        if t_old_indexes
            .iter()
            .all(|i| i.rows_indexed() == reused_facts)
        {
            for idx in t_old_indexes {
                let mut idx = Arc::try_unwrap(idx).unwrap_or_else(|a| (*a).clone());
                idx.remap_positions(&old_pos);
                catalog.install_index(T_OLD, Arc::new(idx))?;
            }
        } else {
            for key_cols in &tpi_join_keys() {
                catalog.build_index(T_OLD, key_cols, threads)?;
            }
        }

        let mut fplans: Vec<Plan> = Vec::new();
        for &p in &old_partitions {
            let m = names::mln(p.index());
            if p.arity() == 2 {
                fplans.push(factors_plan_legs(p, &m, T_NEW, T_NEW, names::TPI));
                fplans.push(factors_plan_legs(p, &m, T_OLD, T_OLD, T_NEW));
            } else {
                fplans.push(factors_plan_legs(p, &m, T_NEW, names::TPI, names::TPI));
                fplans.push(factors_plan_legs(p, &m, T_OLD, T_NEW, names::TPI));
                fplans.push(factors_plan_legs(p, &m, T_OLD, T_OLD, T_NEW));
            }
        }
        for &p in &new_partitions {
            fplans.push(ground_factors_plan(p, &m_new(p.index()), names::TPI));
        }
        let factor_queries = fplans.len();
        let mut added = Table::empty(tphi_schema());
        let outputs = map_indices(fplans.len(), threads, |i| run(&catalog, &fplans[i]));
        for out in outputs {
            added.extend_from(out?);
        }
        // New singletons: weighted base facts whose key was not weighted
        // before (new base facts plus promoted derived facts).
        for row in rel.t_pi.rows() {
            if !row[tpi::W].is_null() && !old_weighted.contains(&row_key(row)) {
                added.push_unchecked(vec![
                    row[tpi::I].clone(),
                    Value::Null,
                    Value::Null,
                    row[tpi::W].clone(),
                ]);
            }
        }
        canonicalize_factors(&mut added);

        // Remap the old factor table into the new id space and combine.
        let n_old = self.facts.len();
        let mut remap = vec![0i64; n_old];
        for (key, &old_id) in &old_ids {
            remap[old_id as usize] = registry
                .id_of(key)
                .expect("old closure is a subset of the union closure");
        }
        let map_i = |v: &Value| match v.as_int() {
            Some(i) => Value::Int(remap[i as usize]),
            None => Value::Null,
        };
        let mut combined = Vec::with_capacity(self.factors.len() + added.len());
        for row in self.factors.rows() {
            combined.push(vec![
                map_i(&row[tphi::I1]),
                map_i(&row[tphi::I2]),
                map_i(&row[tphi::I3]),
                row[tphi::W].clone(),
            ]);
        }
        combined.extend(added.rows().iter().cloned());
        let mut factors = Table::from_rows_unchecked(tphi_schema(), combined);
        canonicalize_factors(&mut factors);
        facts.sort_by_cols(&[tpi::I]);

        let report = DeltaReport {
            full_fallback: false,
            converged,
            rounds,
            reused_facts,
            new_facts: new_fact_ids.len(),
            reused_factors: self.factors.len(),
            new_factors: added.len(),
            factor_queries,
            elapsed: start.elapsed(),
        };
        self.kb = union_kb;
        self.facts = facts;
        self.factors = factors;
        self.fact_iteration = fact_iteration;
        self.last_catalog = Some(catalog);
        Ok(DeltaApplied {
            remap,
            new_fact_ids,
            added_factors: added,
            report,
        })
    }
}

/// `(R, x, C1, y, C2)` key of a `TΠ` row.
fn row_key(row: &[Value]) -> [i64; 5] {
    [
        row[tpi::R].as_int().expect("fact R"),
        row[tpi::X].as_int().expect("fact x"),
        row[tpi::C1].as_int().expect("fact C1"),
        row[tpi::Y].as_int().expect("fact y"),
        row[tpi::C2].as_int().expect("fact C2"),
    ]
}

/// `(R, x, C1, y, C2)` key of a base fact.
fn fact_key(fact: &Fact) -> [i64; 5] {
    [
        fact.rel.as_i64(),
        fact.x.as_i64(),
        fact.c1.as_i64(),
        fact.y.as_i64(),
        fact.c2.as_i64(),
    ]
}

/// A join-only `TΠ` row for a scheduled key (weight unused by the plans).
fn sched_row(registry: &FactRegistry, key: &[i64; 5]) -> Row {
    let id = registry.id_of(key).expect("scheduled fact is registered");
    vec![
        Value::Int(id),
        Value::Int(key[0]),
        Value::Int(key[1]),
        Value::Int(key[2]),
        Value::Int(key[3]),
        Value::Int(key[4]),
        Value::Null,
    ]
}

/// A schedule row with a placeholder id, for building `T_sched` indexes
/// ahead of the replay — the indexed key columns exclude the id, so the
/// resulting index is identical to one built from [`sched_row`] rows.
fn sched_key_row(key: &[i64; 5]) -> Row {
    vec![
        Value::Null,
        Value::Int(key[0]),
        Value::Int(key[1]),
        Value::Int(key[2]),
        Value::Int(key[3]),
        Value::Int(key[4]),
        Value::Null,
    ]
}

/// The key-column sets under which the incremental plans probe a full
/// closure table (`TΠ` or `T_old`): the two semi-naive body legs
/// `(R, C1, C2, X|Y)` and the factor pass's head lookup
/// `(R, C1, C2, X, Y)`. Columns ascend — the executor canonicalizes a
/// join's key permutation to this order before matching an index.
fn tpi_join_keys() -> [Vec<usize>; 3] {
    [
        vec![tpi::R, tpi::X, tpi::C1, tpi::C2],
        vec![tpi::R, tpi::C1, tpi::Y, tpi::C2],
        vec![tpi::R, tpi::X, tpi::C1, tpi::Y, tpi::C2],
    ]
}

/// [`ground_atoms_plan`] with independently-named body legs, so each leg
/// can scan a frontier table instead of the full `TΠ`.
fn atoms_plan_legs(pattern: RulePattern, m_table: &str, t2: &str, t3: &str) -> Plan {
    let spec = join_spec(pattern);
    let mut plan = Plan::scan(m_table).hash_join(
        Plan::scan(t2),
        spec.m_keys1.clone(),
        spec.t2_keys.clone(),
    );
    if spec.arity == 3 {
        plan = plan.hash_join(Plan::scan(t3), spec.mid_keys2.clone(), spec.t3_keys.clone());
    }
    plan.project(vec![
        (Expr::col(0), "R"),
        (Expr::col(spec.x_col), "x"),
        (Expr::col(spec.c1_col), "C1"),
        (Expr::col(spec.y_col), "y"),
        (Expr::col(spec.c2_col), "C2"),
    ])
    .distinct()
}

/// [`ground_factors_plan`] with independently-named body and head legs.
fn factors_plan_legs(
    pattern: RulePattern,
    m_table: &str,
    t2: &str,
    t3: &str,
    head: &str,
) -> Plan {
    let spec = join_spec(pattern);
    let mut plan = Plan::scan(m_table).hash_join(
        Plan::scan(t2),
        spec.m_keys1.clone(),
        spec.t2_keys.clone(),
    );
    let t_width = 7;
    let mut head_off = spec.m_width + t_width;
    if spec.arity == 3 {
        plan = plan.hash_join(Plan::scan(t3), spec.mid_keys2.clone(), spec.t3_keys.clone());
        head_off += t_width;
    }
    let plan = plan.hash_join(
        Plan::scan(head),
        spec.head_keys_mid.clone(),
        spec.head_keys_t.clone(),
    );
    let i3 = match spec.i3_col {
        Some(c) => Expr::col(c),
        None => Expr::lit(Value::Null),
    };
    plan.project(vec![
        (Expr::col(head_off + tpi::I), "I1"),
        (Expr::col(spec.i2_col), "I2"),
        (i3, "I3"),
        (Expr::col(spec.w_col), "w"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_node::SingleNodeEngine;
    use probkb_kb::prelude::parse;

    fn no_constraints() -> GroundingConfig {
        GroundingConfig {
            apply_constraints: false,
            ..GroundingConfig::default()
        }
    }

    fn fingerprint(t: &Table) -> String {
        format!("{t:?}")
    }

    /// Ground the union text from scratch with the naive engine — the
    /// oracle every incremental apply must match byte for byte.
    fn oracle(text: &str, config: &GroundingConfig) -> GroundingOutcome {
        let kb = parse(text).unwrap().build();
        let mut engine = SingleNodeEngine::new();
        ground(&kb, &mut engine, config).unwrap()
    }

    /// Split a union text: session over the first `n_facts`/`n_rules`,
    /// delta holding the rest (same interned ids since the base text is a
    /// prefix of the union text's entity/relation mentions).
    fn session_and_delta(
        union_text: &str,
        base_text: &str,
        config: GroundingConfig,
    ) -> (DeltaSession, KbDelta) {
        let union_kb = parse(union_text).unwrap().build();
        let base_kb = parse(base_text).unwrap().build();
        let n_facts = base_kb.facts.len();
        let n_rules = base_kb.rules.len();
        let mut base = union_kb.clone();
        base.facts.truncate(n_facts);
        base.rules.truncate(n_rules);
        let delta = KbDelta {
            facts: union_kb.facts[n_facts..].to_vec(),
            rules: union_kb.rules[n_rules..].to_vec(),
        };
        let session = DeltaSession::new(base, config).unwrap();
        (session, delta)
    }

    const BASE: &str = r#"
        fact 0.96 born_in(RG:Writer, NYC:City)
        fact 0.93 born_in(RG:Writer, Brooklyn:Place)
        rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
        rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
        rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
    "#;

    #[test]
    fn fact_delta_matches_full_reground() {
        let union_text = format!("{BASE}\nfact 0.88 born_in(JK:Writer, Brooklyn:Place)\n");
        let (mut session, delta) = session_and_delta(&union_text, BASE, no_constraints());
        let applied = session.apply_delta(&delta).unwrap();
        assert!(!applied.report.full_fallback);
        let want = oracle(&union_text, &no_constraints());
        assert_eq!(fingerprint(session.facts()), fingerprint(&want.facts));
        assert_eq!(fingerprint(session.factors()), fingerprint(&want.factors));
        assert_eq!(session.fact_iteration(), &want.fact_iteration);
    }

    #[test]
    fn rule_delta_matches_full_reground() {
        let union_text =
            format!("{BASE}\nrule 2.0 grow_up_in(x:Writer, y:Place) :- born_in(x, y)\n");
        let (mut session, delta) = session_and_delta(&union_text, BASE, no_constraints());
        assert!(delta.facts.is_empty() && delta.rules.len() == 1);
        let applied = session.apply_delta(&delta).unwrap();
        let want = oracle(&union_text, &no_constraints());
        assert_eq!(fingerprint(session.facts()), fingerprint(&want.facts));
        assert_eq!(fingerprint(session.factors()), fingerprint(&want.factors));
        assert!(applied.report.new_factors > 0);
    }

    #[test]
    fn empty_delta_is_identity() {
        let (mut session, _) = session_and_delta(BASE, BASE, no_constraints());
        let before_facts = fingerprint(session.facts());
        let before_factors = fingerprint(session.factors());
        let applied = session.apply_delta(&KbDelta::default()).unwrap();
        assert_eq!(fingerprint(session.facts()), before_facts);
        assert_eq!(fingerprint(session.factors()), before_factors);
        assert!(applied.new_fact_ids.is_empty());
        assert_eq!(applied.added_factors.len(), 0);
        // Identity remap: ids are unchanged.
        for (old, new) in applied.remap.iter().enumerate() {
            assert_eq!(old as i64, *new);
        }
    }

    #[test]
    fn promoting_a_derived_fact_renumbers_and_adds_a_singleton() {
        // The delta asserts located_in(Brooklyn, NYC) — previously
        // *derived* (no weight) — as a weighted base fact. In the union
        // batch run it becomes a base fact with a low id (ahead of every
        // derived fact) and gains a singleton factor.
        let union_text = format!("{BASE}\nfact 0.70 located_in(Brooklyn:Place, NYC:City)\n");
        let (mut session, delta) = session_and_delta(&union_text, BASE, no_constraints());
        let applied = session.apply_delta(&delta).unwrap();
        let want = oracle(&union_text, &no_constraints());
        assert_eq!(fingerprint(session.facts()), fingerprint(&want.facts));
        assert_eq!(fingerprint(session.factors()), fingerprint(&want.factors));
        // No *new* fact keys — the promoted key already existed.
        assert!(applied.new_fact_ids.is_empty());
        // But it gained a singleton factor.
        assert_eq!(applied.added_factors.len(), 1);
        // And the remap is a genuine renumbering, not the identity.
        assert!(applied.remap.iter().enumerate().any(|(o, n)| o as i64 != *n));
    }

    #[test]
    fn constrained_session_falls_back_to_full_reground() {
        let base = format!("{BASE}\nfunctional born_in 1 1\n");
        let union_text = format!("{base}\nfact 0.88 born_in(JK:Writer, Brooklyn:Place)\n");
        let (mut session, delta) =
            session_and_delta(&union_text, &base, GroundingConfig::default());
        let applied = session.apply_delta(&delta).unwrap();
        assert!(applied.report.full_fallback);
        let want = oracle(&union_text, &GroundingConfig::default());
        assert_eq!(fingerprint(session.facts()), fingerprint(&want.facts));
        assert_eq!(fingerprint(session.factors()), fingerprint(&want.factors));
    }

    #[test]
    fn chained_deltas_keep_matching() {
        let step1 = format!("{BASE}\nfact 0.88 born_in(JK:Writer, Brooklyn:Place)\n");
        let step2 = format!(
            "{step1}\nrule 2.0 grow_up_in(x:Writer, y:Place) :- born_in(x, y)\nfact 0.6 live_in(AB:Writer, Paris:City)\n"
        );
        let (mut session, delta1) = session_and_delta(&step1, BASE, no_constraints());
        session.apply_delta(&delta1).unwrap();
        let union_kb = parse(&step2).unwrap().build();
        let delta2 = KbDelta {
            facts: union_kb.facts[session.kb().facts.len()..].to_vec(),
            rules: union_kb.rules[session.kb().rules.len()..].to_vec(),
        };
        session.apply_delta(&delta2).unwrap();
        let want = oracle(&step2, &no_constraints());
        assert_eq!(fingerprint(session.facts()), fingerprint(&want.facts));
        assert_eq!(fingerprint(session.factors()), fingerprint(&want.factors));
        assert_eq!(session.fact_iteration(), &want.fact_iteration);
    }

    #[test]
    fn transitive_chain_delta_accelerates_correctly() {
        // Base: a reachability chain. Delta: a shortcut edge that
        // accelerates many scheduled derivations to earlier rounds.
        let mut base = String::new();
        for i in 0..8 {
            base.push_str(&format!("fact 0.9 next(n{}:Node, n{}:Node)\n", i, i + 1));
        }
        base.push_str("rule 1.0 reach(x:Node, y:Node) :- next(x, y)\n");
        base.push_str("rule 1.0 reach(x:Node, y:Node) :- reach(x, z:Node), next(z, y)\n");
        let union_text = format!("{base}fact 0.9 next(n0:Node, n5:Node)\n");
        let config = GroundingConfig {
            max_iterations: 20,
            ..no_constraints()
        };
        let (mut session, delta) = session_and_delta(&union_text, &base, config.clone());
        let applied = session.apply_delta(&delta).unwrap();
        assert!(!applied.report.full_fallback);
        assert!(applied.report.converged);
        let want = oracle(&union_text, &config);
        assert_eq!(fingerprint(session.facts()), fingerprint(&want.facts));
        assert_eq!(fingerprint(session.factors()), fingerprint(&want.factors));
        assert_eq!(session.fact_iteration(), &want.fact_iteration);
    }

    #[test]
    fn prepared_apply_matches_unprepared() {
        // Same acceleration-heavy delta, applied to a prepared and an
        // unprepared session: identical outputs byte for byte (the
        // prepared path additionally runs the install-time debug checks
        // that every transferred index matches a fresh build).
        let mut base = String::new();
        for i in 0..8 {
            base.push_str(&format!("fact 0.9 next(n{}:Node, n{}:Node)\n", i, i + 1));
        }
        base.push_str("rule 1.0 reach(x:Node, y:Node) :- next(x, y)\n");
        base.push_str("rule 1.0 reach(x:Node, y:Node) :- reach(x, z:Node), next(z, y)\n");
        let union_text = format!("{base}fact 0.9 next(n0:Node, n5:Node)\n");
        let config = GroundingConfig {
            max_iterations: 20,
            ..no_constraints()
        };
        let (mut cold, delta) = session_and_delta(&union_text, &base, config.clone());
        let (mut warm, _) = session_and_delta(&union_text, &base, config);
        warm.prepare().unwrap();
        // Prepare is idempotent and consumed by the apply.
        warm.prepare().unwrap();
        let a = cold.apply_delta(&delta).unwrap();
        let b = warm.apply_delta(&delta).unwrap();
        assert_eq!(fingerprint(cold.facts()), fingerprint(warm.facts()));
        assert_eq!(fingerprint(cold.factors()), fingerprint(warm.factors()));
        assert_eq!(cold.fact_iteration(), warm.fact_iteration());
        assert_eq!(a.remap, b.remap);
        assert_eq!(a.new_fact_ids, b.new_fact_ids);
        assert_eq!(
            fingerprint(&a.added_factors),
            fingerprint(&b.added_factors)
        );
    }

    #[test]
    fn report_annotation_shape() {
        let union_text = format!("{BASE}\nfact 0.88 born_in(JK:Writer, Brooklyn:Place)\n");
        let (mut session, delta) = session_and_delta(&union_text, BASE, no_constraints());
        let applied = session.apply_delta(&delta).unwrap();
        let line = applied.report.annotate();
        assert!(line.starts_with("ApplyDelta"), "{line}");
        assert!(line.contains("mode=incremental"), "{line}");
        // Post-delta catalog is exposed for EXPLAIN / statistics checks.
        assert!(session.catalog().is_some());
    }
}
