//! Query-time local grounding (ROADMAP item 4).
//!
//! Batch grounding (Algorithm 1) materializes the *entire* closure and
//! every ground factor before a single marginal can be served. For an
//! interactive endpoint that is the wrong trade: the ProPPR line of work
//! (Wang et al.) shows that grounding only the query's proof
//! neighborhood under a PageRank-style relevance budget yields
//! millisecond answers with bounded approximation error.
//!
//! [`LocalGrounder`] implements that idea over the materialized `TΠ`
//! closure: starting from one target fact, it chains through the six
//! structural rule partitions (§4.2.2) in *both* directions — rules that
//! derive the fact and rules the fact feeds — using
//! [`BTreeIndex`]-backed point probes instead of full scans, expanding
//! best-first under a [`LocalBudget`] with degree-damped PPR-style
//! scores. The result ([`LocalGround`]) is the canonical `TΦ`-shaped
//! factor slice of the query's Markov-blanket neighborhood; when
//! `frontier_stops == 0` it is exactly the query's connected component
//! of the global factor graph, so a sampler run on it must agree with
//! the global sampler within sampler tolerance — the differential
//! oracle `tests/local_grounding.rs` exploits.
//!
//! Determinism contract: the admitted node set and factor set are
//! canonicalized (facts by id, factors by `(I1, I2, I3, w)` exactly like
//! the batch driver's `canonicalize_factors`), so any two expansions
//! that admit the same subgraph — different covering budgets, different
//! frontier pop orders — produce byte-identical output.
//!
//! [`LocalCache`] memoizes answers keyed by `(fact key, budget)` with an
//! epoch stamp; [`LocalCache::advance`] carries entries across an
//! `apply_delta` exactly when the delta's touched-blanket set misses the
//! entry's support and the id remap is the identity on it — the two
//! conditions under which a fresh recompute is guaranteed byte-identical.
//!
//! [`BTreeIndex`]: probkb_relational::btree_index::BTreeIndex

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use probkb_kb::prelude::{classify, Atom, HornRule, RulePattern, Var};
use probkb_relational::btree_index::BTreeIndex;
use probkb_relational::prelude::{Catalog, Error, Result, Table, Value};
use probkb_relational::spill::{SpillPolicy, StorageContext};
use probkb_support::hash::{FxHashMap, FxHashSet};

use crate::relmodel::{names, tphi, tphi_schema, tpi};

/// Damping applied per expansion hop (the PPR restart mass stays on the
/// query): a neighbor reached from `u` scores `score(u) * DAMP / deg(u)`.
const DAMP: f64 = 0.85;

/// Relevance budget for one local grounding: caps on admitted variables
/// and materialized factors. `u64::MAX` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalBudget {
    /// Maximum facts (graph variables) admitted to the subgraph. The
    /// query fact itself is always admitted, even at 0.
    pub nodes: u64,
    /// Maximum factors materialized (singletons included).
    pub factors: u64,
}

impl LocalBudget {
    /// No caps: expansion stops only when the component is exhausted.
    pub const UNLIMITED: LocalBudget = LocalBudget {
        nodes: u64::MAX,
        factors: u64::MAX,
    };

    /// The same cap on nodes and factors.
    pub fn uniform(n: u64) -> LocalBudget {
        LocalBudget {
            nodes: n,
            factors: n,
        }
    }

    /// Parse `PROBKB_LOCAL_BUDGET`: unset or empty means unlimited,
    /// `N` caps both nodes and factors, `N,M` caps them separately.
    pub fn from_env() -> LocalBudget {
        match std::env::var("PROBKB_LOCAL_BUDGET") {
            Ok(s) if !s.trim().is_empty() => LocalBudget::parse(&s).unwrap_or(Self::UNLIMITED),
            _ => Self::UNLIMITED,
        }
    }

    /// Parse the `PROBKB_LOCAL_BUDGET` syntax from a string.
    pub fn parse(s: &str) -> Option<LocalBudget> {
        let s = s.trim();
        match s.split_once(',') {
            Some((n, m)) => Some(LocalBudget {
                nodes: n.trim().parse().ok()?,
                factors: m.trim().parse().ok()?,
            }),
            None => s.parse().ok().map(LocalBudget::uniform),
        }
    }

    /// True when nothing is capped.
    pub fn is_unlimited(&self) -> bool {
        *self == Self::UNLIMITED
    }

    /// Render for `EXPLAIN`-style annotations: `unlimited` or `N/M`.
    pub fn render(&self) -> String {
        if self.is_unlimited() {
            "unlimited".to_string()
        } else {
            let part = |v: u64| {
                if v == u64::MAX {
                    "inf".to_string()
                } else {
                    v.to_string()
                }
            };
            format!("{}/{}", part(self.nodes), part(self.factors))
        }
    }
}

impl Default for LocalBudget {
    fn default() -> Self {
        Self::UNLIMITED
    }
}

/// One deduplicated MLN rule tuple, mirroring a row of the `M1..M6`
/// tables (Definition 6 stores *sets*, so structurally identical rules
/// collapse to one factor exactly as in the batch path).
#[derive(Debug, Clone, PartialEq)]
struct LocalRule {
    pattern: RulePattern,
    head_rel: i64,
    /// Body atoms in the pattern's canonical `(q, r)` order.
    body: Vec<Atom>,
    cx: i64,
    cy: i64,
    cz: i64,
    weight: f64,
}

impl LocalRule {
    /// Class id of a rule variable (`-1` never matches a real class).
    fn class_of(&self, v: Var) -> i64 {
        match v {
            Var::X => self.cx,
            Var::Y => self.cy,
            Var::Z => self.cz,
        }
    }

    /// The dedup/sort key: identical tuples ground identical factors.
    fn tuple_key(&self) -> (u8, i64, i64, i64, i64, i64, i64, u64) {
        (
            self.pattern.index() as u8,
            self.head_rel,
            self.body[0].rel.as_i64(),
            self.body.get(1).map(|a| a.rel.as_i64()).unwrap_or(-1),
            self.cx,
            self.cy,
            self.cz,
            self.weight.to_bits(),
        )
    }
}

/// Identity of one candidate factor during expansion: the deduplicated
/// rule tuple that grounds it plus the participating fact ids. Two
/// discoveries of the same derivation (e.g. from the head and from a
/// body atom) collapse; two *different* rule tuples grounding the same
/// `(I1, I2, I3)` stay distinct, matching `TΦ`'s bag semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FactorKey {
    /// Index into the deduplicated rule list; `usize::MAX` = singleton.
    rule: usize,
    i1: i64,
    i2: i64,
    i3: i64,
}

#[derive(Debug, Clone, Copy)]
struct CandidateFactor {
    key: FactorKey,
    weight: f64,
}

impl CandidateFactor {
    fn vars(&self) -> impl Iterator<Item = i64> {
        [self.key.i1, self.key.i2, self.key.i3]
            .into_iter()
            .filter(|&i| i >= 0)
    }
}

/// The materialized result of one budgeted expansion: the canonical
/// local subgraph around the query fact.
#[derive(Debug, Clone)]
pub struct LocalGround {
    /// The query's fact id.
    pub query: i64,
    /// Admitted fact ids, ascending — the subgraph's variables.
    pub fact_ids: Vec<i64>,
    /// The local `TΦ` slice in canonical `(I1, I2, I3, w)` order,
    /// byte-identical for any expansion admitting the same subgraph.
    pub factors: Table,
    /// Factor admissions refused by the budget (with multiplicity).
    /// `0` means the subgraph is the query's *entire* connected
    /// component of the global factor graph.
    pub frontier_stops: u64,
    /// The budget the expansion ran under.
    pub budget: LocalBudget,
}

impl LocalGround {
    /// True when the budget covered the query's full proof neighborhood
    /// — the precondition for local ≈ global marginal agreement.
    pub fn complete(&self) -> bool {
        self.frontier_stops == 0
    }
}

/// Max-heap entry: best score first, then smallest fact id.
#[derive(Debug, Clone, Copy)]
struct FrontierEntry {
    score: f64,
    id: i64,
}

impl PartialEq for FrontierEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for FrontierEntry {}
impl PartialOrd for FrontierEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrontierEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// A backward/forward chaining local grounder over a materialized `TΠ`
/// snapshot, probing through catalog-managed [`BTreeIndex`]es.
///
/// [`BTreeIndex`]: probkb_relational::btree_index::BTreeIndex
pub struct LocalGrounder {
    catalog: Catalog,
    /// Immutable `TΠ` snapshot (shared with the catalog entry).
    facts: Arc<Table>,
    /// Exact-key probe: `(R, x, C1, y, C2)` — fact keys are unique.
    by_key: Arc<BTreeIndex>,
    /// Enumerate by `(R, x, C1)` — facts with a given subject.
    by_subject: Arc<BTreeIndex>,
    /// Enumerate by `(R, y, C2)` — facts with a given object.
    by_object: Arc<BTreeIndex>,
    /// Fact id → row position.
    id_to_pos: FxHashMap<i64, usize>,
    /// Deduplicated rule tuples in canonical (sorted) order.
    rules: Vec<LocalRule>,
    /// Rule indexes: by head relation, and by body relation with the
    /// matching leg (0 = canonical `q`, 1 = canonical `r`).
    rules_by_head: FxHashMap<i64, Vec<usize>>,
    rules_by_body: FxHashMap<i64, Vec<(usize, u8)>>,
}

impl std::fmt::Debug for LocalGrounder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalGrounder")
            .field("facts", &self.facts.len())
            .field("rules", &self.rules.len())
            .field("btree_pages", &self.by_key.page_count())
            .finish()
    }
}

impl LocalGrounder {
    /// Build a grounder over a `TΠ` snapshot (any table with the
    /// [`tpi`] layout — `GroundingOutcome::facts` or
    /// `DeltaSession::facts()`) and the KB's Horn rules. Builds the
    /// three B-tree probe indexes through a private [`Catalog`] (the
    /// process spill policy applies; without one, index pages go to a
    /// session-private temp context).
    pub fn new(facts: Table, rules: &[HornRule]) -> Result<Self> {
        let catalog = Catalog::new();
        if catalog.spill_policy().is_none() {
            // No process default: the B-tree still needs page storage.
            // The pool is sized so that building three indexes over a
            // Table-2-scale snapshot stays in memory — a small pool
            // thrashes the pager during build and dominates
            // time-to-first-marginal (see `benches/local.rs`).
            let ctx = StorageContext::in_temp(4096).map_err(|e| {
                Error::Storage(format!("local grounder storage context: {e}"))
            })?;
            catalog.set_spill_policy(Some(SpillPolicy {
                ctx,
                // Never force the snapshot itself out of core.
                threshold_rows: usize::MAX,
            }));
        }
        catalog.create(names::TPI, facts)?;
        let facts = catalog.get(names::TPI)?;

        // The three probe indexes are independent bulk loads over the
        // same immutable snapshot — build them concurrently (and overlap
        // the id → position map on this thread): the build is the bulk
        // of cold time-to-first-marginal (see `benches/local.rs`).
        let (by_key, by_subject, by_object, id_to_pos) = std::thread::scope(|scope| {
            let key = scope.spawn(|| catalog.build_btree_index(names::TPI, &tpi::KEY));
            let subject = scope
                .spawn(|| catalog.build_btree_index(names::TPI, &[tpi::R, tpi::X, tpi::C1]));
            let object = catalog.build_btree_index(names::TPI, &[tpi::R, tpi::Y, tpi::C2]);

            let mut id_to_pos = FxHashMap::default();
            let mut pos = 0usize;
            for block in facts.blocks() {
                for row in block.rows() {
                    let id = row[tpi::I].as_int().expect("TΠ fact id");
                    id_to_pos.insert(id, pos);
                    pos += 1;
                }
            }
            (
                key.join().expect("index build panicked"),
                subject.join().expect("index build panicked"),
                object,
                id_to_pos,
            )
        });
        let (by_key, by_subject, by_object) = (by_key?, by_subject?, by_object?);

        // Deduplicate rule tuples with Definition 6's set semantics and
        // order them canonically so expansion order never depends on
        // rule declaration order.
        let mut tuples: Vec<LocalRule> = Vec::new();
        for rule in rules {
            let Ok(classified) = classify(rule) else {
                continue; // unclassifiable rules are not groundable
            };
            tuples.push(LocalRule {
                pattern: classified.pattern,
                head_rel: rule.head.rel.as_i64(),
                body: classified.body,
                cx: rule.cx.as_i64(),
                cy: rule.cy.as_i64(),
                cz: rule.cz.map(|c| c.as_i64()).unwrap_or(-1),
                weight: rule.weight,
            });
        }
        tuples.sort_by_key(LocalRule::tuple_key);
        tuples.dedup_by_key(|r| r.tuple_key());

        let mut rules_by_head: FxHashMap<i64, Vec<usize>> = FxHashMap::default();
        let mut rules_by_body: FxHashMap<i64, Vec<(usize, u8)>> = FxHashMap::default();
        for (i, rule) in tuples.iter().enumerate() {
            rules_by_head.entry(rule.head_rel).or_default().push(i);
            for (leg, atom) in rule.body.iter().enumerate() {
                rules_by_body
                    .entry(atom.rel.as_i64())
                    .or_default()
                    .push((i, leg as u8));
            }
        }

        Ok(LocalGrounder {
            catalog,
            facts,
            by_key,
            by_subject,
            by_object,
            id_to_pos,
            rules: tuples,
            rules_by_head,
            rules_by_body,
        })
    }

    /// Facts in the snapshot.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// Deduplicated groundable rule tuples.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// The private catalog (observability: index stats).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The `(R, x, C1, y, C2)` key of a fact id, if present.
    pub fn key_of(&self, id: i64) -> Option<[i64; 5]> {
        let &pos = self.id_to_pos.get(&id)?;
        let row = &self.facts.rows()[pos];
        Some([
            row[tpi::R].as_int()?,
            row[tpi::X].as_int()?,
            row[tpi::C1].as_int()?,
            row[tpi::Y].as_int()?,
            row[tpi::C2].as_int()?,
        ])
    }

    /// The fact id carrying a `(R, x, C1, y, C2)` key, if present.
    pub fn id_of(&self, key: &[i64; 5]) -> Option<i64> {
        let probe: Vec<Value> = key.iter().map(|&v| Value::Int(v)).collect();
        let positions = self.by_key.get(&probe).ok()?;
        let &pos = positions.first()?;
        self.facts.rows()[pos][tpi::I].as_int()
    }

    /// Expand the proof neighborhood of fact `query` best-first under
    /// `budget`. Returns `None` when the fact id is unknown.
    pub fn expand(&self, query: i64, budget: LocalBudget) -> Option<LocalGround> {
        if !self.id_to_pos.contains_key(&query) {
            return None;
        }

        // Best known score per admitted fact; the heap may hold stale
        // (lower-scored) duplicates which are skipped on pop.
        let mut score: FxHashMap<i64, f64> = FxHashMap::default();
        let mut expanded: FxHashSet<i64> = FxHashSet::default();
        let mut heap: BinaryHeap<FrontierEntry> = BinaryHeap::new();
        let mut collected: FxHashSet<FactorKey> = FxHashSet::default();
        let mut factors: Vec<CandidateFactor> = Vec::new();
        let mut frontier_stops: u64 = 0;

        score.insert(query, 1.0);
        heap.push(FrontierEntry {
            score: 1.0,
            id: query,
        });

        while let Some(entry) = heap.pop() {
            if expanded.contains(&entry.id) || entry.score < score[&entry.id] {
                continue;
            }
            expanded.insert(entry.id);
            let candidates = self.incident_factors(entry.id);

            // Degree damping: distinct neighbors reachable from here.
            let mut neighbors: Vec<i64> = candidates
                .iter()
                .flat_map(CandidateFactor::vars)
                .filter(|&v| v != entry.id)
                .collect();
            neighbors.sort_unstable();
            neighbors.dedup();
            let hop = entry.score * DAMP / neighbors.len().max(1) as f64;

            for cand in candidates {
                if collected.contains(&cand.key) {
                    continue;
                }
                let mut fresh: Vec<i64> =
                    cand.vars().filter(|v| !score.contains_key(v)).collect();
                fresh.sort_unstable();
                fresh.dedup();
                if factors.len() as u64 + 1 > budget.factors
                    || score.len() as u64 + fresh.len() as u64 > budget.nodes
                {
                    frontier_stops += 1;
                    continue;
                }
                collected.insert(cand.key);
                factors.push(cand);
                for v in fresh {
                    score.insert(v, hop);
                    heap.push(FrontierEntry { score: hop, id: v });
                }
                // A better path to an already-admitted, unexpanded
                // neighbor re-prioritizes it.
                for v in cand.vars() {
                    if v != entry.id && !expanded.contains(&v) {
                        let best = score.get_mut(&v).expect("admitted");
                        if hop > *best {
                            *best = hop;
                            heap.push(FrontierEntry { score: hop, id: v });
                        }
                    }
                }
            }
        }

        // Canonical materialization: variables by ascending fact id,
        // factors in the batch driver's (I1, I2, I3, w) order.
        let mut fact_ids: Vec<i64> = score.keys().copied().collect();
        fact_ids.sort_unstable();
        let mut table = Table::empty(tphi_schema());
        for f in &factors {
            let opt = |i: i64| if i >= 0 { Value::Int(i) } else { Value::Null };
            table.push_unchecked(vec![
                Value::Int(f.key.i1),
                opt(f.key.i2),
                opt(f.key.i3),
                Value::Float(f.weight),
            ]);
        }
        table.sort_by_cols(&[tphi::I1, tphi::I2, tphi::I3, tphi::W]);

        Some(LocalGround {
            query,
            fact_ids,
            factors: table,
            frontier_stops,
            budget,
        })
    }

    /// Every ground factor incident to fact `id`, in deterministic
    /// order: the singleton first, then per canonical rule tuple the
    /// head role, then each body leg, candidates ordered by fact id.
    fn incident_factors(&self, id: i64) -> Vec<CandidateFactor> {
        let pos = self.id_to_pos[&id];
        let row = &self.facts.rows()[pos];
        let rel = row[tpi::R].as_int().expect("R");
        let x = row[tpi::X].as_int().expect("x");
        let c1 = row[tpi::C1].as_int().expect("C1");
        let y = row[tpi::Y].as_int().expect("y");
        let c2 = row[tpi::C2].as_int().expect("C2");

        let mut out = Vec::new();
        if let Some(w) = row[tpi::W].as_float() {
            out.push(CandidateFactor {
                key: FactorKey {
                    rule: usize::MAX,
                    i1: id,
                    i2: -1,
                    i3: -1,
                },
                weight: w,
            });
        }

        // Head role: rules deriving this fact (backward chaining).
        if let Some(rule_ids) = self.rules_by_head.get(&rel) {
            for &ri in rule_ids {
                let rule = &self.rules[ri];
                if rule.cx != c1 || rule.cy != c2 {
                    continue;
                }
                let bindings = [(Var::X, x), (Var::Y, y)];
                self.complete_rule(rule, ri, &bindings, RolePos::Head(id), &mut out);
            }
        }

        // Body roles: rules this fact feeds (forward chaining). The
        // head fact must already be in the closure for a factor to
        // exist — exactly groundFactors' head re-join semantics.
        if let Some(rule_legs) = self.rules_by_body.get(&rel) {
            for &(ri, leg) in rule_legs {
                let rule = &self.rules[ri];
                let atom = rule.body[leg as usize];
                if rule.class_of(atom.a) != c1 || rule.class_of(atom.b) != c2 {
                    continue;
                }
                let bindings = [(atom.a, x), (atom.b, y)];
                self.complete_rule(rule, ri, &bindings, RolePos::Body(leg, id), &mut out);
            }
        }
        out
    }

    /// Enumerate all groundings of `rule` consistent with `bindings`
    /// (the variables the anchor fact fixes) and append one candidate
    /// factor per grounding. At most one variable is free (`z` from the
    /// head role, `x` or `y` from a body role), so enumeration is one
    /// partial-key index scan plus exact probes.
    fn complete_rule(
        &self,
        rule: &LocalRule,
        rule_idx: usize,
        bindings: &[(Var, i64)],
        role: RolePos,
        out: &mut Vec<CandidateFactor>,
    ) {
        // Atoms still to satisfy, in a fixed order: unmatched body
        // atoms first (canonical order), then the head unless anchored.
        let head_atom = Atom::new(
            probkb_kb::prelude::RelationId::from_i64(rule.head_rel),
            Var::X,
            Var::Y,
        );
        let mut todo: Vec<(Slot, Atom)> = Vec::new();
        match role {
            RolePos::Head(_) => {
                for (leg, atom) in rule.body.iter().enumerate() {
                    todo.push((Slot::Body(leg as u8), *atom));
                }
            }
            RolePos::Body(anchor_leg, _) => {
                for (leg, atom) in rule.body.iter().enumerate() {
                    if leg as u8 != anchor_leg {
                        todo.push((Slot::Body(leg as u8), *atom));
                    }
                }
                todo.push((Slot::Head, head_atom));
            }
        }

        let mut env: FxHashMap<Var, i64> = bindings.iter().copied().collect();
        let mut resolved: Vec<(Slot, i64)> = Vec::new();
        self.enumerate(rule, rule_idx, &todo, 0, &mut env, &mut resolved, role, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        &self,
        rule: &LocalRule,
        rule_idx: usize,
        todo: &[(Slot, Atom)],
        depth: usize,
        env: &mut FxHashMap<Var, i64>,
        resolved: &mut Vec<(Slot, i64)>,
        role: RolePos,
        out: &mut Vec<CandidateFactor>,
    ) {
        if depth == todo.len() {
            // Fully ground: the anchor provides its own slot id, every
            // other slot was resolved on the way down.
            let id_of_slot = |slot: Slot| -> i64 {
                match (role, slot) {
                    (RolePos::Head(id), Slot::Head) => id,
                    (RolePos::Body(leg, id), Slot::Body(l)) if l == leg => id,
                    _ => {
                        resolved
                            .iter()
                            .find(|(s, _)| *s == slot)
                            .expect("slot resolved")
                            .1
                    }
                }
            };
            let i1 = id_of_slot(Slot::Head);
            let i2 = id_of_slot(Slot::Body(0));
            let i3 = if rule.body.len() > 1 {
                id_of_slot(Slot::Body(1))
            } else {
                -1
            };
            out.push(CandidateFactor {
                key: FactorKey {
                    rule: rule_idx,
                    i1,
                    i2,
                    i3,
                },
                weight: rule.weight,
            });
            return;
        }

        let (slot, atom) = todo[depth];
        let (ca, cb) = match slot {
            Slot::Head => (rule.cx, rule.cy),
            Slot::Body(_) => (rule.class_of(atom.a), rule.class_of(atom.b)),
        };
        let a_val = env.get(&atom.a).copied();
        let b_val = env.get(&atom.b).copied();
        let matches: Vec<(usize, i64, i64)> = match (a_val, b_val) {
            (Some(a), Some(b)) => {
                // Fully bound: one exact-key probe.
                let key = [
                    Value::Int(atom.rel.as_i64()),
                    Value::Int(a),
                    Value::Int(ca),
                    Value::Int(b),
                    Value::Int(cb),
                ];
                match self.by_key.get(&key) {
                    Ok(positions) => positions.into_iter().map(|p| (p, a, b)).collect(),
                    Err(_) => Vec::new(),
                }
            }
            (Some(a), None) => {
                // Subject bound: scan `(R, x, C1)`, filter the object
                // class, the object value binds the free variable.
                let key = [Value::Int(atom.rel.as_i64()), Value::Int(a), Value::Int(ca)];
                self.scan_filtered(&self.by_subject, &key, tpi::C2, cb, tpi::Y)
                    .into_iter()
                    .map(|(p, b)| (p, a, b))
                    .collect()
            }
            (None, Some(b)) => {
                let key = [Value::Int(atom.rel.as_i64()), Value::Int(b), Value::Int(cb)];
                self.scan_filtered(&self.by_object, &key, tpi::C1, ca, tpi::X)
                    .into_iter()
                    .map(|(p, a)| (p, a, b))
                    .collect()
            }
            (None, None) => {
                // Never happens: the anchor always binds 2 of the ≤3
                // variables, and atoms sharing z are ordered after it.
                Vec::new()
            }
        };

        for (pos, a, b) in matches {
            let fact_id = self.facts.rows()[pos][tpi::I].as_int().expect("I");
            let restore_a = env.insert(atom.a, a);
            let restore_b = env.insert(atom.b, b);
            resolved.push((slot, fact_id));
            self.enumerate(rule, rule_idx, todo, depth + 1, env, resolved, role, out);
            resolved.pop();
            restore(env, atom.b, restore_b);
            restore(env, atom.a, restore_a);
        }
    }

    /// Partial-key scan: positions matching `key` on `index`, filtered
    /// by `filter_col == filter_val`, returning `(pos, bound_col)`
    /// pairs sorted by the bound fact id for determinism.
    fn scan_filtered(
        &self,
        index: &BTreeIndex,
        key: &[Value],
        filter_col: usize,
        filter_val: i64,
        bound_col: usize,
    ) -> Vec<(usize, i64)> {
        let positions = match index.get(key) {
            Ok(p) => p,
            Err(_) => return Vec::new(),
        };
        let rows = self.facts.rows();
        let mut out: Vec<(usize, i64)> = positions
            .into_iter()
            .filter(|&p| rows[p][filter_col].as_int() == Some(filter_val))
            .map(|p| (p, rows[p][bound_col].as_int().expect("entity")))
            .collect();
        out.sort_by_key(|&(p, _)| rows[p][tpi::I].as_int());
        out
    }
}

/// Which role the anchor fact plays in the rule being completed.
#[derive(Debug, Clone, Copy)]
enum RolePos {
    Head(i64),
    Body(u8, i64),
}

/// A position in a rule's factor row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Head,
    Body(u8),
}

fn restore(env: &mut FxHashMap<Var, i64>, key: Var, prev: Option<i64>) {
    match prev {
        Some(v) => {
            env.insert(key, v);
        }
        None => {
            env.remove(&key);
        }
    }
}

/// Cache lookup outcome, carried into the `cache=` annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalCacheStatus {
    /// Computed fresh this request.
    Miss,
    /// Served from an entry computed at this epoch.
    Hit,
    /// Served from an entry carried across `apply_delta` because the
    /// delta's touched blanket missed its support.
    Carried,
}

impl LocalCacheStatus {
    /// Annotation token.
    pub fn as_str(&self) -> &'static str {
        match self {
            LocalCacheStatus::Miss => "miss",
            LocalCacheStatus::Hit => "hit",
            LocalCacheStatus::Carried => "carried",
        }
    }
}

/// One memoized local answer.
#[derive(Debug, Clone)]
pub struct LocalCacheEntry {
    /// Epoch the entry is valid for.
    pub epoch: u64,
    /// The marginal.
    pub p: f64,
    /// Subgraph size when computed.
    pub nodes: u64,
    /// Factors materialized when computed.
    pub factors: u64,
    /// Budget refusals when computed.
    pub frontier_stops: u64,
    /// True when exact enumeration produced `p`.
    pub exact: bool,
    /// The admitted fact ids — the support the invalidation rule tests
    /// against a delta's touched-blanket set.
    pub support: Vec<i64>,
    /// True when the entry survived at least one `advance`.
    pub carried: bool,
}

/// What one [`LocalCache::advance`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheAdvance {
    /// Entries carried to the new epoch.
    pub kept: usize,
    /// Entries evicted (touched support, remapped ids, or fallback).
    pub evicted: usize,
}

/// Memoized local marginals keyed by `(fact key, budget)`, stamped with
/// the epoch they were computed at.
#[derive(Debug, Clone, Default)]
pub struct LocalCache {
    entries: FxHashMap<([i64; 5], LocalBudget), LocalCacheEntry>,
}

impl LocalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `(key, budget)` valid at `epoch`, if any.
    pub fn get(&self, key: &[i64; 5], budget: LocalBudget, epoch: u64) -> Option<&LocalCacheEntry> {
        self.entries
            .get(&(*key, budget))
            .filter(|e| e.epoch == epoch)
    }

    /// Memoize an answer.
    pub fn put(&mut self, key: [i64; 5], budget: LocalBudget, entry: LocalCacheEntry) {
        self.entries.insert((key, budget), entry);
    }

    /// Cross the cache over an applied delta. An entry survives exactly
    /// when a fresh recompute is guaranteed byte-identical: the delta's
    /// touched-blanket set (`touched`, post-delta fact ids) misses its
    /// support, and the id remap is the identity on the support (so the
    /// canonical subgraph and its variable numbering are unchanged). A
    /// full-fallback delta clears everything.
    pub fn advance(
        &mut self,
        new_epoch: u64,
        touched: &FxHashSet<i64>,
        remap: &[i64],
        full_fallback: bool,
    ) -> CacheAdvance {
        let mut stats = CacheAdvance::default();
        if full_fallback {
            stats.evicted = self.entries.len();
            self.entries.clear();
            return stats;
        }
        self.entries.retain(|_, entry| {
            let stable = entry.support.iter().all(|&s| {
                let mapped = remap.get(s as usize).copied().unwrap_or(s);
                mapped == s && !touched.contains(&s)
            });
            if stable {
                entry.epoch = new_epoch;
                entry.carried = true;
                stats.kept += 1;
            } else {
                stats.evicted += 1;
            }
            stable
        });
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{expand, ExpandOptions};
    use probkb_kb::parser::parse;

    fn ground(text: &str) -> (Table, Vec<HornRule>) {
        let kb = parse(text).unwrap().build();
        let expansion = expand(&kb, &ExpandOptions::default()).unwrap();
        (expansion.outcome.facts, kb.rules)
    }

    const SIX: &str = r#"
        fact 0.9 q1(a:A, b:B)
        fact 0.8 q2(b:B, a:A)
        fact 0.7 q3(c:C, a:A)
        fact 0.6 q3(c:C, b:B)
        fact 0.5 q4(a:A, c:C)
        rule 1.0 p1(x:A, y:B) :- q1(x, y)
        rule 1.1 p2(x:A, y:B) :- q2(y, x)
        rule 1.2 p3(x:A, y:B) :- q3(z:C, x), q3(z, y)
        rule 1.3 p4(x:A, y:B) :- q4(x, z:C), q3(z, y)
        rule 1.4 p5(x:A, y:B) :- q3(z:C, x), q2(y, z)
        rule 1.5 p6(x:A, y:B) :- q4(x, z:C), q2(y, z)
    "#;

    #[test]
    fn unlimited_expansion_reproduces_component_factors() {
        let (facts, rules) = ground(SIX);
        let grounder = LocalGrounder::new(facts.clone(), &rules).unwrap();
        // Global TΦ for the same KB, filtered to each query's component,
        // must equal the local slice when the budget is unlimited.
        let kb = parse(SIX).unwrap().build();
        let expansion = expand(&kb, &ExpandOptions::default()).unwrap();
        let phi = &expansion.outcome.factors;

        // Union-find the global components over factor rows.
        let mut parent: FxHashMap<i64, i64> = FxHashMap::default();
        fn find(parent: &mut FxHashMap<i64, i64>, v: i64) -> i64 {
            let p = *parent.entry(v).or_insert(v);
            if p == v {
                v
            } else {
                let r = find(parent, p);
                parent.insert(v, r);
                r
            }
        }
        for row in phi.rows() {
            let ids: Vec<i64> = [tphi::I1, tphi::I2, tphi::I3]
                .iter()
                .filter_map(|&c| row[c].as_int())
                .collect();
            for w in ids.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                parent.insert(a, b);
            }
        }

        for row in facts.rows() {
            let id = row[tpi::I].as_int().unwrap();
            let local = grounder.expand(id, LocalBudget::UNLIMITED).unwrap();
            assert!(local.complete(), "fact {id} frontier_stops");
            let root = find(&mut parent, id);
            let mut expected: Vec<Vec<Value>> = phi
                .rows()
                .iter()
                .filter(|r| {
                    let head = r[tphi::I1].as_int().unwrap();
                    find(&mut parent, head) == root
                })
                .map(|r| r.to_vec())
                .collect();
            expected.sort_by(|a, b| {
                let key = |r: &Vec<Value>| {
                    (
                        r[tphi::I1].as_int(),
                        r[tphi::I2].as_int(),
                        r[tphi::I3].as_int(),
                        r[tphi::W].as_float().map(f64::to_bits),
                    )
                };
                key(a).partial_cmp(&key(b)).unwrap()
            });
            let got: Vec<Vec<Value>> = local.factors.rows().to_vec();
            assert_eq!(got, expected, "fact {id} local != component slice");
        }
    }

    #[test]
    fn budget_zero_admits_only_the_query() {
        let (facts, rules) = ground(SIX);
        let grounder = LocalGrounder::new(facts, &rules).unwrap();
        let local = grounder.expand(0, LocalBudget::uniform(0)).unwrap();
        assert_eq!(local.fact_ids, vec![0]);
        assert_eq!(local.factors.len(), 0);
        assert!(local.frontier_stops > 0);
    }

    #[test]
    fn unknown_fact_returns_none() {
        let (facts, rules) = ground(SIX);
        let grounder = LocalGrounder::new(facts, &rules).unwrap();
        assert!(grounder.expand(999_999, LocalBudget::UNLIMITED).is_none());
    }

    #[test]
    fn covering_budgets_are_byte_identical() {
        let (facts, rules) = ground(SIX);
        let grounder = LocalGrounder::new(facts, &rules).unwrap();
        let a = grounder.expand(0, LocalBudget::UNLIMITED).unwrap();
        let b = grounder.expand(0, LocalBudget::uniform(10_000)).unwrap();
        let c = grounder
            .expand(
                0,
                LocalBudget {
                    nodes: 5_000,
                    factors: 9_999,
                },
            )
            .unwrap();
        for other in [&b, &c] {
            assert_eq!(a.fact_ids, other.fact_ids);
            assert_eq!(a.factors.rows(), other.factors.rows());
            assert_eq!(other.frontier_stops, 0);
        }
    }

    #[test]
    fn duplicate_rules_collapse_like_mln_tables() {
        let text = r#"
            fact 0.9 q(a:A, b:B)
            rule 1.5 p(x:A, y:B) :- q(x, y)
            rule 1.5 p(x:A, y:B) :- q(x, y)
            rule 2.0 p(x:A, y:B) :- q(x, y)
        "#;
        let (facts, rules) = ground(text);
        let grounder = LocalGrounder::new(facts, &rules).unwrap();
        // One singleton + two distinct rule factors (1.5 deduped, 2.0
        // distinct) touch the base fact.
        let local = grounder.expand(0, LocalBudget::UNLIMITED).unwrap();
        assert_eq!(grounder.num_rules(), 2);
        assert_eq!(local.factors.len(), 3);
    }

    #[test]
    fn budget_env_parsing() {
        assert_eq!(LocalBudget::parse("64"), Some(LocalBudget::uniform(64)));
        assert_eq!(
            LocalBudget::parse(" 8 , 32 "),
            Some(LocalBudget {
                nodes: 8,
                factors: 32
            })
        );
        assert_eq!(LocalBudget::parse("x"), None);
        assert_eq!(LocalBudget::UNLIMITED.render(), "unlimited");
        assert_eq!(LocalBudget::uniform(4).render(), "4/4");
    }

    #[test]
    fn cache_advance_keeps_untouched_identity_mapped_entries() {
        let mut cache = LocalCache::new();
        let entry = |support: Vec<i64>| LocalCacheEntry {
            epoch: 0,
            p: 0.5,
            nodes: support.len() as u64,
            factors: 1,
            frontier_stops: 0,
            exact: true,
            support,
            carried: false,
        };
        cache.put([1, 2, 3, 4, 5], LocalBudget::UNLIMITED, entry(vec![0, 1]));
        cache.put([9, 2, 3, 4, 5], LocalBudget::UNLIMITED, entry(vec![2]));
        cache.put([8, 2, 3, 4, 5], LocalBudget::UNLIMITED, entry(vec![3]));

        let touched: FxHashSet<i64> = [1i64].into_iter().collect();
        // Identity remap for 0..3, but fact 3 is renumbered.
        let remap = vec![0i64, 1, 2, 7];
        let stats = cache.advance(1, &touched, &remap, false);
        assert_eq!(stats, CacheAdvance { kept: 1, evicted: 2 });
        assert!(cache.get(&[9, 2, 3, 4, 5], LocalBudget::UNLIMITED, 1).is_some());
        assert!(cache.get(&[1, 2, 3, 4, 5], LocalBudget::UNLIMITED, 1).is_none());
        let carried = cache.get(&[9, 2, 3, 4, 5], LocalBudget::UNLIMITED, 1).unwrap();
        assert!(carried.carried);

        // Full fallback clears everything.
        let stats = cache.advance(2, &FxHashSet::default(), &[], true);
        assert_eq!(stats.evicted, 1);
        assert!(cache.is_empty());
    }
}
