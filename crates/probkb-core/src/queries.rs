//! Plan builders for the grounding queries (§4.3).
//!
//! Each structural partition `Mi` gets one `groundAtoms` join (Query 1-i)
//! and one `groundFactors` join (Query 2-i); `applyConstraints` is
//! Query 3. The join-key geometry for all six patterns is derived in one
//! place ([`JoinSpec`]) so the single-node and MPP engines cannot drift.
//!
//! The plans built here fix only the *logical* join sets; the binary-join
//! chains they emit (`M_i ⋈ TΠ [⋈ TΠ]`) are what the cost-based planner
//! (`probkb_relational::optimizer`, gated by `PROBKB_OPTIMIZE` /
//! `GroundingConfig::optimize`) reorders and assigns build sides to from
//! table statistics — the driver canonicalizes grounding output, so any
//! physical order is admissible.

use probkb_kb::prelude::{RulePattern, Var};
use probkb_relational::prelude::*;

use crate::relmodel::{tomega, tpi};

/// Binding offset of a variable within a `TΠ` row matched by a body atom
/// with argument layout `(v1, v2)`: the fact's subject (`x`, column 2)
/// binds `v1` and its object (`y`, column 4) binds `v2`.
fn bind(layout: (Var, Var), target: Var) -> usize {
    if layout.0 == target {
        tpi::X
    } else if layout.1 == target {
        tpi::Y
    } else {
        panic!("variable {target} not bound by atom layout {layout:?}")
    }
}

/// Column of a variable's class in the MLN table.
fn mclass(arity: usize, v: Var) -> usize {
    use crate::relmodel::{m2, m3};
    match (arity, v) {
        (2, Var::X) => m2::C1,
        (2, Var::Y) => m2::C2,
        (3, Var::X) => m3::C1,
        (3, Var::Y) => m3::C2,
        (3, Var::Z) => m3::C3,
        (a, v) => panic!("no class column for {v} in arity-{a} pattern"),
    }
}

/// Width of `TΠ` rows.
const T_WIDTH: usize = 7;

/// The complete join geometry of one structural partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// The pattern this spec describes.
    pub pattern: RulePattern,
    /// 2 or 3 atoms.
    pub arity: usize,
    /// Width of the `Mi` table (5 or 7).
    pub m_width: usize,
    /// Join-1 keys on the `Mi` side (`R2` + class columns of atom 1).
    pub m_keys1: Vec<usize>,
    /// Join-1 keys on the `TΠ` side: always `(R, C1, C2)`.
    pub t2_keys: Vec<usize>,
    /// Join-2 keys on the intermediate (`Mi ⋈ T2`) side — `R3`, class
    /// columns of atom 2, and the `z` binding. Empty for arity 2.
    pub mid_keys2: Vec<usize>,
    /// Join-2 keys on the `TΠ` side (includes the column where `z` sits).
    pub t3_keys: Vec<usize>,
    /// Column of the `x` binding in the fully joined row.
    pub x_col: usize,
    /// Column of the `y` binding in the fully joined row.
    pub y_col: usize,
    /// Head-join keys on the body-result side (for `groundFactors`).
    pub head_keys_mid: Vec<usize>,
    /// Head-join keys on the `TΠ` side: `(R, C1, C2, x, y)`.
    pub head_keys_t: Vec<usize>,
    /// Column of `C1` (head subject class) in the joined row.
    pub c1_col: usize,
    /// Column of `C2` in the joined row.
    pub c2_col: usize,
    /// Column of the rule weight in the joined row.
    pub w_col: usize,
    /// Columns of `T2.I` / `T3.I` in the fully joined row (`i3` only for
    /// arity 3).
    pub i2_col: usize,
    /// Column of `T3.I`, if any.
    pub i3_col: Option<usize>,
}

/// Derive the join geometry for a pattern.
pub fn join_spec(pattern: RulePattern) -> JoinSpec {
    use crate::relmodel::{m2, m3};
    let (atom1, atom2) = pattern.body_layout();
    let arity = pattern.arity();
    match arity {
        2 => {
            let m_width = 5;
            let t2_off = m_width;
            let x_col = t2_off + bind(atom1, Var::X);
            let y_col = t2_off + bind(atom1, Var::Y);
            JoinSpec {
                pattern,
                arity,
                m_width,
                m_keys1: vec![m2::R2, mclass(2, atom1.0), mclass(2, atom1.1)],
                t2_keys: vec![tpi::R, tpi::C1, tpi::C2],
                mid_keys2: vec![],
                t3_keys: vec![],
                x_col,
                y_col,
                head_keys_mid: vec![m2::R1, m2::C1, m2::C2, x_col, y_col],
                head_keys_t: vec![tpi::R, tpi::C1, tpi::C2, tpi::X, tpi::Y],
                c1_col: m2::C1,
                c2_col: m2::C2,
                w_col: m2::W,
                i2_col: t2_off + tpi::I,
                i3_col: None,
            }
        }
        3 => {
            let atom2 = atom2.expect("arity-3 pattern has a second atom");
            let m_width = 7;
            let t2_off = m_width;
            let t3_off = m_width + T_WIDTH;
            let z_mid = t2_off + bind(atom1, Var::Z);
            let x_col = t2_off + bind(atom1, Var::X);
            let y_col = t3_off + bind(atom2, Var::Y);
            JoinSpec {
                pattern,
                arity,
                m_width,
                m_keys1: vec![m3::R2, mclass(3, atom1.0), mclass(3, atom1.1)],
                t2_keys: vec![tpi::R, tpi::C1, tpi::C2],
                mid_keys2: vec![m3::R3, mclass(3, atom2.0), mclass(3, atom2.1), z_mid],
                t3_keys: vec![tpi::R, tpi::C1, tpi::C2, bind(atom2, Var::Z)],
                x_col,
                y_col,
                head_keys_mid: vec![m3::R1, m3::C1, m3::C2, x_col, y_col],
                head_keys_t: vec![tpi::R, tpi::C1, tpi::C2, tpi::X, tpi::Y],
                c1_col: m3::C1,
                c2_col: m3::C2,
                w_col: m3::W,
                i2_col: t2_off + tpi::I,
                i3_col: Some(t3_off + tpi::I),
            }
        }
        _ => unreachable!("patterns are arity 2 or 3"),
    }
}

/// Query 1-i: apply every rule of partition `i` in one batch, producing
/// candidate facts `(R, x, C1, y, C2)` with duplicates removed.
pub fn ground_atoms_plan(pattern: RulePattern, m_table: &str, t_table: &str) -> Plan {
    let spec = join_spec(pattern);
    let mut plan = Plan::scan(m_table).hash_join(
        Plan::scan(t_table),
        spec.m_keys1.clone(),
        spec.t2_keys.clone(),
    );
    if spec.arity == 3 {
        plan = plan.hash_join(
            Plan::scan(t_table),
            spec.mid_keys2.clone(),
            spec.t3_keys.clone(),
        );
    }
    plan.project(vec![
        (Expr::col(0), "R"), // M.R1
        (Expr::col(spec.x_col), "x"),
        (Expr::col(spec.c1_col), "C1"),
        (Expr::col(spec.y_col), "y"),
        (Expr::col(spec.c2_col), "C2"),
    ])
    .distinct()
}

/// Query 2-i: build the ground factors `(I1, I2, I3, w)` for partition
/// `i` by re-joining the body result with the head facts. Duplicate-free
/// per Proposition 1, so no DISTINCT is applied.
pub fn ground_factors_plan(pattern: RulePattern, m_table: &str, t_table: &str) -> Plan {
    let spec = join_spec(pattern);
    let mut plan = Plan::scan(m_table).hash_join(
        Plan::scan(t_table),
        spec.m_keys1.clone(),
        spec.t2_keys.clone(),
    );
    let mut head_off = spec.m_width + T_WIDTH;
    if spec.arity == 3 {
        plan = plan.hash_join(
            Plan::scan(t_table),
            spec.mid_keys2.clone(),
            spec.t3_keys.clone(),
        );
        head_off += T_WIDTH;
    }
    let plan = plan.hash_join(
        Plan::scan(t_table),
        spec.head_keys_mid.clone(),
        spec.head_keys_t.clone(),
    );
    let i3 = match spec.i3_col {
        Some(c) => Expr::col(c),
        None => Expr::lit(Value::Null),
    };
    plan.project(vec![
        (Expr::col(head_off + tpi::I), "I1"),
        (Expr::col(spec.i2_col), "I2"),
        (i3, "I3"),
        (Expr::col(spec.w_col), "w"),
    ])
}

/// `groundFactors(TΠ)` (Algorithm 1 line 10): every extracted fact with a
/// weight becomes a singleton factor `(I, NULL, NULL, w)`.
pub fn singleton_factors_plan(t_table: &str) -> Plan {
    Plan::scan(t_table)
        .filter(Expr::col(tpi::W).is_not_null())
        .project(vec![
            (Expr::col(tpi::I), "I1"),
            (Expr::lit(Value::Null), "I2"),
            (Expr::lit(Value::Null), "I3"),
            (Expr::col(tpi::W), "w"),
        ])
}

/// Query 3 (violator detection half): entities violating functional
/// constraints of type `alpha`, as `(entity, class)` pairs.
///
/// Type I groups facts by `(R, x, C1, C2)` and flags subjects with more
/// than `MIN(deg)` distinct objects; Type II is symmetric. Constraints
/// with a class restriction (Definition 11's optional `(C1, C2)`) only
/// see facts of those classes; NULL restriction columns match any class.
pub fn violators_plan(t_table: &str, omega_table: &str, alpha: i64) -> Plan {
    let (key_entity, key_class, other_class) = if alpha == 1 {
        (tpi::X, tpi::C1, tpi::C2)
    } else {
        (tpi::Y, tpi::C2, tpi::C1)
    };
    let deg_col = T_WIDTH + tomega::DEG;
    let omega_c1 = T_WIDTH + tomega::C1;
    let omega_c2 = T_WIDTH + tomega::C2;
    let class_guard = |omega_col: usize, t_col: usize| {
        Expr::col(omega_col)
            .is_null()
            .or(Expr::col(omega_col).eq(Expr::col(t_col)))
    };
    Plan::scan(t_table)
        .hash_join(
            Plan::scan(omega_table)
                .filter(Expr::col(tomega::ALPHA).eq(Expr::lit(alpha))),
            vec![tpi::R],
            vec![tomega::R],
        )
        .filter(
            class_guard(omega_c1, tpi::C1).and(class_guard(omega_c2, tpi::C2)),
        )
        .aggregate(
            vec![tpi::R, key_entity, key_class, other_class],
            vec![
                AggExpr::new(AggFunc::CountStar, "cnt"),
                AggExpr::new(AggFunc::Min(deg_col), "mindeg"),
            ],
        )
        // HAVING COUNT(*) > MIN(deg)
        .filter(Expr::col(4).gt(Expr::col(5)))
        .project(vec![(Expr::col(1), "entity"), (Expr::col(2), "class")])
        .distinct()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_kb::prelude::RulePattern::*;

    #[test]
    fn spec_p1_matches_query_1_1() {
        let s = join_spec(P1);
        assert_eq!(s.m_keys1, vec![1, 2, 3]); // R2, C1, C2
        assert_eq!(s.t2_keys, vec![1, 3, 5]);
        assert_eq!(s.x_col, 7); // T.x
        assert_eq!(s.y_col, 9); // T.y
    }

    #[test]
    fn spec_p2_swaps_classes_and_bindings() {
        let s = join_spec(P2);
        assert_eq!(s.m_keys1, vec![1, 3, 2]); // C2 matches T.C1
        assert_eq!(s.x_col, 9); // x bound by T.y
        assert_eq!(s.y_col, 7);
    }

    #[test]
    fn spec_p3_matches_query_1_3() {
        // Paper: M3.R2=T2.R AND M3.C3=T2.C1 AND M3.C1=T2.C2, then
        // M3.R3=T3.R AND M3.C3=T3.C1 AND M3.C2=T3.C2 WHERE T2.x=T3.x.
        let s = join_spec(P3);
        assert_eq!(s.m_keys1, vec![1, 5, 3]);
        assert_eq!(s.mid_keys2, vec![2, 5, 4, 9]); // R3, C3, C2, T2.x (z)
        assert_eq!(s.t3_keys, vec![1, 3, 5, 2]);
        assert_eq!(s.x_col, 11); // T2.y
        assert_eq!(s.y_col, 18); // T3.y
        assert_eq!(s.head_keys_mid, vec![0, 3, 4, 11, 18]);
        assert_eq!(s.head_keys_t, vec![1, 3, 5, 2, 4]);
        assert_eq!(s.i2_col, 7);
        assert_eq!(s.i3_col, Some(14));
    }

    #[test]
    fn spec_p4_p5_p6_bindings() {
        let s4 = join_spec(P4);
        assert_eq!(s4.m_keys1, vec![1, 3, 5]); // q(x, z): C1 then C3
        assert_eq!(s4.x_col, 9); // T2.x
        assert_eq!(s4.mid_keys2, vec![2, 5, 4, 11]); // z = T2.y
        let s5 = join_spec(P5);
        assert_eq!(s5.t3_keys, vec![1, 3, 5, 4]); // z at T3.y
        assert_eq!(s5.y_col, 16); // T3.x
        let s6 = join_spec(P6);
        assert_eq!(s6.m_keys1, vec![1, 3, 5]);
        assert_eq!(s6.mid_keys2, vec![2, 4, 5, 11]);
        assert_eq!(s6.y_col, 16);
    }

    #[test]
    fn plans_build_for_all_patterns() {
        for p in RulePattern::ALL {
            let atoms = ground_atoms_plan(p, "M", "T");
            let factors = ground_factors_plan(p, "M", "T");
            // Shape sanity: atoms end in Distinct(Project(..)).
            assert!(atoms.describe().contains("HashDistinct"));
            assert!(factors.describe().contains("Project"));
        }
    }

    #[test]
    fn violators_plan_shapes() {
        let p1 = violators_plan("T", "O", 1);
        let p2 = violators_plan("T", "O", 2);
        assert!(p1.describe().contains("HashDistinct"));
        assert!(p2.describe().contains("HashDistinct"));
    }
}
