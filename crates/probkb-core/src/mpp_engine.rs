//! The MPP engine: ProbKB on "Greenplum" (§4.4).
//!
//! Two modes reproduce the paper's comparison:
//!
//! * [`MppMode::Optimized`] (ProbKB-p) — `TΠ` is replicated into four
//!   redistributed materialized views keyed by the grounding join keys;
//!   queries are rewritten to scan the collocated replica and only the
//!   small rules table / intermediate result moves (Redistribute Motion).
//! * [`MppMode::NoViews`] (ProbKB-pn) — `TΠ` is distributed by fact id
//!   (no join-key affinity, like Greenplum's default); every join must
//!   broadcast the non-`TΠ` side, including the growing intermediate
//!   result — the expensive plan on the right of Figure 4.

use std::collections::HashSet;

use probkb_kb::prelude::RulePattern;
use probkb_mpp::prelude::*;
use probkb_relational::prelude::*;

use crate::engine::{GroundingEngine, ViolatorKey};
use crate::queries::{join_spec, JoinSpec};
use crate::relmodel::{names, tomega, tphi_schema, tpi, RelationalKb};

/// Physical design variants for the MPP engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MppMode {
    /// ProbKB-p: redistributed materialized views + motion-minimizing
    /// query rewrites.
    Optimized,
    /// ProbKB-pn: no views; broadcast-heavy plans.
    NoViews,
}

/// The MPP grounding engine.
pub struct MppEngine {
    cluster: Cluster,
    mode: MppMode,
    patterns: Vec<RulePattern>,
    views: RedistributedViews,
    threads: Option<usize>,
    optimize: bool,
}

impl MppEngine {
    /// Build an engine over a fresh cluster.
    pub fn new(segments: usize, network: NetworkModel, mode: MppMode) -> Self {
        MppEngine {
            cluster: Cluster::new(segments, network),
            mode,
            patterns: Vec::new(),
            views: RedistributedViews::paper_tpi_views(names::TPI),
            threads: None,
            optimize: default_optimize(),
        }
    }

    /// The underlying cluster (motion telemetry, EXPLAIN).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The engine's mode.
    pub fn mode(&self) -> MppMode {
        self.mode
    }

    fn run_gathered(&self, plan: &DPlan) -> Result<Table> {
        let mut exec = DExecutor::new(&self.cluster);
        if let Some(threads) = self.threads {
            exec = exec.with_threads(threads);
        }
        Ok(exec.execute_gathered(plan)?.0)
    }

    /// Permute `mid_keys` (paired positionally with `t_keys`) into the
    /// order of `view_keys`, so redistributing the mid side by the result
    /// hashes identically to the view's placement.
    fn permute_mid_keys(mid_keys: &[usize], t_keys: &[usize], view_keys: &[usize]) -> Vec<usize> {
        view_keys
            .iter()
            .map(|vk| {
                let pos = t_keys
                    .iter()
                    .position(|tk| tk == vk)
                    .expect("view key is a subset of the join keys");
                mid_keys[pos]
            })
            .collect()
    }

    /// The distribution policy a checkpointed table restores under,
    /// derived from its name the same way `load` assigns policies.
    fn policy_for(&self, name: &str) -> Result<DistPolicy> {
        if name == names::TPI {
            return Ok(DistPolicy::Hash(vec![tpi::I]));
        }
        if name == names::TOMEGA {
            return Ok(DistPolicy::Replicated);
        }
        for (view, keys) in self.views.keyed_views() {
            if view == name {
                return Ok(DistPolicy::Hash(keys));
            }
        }
        if name
            .strip_prefix('M')
            .is_some_and(|i| i.parse::<usize>().is_ok())
        {
            return Ok(DistPolicy::MasterOnly);
        }
        Err(Error::InvalidPlan(format!(
            "checkpoint contains unknown table {name}"
        )))
    }

    /// The view-scanning (collocated) `groundAtoms` body: only the rules
    /// table and the intermediate result move, by Redistribute Motion.
    fn atoms_body_views(&self, spec: &JoinSpec, m_name: &str) -> Result<DPlan> {
        let (view0, _) = self.views.pick_with_keys(&spec.t2_keys)?;
        let mut plan = DPlan::scan(m_name)
            .redistribute(spec.m_keys1.clone())
            .hash_join(
                DPlan::scan(view0),
                spec.m_keys1.clone(),
                spec.t2_keys.clone(),
            );
        if spec.arity == 3 {
            let (view_x, view_keys) = self.views.pick_with_keys(&spec.t3_keys)?;
            let redist = Self::permute_mid_keys(&spec.mid_keys2, &spec.t3_keys, &view_keys);
            plan = plan.redistribute(redist).hash_join(
                DPlan::scan(view_x),
                spec.mid_keys2.clone(),
                spec.t3_keys.clone(),
            );
        }
        Ok(plan)
    }

    /// The broadcast `groundAtoms` body — the plan a join-key-agnostic
    /// distribution forces (the right side of Figure 4).
    fn atoms_body_broadcast(&self, spec: &JoinSpec, m_name: &str) -> DPlan {
        let mut plan = DPlan::scan(m_name).broadcast().hash_join(
            DPlan::scan(names::TPI),
            spec.m_keys1.clone(),
            spec.t2_keys.clone(),
        );
        if spec.arity == 3 {
            plan = plan.broadcast().hash_join(
                DPlan::scan(names::TPI),
                spec.mid_keys2.clone(),
                spec.t3_keys.clone(),
            );
        }
        plan
    }

    /// The view-scanning `groundFactors` body (atoms body plus the head
    /// join).
    fn factors_body_views(&self, spec: &JoinSpec, m_name: &str) -> Result<DPlan> {
        let plan = self.atoms_body_views(spec, m_name)?;
        let (view_h, hkeys) = self.views.pick_with_keys(&spec.head_keys_t)?;
        let redist = Self::permute_mid_keys(&spec.head_keys_mid, &spec.head_keys_t, &hkeys);
        Ok(plan.redistribute(redist).hash_join(
            DPlan::scan(view_h),
            spec.head_keys_mid.clone(),
            spec.head_keys_t.clone(),
        ))
    }

    /// The broadcast `groundFactors` body.
    fn factors_body_broadcast(&self, spec: &JoinSpec, m_name: &str) -> DPlan {
        self.atoms_body_broadcast(spec, m_name)
            .broadcast()
            .hash_join(
                DPlan::scan(names::TPI),
                spec.head_keys_mid.clone(),
                spec.head_keys_t.clone(),
            )
    }

    /// Cost-based choice between the collocated (view-scanning) plan and
    /// the broadcast plan: compare estimated bytes shipped
    /// ([`shipping_cost`] over the cluster's merged table statistics) and
    /// keep the collocated plan on ties or when estimation fails — the
    /// statistics confirm, rather than replace, the paper's rewrite.
    fn cheaper_motion_plan(&self, collocated: DPlan, broadcast: DPlan) -> DPlan {
        let segments = self.cluster.num_segments();
        match (
            shipping_cost(&collocated, &self.cluster, segments),
            shipping_cost(&broadcast, &self.cluster, segments),
        ) {
            (Ok(c), Ok(b)) if b < c => broadcast,
            _ => collocated,
        }
    }

    /// Build the distributed `groundAtoms` plan for one partition.
    /// Public so the Figure 4 harness can EXPLAIN it.
    pub fn ground_atoms_dplan(&self, pattern: RulePattern) -> Result<DPlan> {
        let spec = join_spec(pattern);
        let m_name = names::mln(pattern.index());
        let plan = match self.mode {
            MppMode::Optimized => {
                let views = self.atoms_body_views(&spec, &m_name)?;
                if self.optimize {
                    self.cheaper_motion_plan(views, self.atoms_body_broadcast(&spec, &m_name))
                } else {
                    views
                }
            }
            MppMode::NoViews => self.atoms_body_broadcast(&spec, &m_name),
        };
        Ok(project_candidates(plan, &spec))
    }

    /// Build the distributed `groundFactors` plan for one partition.
    pub fn ground_factors_dplan(&self, pattern: RulePattern) -> Result<DPlan> {
        let spec = join_spec(pattern);
        let m_name = names::mln(pattern.index());
        let mut head_off = spec.m_width + 7;
        if spec.arity == 3 {
            head_off += 7;
        }
        let body = match self.mode {
            MppMode::Optimized => {
                let views = self.factors_body_views(&spec, &m_name)?;
                if self.optimize {
                    self.cheaper_motion_plan(views, self.factors_body_broadcast(&spec, &m_name))
                } else {
                    views
                }
            }
            MppMode::NoViews => self.factors_body_broadcast(&spec, &m_name),
        };
        let i3 = match spec.i3_col {
            Some(c) => Expr::col(c),
            None => Expr::lit(Value::Null),
        };
        Ok(body.project(vec![
            (Expr::col(head_off + tpi::I), "I1"),
            (Expr::col(spec.i2_col), "I2"),
            (i3, "I3"),
            (Expr::col(spec.w_col), "w"),
        ]))
    }
}

fn project_candidates(plan: DPlan, spec: &JoinSpec) -> DPlan {
    plan.project(vec![
        (Expr::col(0), "R"),
        (Expr::col(spec.x_col), "x"),
        (Expr::col(spec.c1_col), "C1"),
        (Expr::col(spec.y_col), "y"),
        (Expr::col(spec.c2_col), "C2"),
    ])
    .distinct() // segment-local pre-dedup; driver dedups globally
}

impl GroundingEngine for MppEngine {
    fn name(&self) -> &str {
        match self.mode {
            MppMode::Optimized => "ProbKB-p",
            MppMode::NoViews => "ProbKB-pn",
        }
    }

    fn set_threads(&mut self, threads: usize) {
        // Caps the per-segment fork-join pool; segment count still bounds
        // the effective parallelism per operator.
        self.threads = Some(threads.max(1));
    }

    fn set_optimize(&mut self, optimize: bool) {
        self.optimize = optimize;
    }

    fn load(&mut self, rel: &RelationalKb) -> Result<()> {
        // TΠ distributed by fact id — Greenplum's default first-column
        // distribution, deliberately join-key-agnostic.
        self.cluster.create_or_replace_table(
            names::TPI,
            rel.t_pi.clone(),
            DistPolicy::Hash(vec![tpi::I]),
        );
        self.cluster.create_or_replace_table(
            names::TOMEGA,
            rel.t_omega.clone(),
            DistPolicy::Replicated,
        );
        self.patterns.clear();
        for (pattern, table) in &rel.mln {
            self.cluster.create_or_replace_table(
                names::mln(pattern.index()),
                table.clone(),
                DistPolicy::MasterOnly,
            );
            self.patterns.push(*pattern);
        }
        if self.mode == MppMode::Optimized {
            self.views.refresh_from(&self.cluster, &rel.t_pi);
        }
        Ok(())
    }

    fn ground_atoms(&mut self) -> Result<(Table, usize)> {
        let mut all = Table::empty(crate::relmodel::candidate_schema());
        let mut queries = 0;
        for pattern in self.patterns.clone() {
            let plan = self.ground_atoms_dplan(pattern)?;
            all.extend_from(self.run_gathered(&plan)?);
            queries += 1;
        }
        all.dedup_rows();
        Ok((all, queries))
    }

    fn insert_facts(&mut self, rows: Vec<Row>) -> Result<usize> {
        // Incremental view maintenance: route the new rows into every
        // replica as well — each view's hash policy places them on the
        // right segment, so collocation is preserved without a full
        // refresh.
        if self.mode == MppMode::Optimized {
            for view in self.views.view_names() {
                self.cluster.insert_rows(&view, rows.clone())?;
            }
        }
        self.cluster.insert_rows(names::TPI, rows)
    }

    fn find_violators(&mut self) -> Result<HashSet<ViolatorKey>> {
        let mut violators = HashSet::new();
        for alpha in [1i64, 2] {
            let (key_entity, key_class, other_class) = if alpha == 1 {
                (tpi::X, tpi::C1, tpi::C2)
            } else {
                (tpi::Y, tpi::C2, tpi::C1)
            };
            let deg_col = 7 + tomega::DEG;
            let omega_c1 = 7 + tomega::C1;
            let omega_c2 = 7 + tomega::C2;
            let class_guard = |omega_col: usize, t_col: usize| {
                Expr::col(omega_col)
                    .is_null()
                    .or(Expr::col(omega_col).eq(Expr::col(t_col)))
            };
            // TΩ is replicated, so the join is segment-local; redistribute
            // by the grouping key so the aggregate is collocated too.
            let plan = DPlan::scan(names::TPI)
                .hash_join(
                    DPlan::scan(names::TOMEGA)
                        .filter(Expr::col(tomega::ALPHA).eq(Expr::lit(alpha))),
                    vec![tpi::R],
                    vec![tomega::R],
                )
                .filter(class_guard(omega_c1, tpi::C1).and(class_guard(omega_c2, tpi::C2)))
                .redistribute(vec![tpi::R, key_entity, key_class, other_class])
                .aggregate(
                    vec![tpi::R, key_entity, key_class, other_class],
                    vec![
                        AggExpr::new(AggFunc::CountStar, "cnt"),
                        AggExpr::new(AggFunc::Min(deg_col), "mindeg"),
                    ],
                )
                .filter(Expr::col(4).gt(Expr::col(5)))
                .project(vec![(Expr::col(1), "entity"), (Expr::col(2), "class")]);
            for row in self.run_gathered(&plan)?.rows() {
                violators.insert((
                    row[0].as_int().expect("entity"),
                    row[1].as_int().expect("class"),
                ));
            }
        }
        Ok(violators)
    }

    fn delete_violators(&mut self, violators: &HashSet<ViolatorKey>) -> Result<usize> {
        if violators.is_empty() {
            return Ok(0);
        }
        let keys: HashSet<Vec<Value>> = violators
            .iter()
            .map(|(e, c)| vec![Value::Int(*e), Value::Int(*c)])
            .collect();
        let subj = self
            .cluster
            .delete_matching(names::TPI, &[tpi::X, tpi::C1], &keys)?;
        let obj = self
            .cluster
            .delete_matching(names::TPI, &[tpi::Y, tpi::C2], &keys)?;
        if self.mode == MppMode::Optimized {
            for view in self.views.view_names() {
                self.cluster
                    .delete_matching(&view, &[tpi::X, tpi::C1], &keys)?;
                self.cluster
                    .delete_matching(&view, &[tpi::Y, tpi::C2], &keys)?;
            }
        }
        Ok(subj + obj)
    }

    fn redistribute(&mut self) -> Result<()> {
        // Views are maintained incrementally by insert_facts /
        // delete_violators, so the end-of-iteration redistribute is a
        // no-op unless the views were never materialized.
        if self.mode == MppMode::Optimized && !self.cluster.contains(&self.views.view_names()[0])
        {
            self.views.refresh(&self.cluster)?;
        }
        Ok(())
    }

    fn ground_factors(&mut self) -> Result<(Table, usize)> {
        let mut phi = Table::empty(tphi_schema());
        let mut queries = 0;
        for pattern in self.patterns.clone() {
            let plan = self.ground_factors_dplan(pattern)?;
            phi.extend_from(self.run_gathered(&plan)?);
            queries += 1;
        }
        // Singleton factors: a segment-local scan of TΠ.
        let plan = DPlan::scan(names::TPI)
            .filter(Expr::col(tpi::W).is_not_null())
            .project(vec![
                (Expr::col(tpi::I), "I1"),
                (Expr::lit(Value::Null), "I2"),
                (Expr::lit(Value::Null), "I3"),
                (Expr::col(tpi::W), "w"),
            ]);
        phi.extend_from(self.run_gathered(&plan)?);
        queries += 1;
        Ok((phi, queries))
    }

    fn fact_count(&self) -> Result<usize> {
        self.cluster.row_count(names::TPI)
    }

    fn facts(&self) -> Result<Table> {
        let mut t = self.cluster.gather_table(names::TPI)?;
        t.sort_by_cols(&[tpi::I]);
        Ok(t)
    }

    fn export_state(&self) -> Result<Vec<(String, Table)>> {
        // One entry per (table, segment): restoring slices verbatim —
        // instead of re-placing rows — preserves per-segment row order,
        // which keeps resumed join outputs byte-identical.
        let mut state = Vec::new();
        for name in self.cluster.names() {
            for segment in 0..self.cluster.num_segments() {
                state.push((
                    slice_checkpoint_name(&name, segment),
                    (*self.cluster.slice(segment, &name)?).clone(),
                ));
            }
        }
        Ok(state)
    }

    fn import_state(&mut self, state: &[(String, Table)]) -> Result<()> {
        use std::collections::HashMap;
        let mut grouped: HashMap<&str, Vec<(usize, &Table)>> = HashMap::new();
        for (entry, table) in state {
            let (name, segment) = parse_slice_checkpoint_name(entry).ok_or_else(|| {
                Error::InvalidPlan(format!("not a segment checkpoint name: {entry}"))
            })?;
            grouped.entry(name).or_default().push((segment, table));
        }
        for name in self.cluster.names() {
            self.cluster.drop_table(&name);
        }
        let segments = self.cluster.num_segments();
        let mut names_sorted: Vec<&str> = grouped.keys().copied().collect();
        names_sorted.sort_unstable();
        for name in names_sorted {
            let mut slices = grouped.remove(name).expect("grouped by name");
            slices.sort_by_key(|(segment, _)| *segment);
            let contiguous = slices.iter().enumerate().all(|(i, (s, _))| *s == i);
            if slices.len() != segments || !contiguous {
                return Err(Error::InvalidPlan(format!(
                    "checkpoint of {name} has {} slices but the cluster has {segments} segments",
                    slices.len()
                )));
            }
            let policy = self.policy_for(name)?;
            self.cluster.create_or_replace_from_slices(
                name,
                policy,
                slices.into_iter().map(|(_, t)| t.clone()).collect(),
            )?;
        }
        self.patterns = RulePattern::ALL
            .into_iter()
            .filter(|p| self.cluster.contains(&names::mln(p.index())))
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounding::{ground, GroundingConfig};
    use crate::single_node::SingleNodeEngine;
    use probkb_kb::prelude::parse;

    const TABLE1: &str = r#"
        fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
        fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
        rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
        rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
        rule 2.68 grow_up_in(x:Writer, y:Place) :- born_in(x, y)
        rule 0.74 grow_up_in(x:Writer, y:City) :- born_in(x, y)
        rule 0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
        rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
        functional born_in 1 1
    "#;

    fn fact_keys(t: &Table) -> Vec<Vec<i64>> {
        let mut k: Vec<Vec<i64>> = t
            .rows()
            .iter()
            .map(|r| tpi::KEY.iter().map(|&c| r[c].as_int().unwrap()).collect())
            .collect();
        k.sort();
        k
    }

    #[test]
    fn both_mpp_modes_match_single_node() {
        let kb = parse(TABLE1).unwrap().build();
        let config = GroundingConfig::default();

        let mut single = SingleNodeEngine::new();
        let s = ground(&kb, &mut single, &config).unwrap();

        for mode in [MppMode::Optimized, MppMode::NoViews] {
            let mut mpp = MppEngine::new(4, NetworkModel::free(), mode);
            let m = ground(&kb, &mut mpp, &config).unwrap();
            assert_eq!(m.facts.len(), s.facts.len(), "{mode:?} fact count");
            assert_eq!(fact_keys(&m.facts), fact_keys(&s.facts), "{mode:?} keys");
            assert_eq!(m.factors.len(), s.factors.len(), "{mode:?} factors");
        }
    }

    #[test]
    fn optimized_mode_never_broadcasts() {
        let kb = parse(TABLE1).unwrap().build();
        let mut mpp = MppEngine::new(4, NetworkModel::gigabit(), MppMode::Optimized);
        ground(&kb, &mut mpp, &GroundingConfig::default()).unwrap();
        assert_eq!(mpp.cluster().motions().rows_by_kind(MotionKind::Broadcast), 0);
    }

    #[test]
    fn noviews_mode_broadcasts_heavily() {
        let kb = parse(TABLE1).unwrap().build();
        let mut mpp = MppEngine::new(4, NetworkModel::gigabit(), MppMode::NoViews);
        ground(&kb, &mut mpp, &GroundingConfig::default()).unwrap();
        assert!(mpp.cluster().motions().rows_by_kind(MotionKind::Broadcast) > 0);
    }

    #[test]
    fn explain_shows_motion_difference() {
        let kb = parse(TABLE1).unwrap().build();
        let rel = crate::relmodel::load(&kb);
        let mut opt = MppEngine::new(4, NetworkModel::gigabit(), MppMode::Optimized);
        opt.load(&rel).unwrap();
        let mut pn = MppEngine::new(4, NetworkModel::gigabit(), MppMode::NoViews);
        pn.load(&rel).unwrap();

        use probkb_kb::prelude::RulePattern::P3;
        let opt_plan = explain_dplan(&opt.ground_atoms_dplan(P3).unwrap());
        let pn_plan = explain_dplan(&pn.ground_atoms_dplan(P3).unwrap());
        assert!(opt_plan.contains("Redistribute Motion"));
        assert!(!opt_plan.contains("Broadcast Motion"));
        assert!(opt_plan.contains("T_pi__d")); // scans a view replica
        assert!(pn_plan.contains("Broadcast Motion"));
        assert!(!pn_plan.contains("T_pi__d"));
    }

    #[test]
    fn view_key_permutation_matches_pairing() {
        // P3: t3_keys [1,3,5,2], mid_keys2 [2,5,4,9], view keyed [1,3,2,5]
        // → mid must redistribute by [2,5,9,4].
        let out = MppEngine::permute_mid_keys(&[2, 5, 4, 9], &[1, 3, 5, 2], &[1, 3, 2, 5]);
        assert_eq!(out, vec![2, 5, 9, 4]);
    }

    #[test]
    fn works_with_one_segment() {
        let kb = parse(TABLE1).unwrap().build();
        let mut mpp = MppEngine::new(1, NetworkModel::free(), MppMode::Optimized);
        let out = ground(&kb, &mut mpp, &GroundingConfig::default()).unwrap();
        assert_eq!(out.facts.len(), 7);
    }
}
