//! Algorithm 1: the grounding driver.
//!
//! Repeats `groundAtoms` over all partitions until the transitive closure
//! is reached (or a blow-up guard trips), applying constraints and
//! redistributing after each iteration, then builds the ground factors.

use std::time::{Duration, Instant};

use probkb_kb::prelude::ProbKb;
use probkb_relational::prelude::{Result, Row, Table, Value};

use crate::engine::GroundingEngine;
use crate::relmodel::{load, tphi, tpi, FactRegistry, RelationalKb};

/// Tuning knobs for Algorithm 1.
#[derive(Debug, Clone)]
pub struct GroundingConfig {
    /// Iteration cap (the paper grounds most KBs in ~15 iterations).
    pub max_iterations: usize,
    /// Run Query 3 (constraint enforcement) once before iteration 1,
    /// cleaning the extracted facts (§6.1.1 does this).
    pub preclean: bool,
    /// Run Query 3 after every iteration (the `applyConstraints` call in
    /// Algorithm 1 line 6). Without it, machine-built KBs blow up
    /// (Table 3's 592M factors).
    pub apply_constraints: bool,
    /// Abort when `TΠ` exceeds this many facts (guard for the deliberate
    /// no-constraints blow-up experiments).
    pub max_total_facts: Option<usize>,
    /// Fork-join worker cap forwarded to the engine via
    /// [`GroundingEngine::set_threads`] before loading. `None` keeps the
    /// engine's own default (`PROBKB_THREADS` for single-node engines,
    /// one worker per segment for MPP).
    pub threads: Option<usize>,
    /// Enable the statistics-driven cost-based planner, forwarded to the
    /// engine via [`GroundingEngine::set_optimize`] before loading.
    /// `None` keeps the engine's own default (`PROBKB_OPTIMIZE`, on
    /// unless set to `0`). Plan choice never changes grounding output —
    /// the unoptimized path stays available as a differential oracle.
    pub optimize: Option<bool>,
}

impl Default for GroundingConfig {
    fn default() -> Self {
        GroundingConfig {
            max_iterations: 15,
            preclean: false,
            apply_constraints: true,
            max_total_facts: None,
            threads: None,
            optimize: None,
        }
    }
}

impl GroundingConfig {
    /// The raw configuration of §6.1.1's performance runs: constraints
    /// once up front, none during inference, fixed iteration budget.
    pub fn performance_run(iterations: usize) -> Self {
        GroundingConfig {
            max_iterations: iterations,
            preclean: true,
            apply_constraints: false,
            max_total_facts: None,
            threads: None,
            optimize: None,
        }
    }
}

/// Statistics for one grounding iteration.
#[derive(Debug, Clone)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Facts newly added this iteration.
    pub new_facts: usize,
    /// Facts deleted by constraint enforcement this iteration.
    pub deleted_facts: usize,
    /// `TΠ` size after this iteration.
    pub facts_after: usize,
    /// Queries executed this iteration (6 for ProbKB, ~30,912 for Tuffy).
    pub queries: usize,
    /// Wall-clock time of this iteration.
    pub elapsed: Duration,
}

/// Full report of a grounding run — the raw material for Table 3 and
/// Figure 6.
#[derive(Debug, Clone)]
pub struct GroundingReport {
    /// Engine name.
    pub engine: String,
    /// Bulkload time (Table 3, "Load" column).
    pub load_time: Duration,
    /// Facts deleted by the pre-inference cleaning pass.
    pub precleaned: usize,
    /// Per-iteration stats (Table 3, "Query 1" columns).
    pub iterations: Vec<IterationStats>,
    /// Whether the closure was reached (vs. hitting a cap).
    pub converged: bool,
    /// Time to build `TΦ` (Table 3, "Query 2" column).
    pub factor_time: Duration,
    /// Queries used to build `TΦ`.
    pub factor_queries: usize,
    /// Final fact count.
    pub total_facts: usize,
    /// Final factor count (Table 3, "Result size").
    pub total_factors: usize,
}

impl GroundingReport {
    /// Total grounding time across load, iterations, and factors.
    pub fn total_time(&self) -> Duration {
        self.load_time
            + self.factor_time
            + self.iterations.iter().map(|i| i.elapsed).sum::<Duration>()
    }

    /// Total queries across iterations and the factor pass.
    pub fn total_queries(&self) -> usize {
        self.factor_queries + self.iterations.iter().map(|i| i.queries).sum::<usize>()
    }

    /// Facts inferred beyond the base KB.
    pub fn inferred_facts(&self) -> usize {
        self.iterations.iter().map(|i| i.new_facts).sum()
    }
}

/// The result of grounding: the expanded facts, the factor graph table,
/// and the run report.
#[derive(Debug)]
pub struct GroundingOutcome {
    /// Final `TΠ` snapshot (base + inferred facts, post-constraints).
    pub facts: Table,
    /// The ground factors `TΦ(I1, I2, I3, w)`.
    pub factors: Table,
    /// The iteration at which each inferred fact id was first derived
    /// (base facts are absent; they exist "at iteration 0"). Quality
    /// evaluation uses this to plot precision as inference proceeds.
    pub fact_iteration: std::collections::HashMap<i64, usize>,
    /// Run statistics.
    pub report: GroundingReport,
}

/// Run Algorithm 1 over a KB with the given engine.
pub fn ground(
    kb: &ProbKb,
    engine: &mut dyn GroundingEngine,
    config: &GroundingConfig,
) -> Result<GroundingOutcome> {
    let rel = load(kb);
    ground_loaded(rel, engine, config)
}

/// Run Algorithm 1 from an already-built relational KB (lets benchmarks
/// exclude or measure the load step separately).
pub fn ground_loaded(
    rel: RelationalKb,
    engine: &mut dyn GroundingEngine,
    config: &GroundingConfig,
) -> Result<GroundingOutcome> {
    if let Some(threads) = config.threads {
        engine.set_threads(threads);
    }
    if let Some(optimize) = config.optimize {
        engine.set_optimize(optimize);
    }
    let load_start = Instant::now();
    engine.load(&rel)?;
    let load_time = load_start.elapsed();
    let mut registry = rel.registry;

    let mut precleaned = 0;
    if config.preclean {
        let violators = engine.find_violators()?;
        precleaned = engine.delete_violators(&violators)?;
        engine.redistribute()?;
    }

    let mut iterations = Vec::new();
    let mut converged = false;
    let mut fact_iteration = std::collections::HashMap::new();
    for iteration in 1..=config.max_iterations {
        let start = Instant::now();
        let (candidates, mut queries) = engine.ground_atoms()?;
        let new_rows = register_candidates(&mut registry, &candidates);
        let new_facts = new_rows.len();
        for row in &new_rows {
            fact_iteration.insert(row[0].as_int().expect("fact id"), iteration);
        }
        if new_facts == 0 {
            converged = true;
            iterations.push(IterationStats {
                iteration,
                new_facts: 0,
                deleted_facts: 0,
                facts_after: engine.fact_count()?,
                queries,
                elapsed: start.elapsed(),
            });
            break;
        }
        engine.insert_facts(new_rows)?;

        let mut deleted_facts = 0;
        if config.apply_constraints {
            let violators = engine.find_violators()?;
            queries += 2; // Type I + Type II violator queries
            deleted_facts = engine.delete_violators(&violators)?;
        }
        engine.redistribute()?;

        let facts_after = engine.fact_count()?;
        iterations.push(IterationStats {
            iteration,
            new_facts,
            deleted_facts,
            facts_after,
            queries,
            elapsed: start.elapsed(),
        });

        if let Some(cap) = config.max_total_facts {
            if facts_after > cap {
                break;
            }
        }
    }

    let factor_start = Instant::now();
    let (mut factors, factor_queries) = engine.ground_factors()?;
    canonicalize_factors(&mut factors);
    let factor_time = factor_start.elapsed();
    let mut facts = engine.facts()?;
    facts.sort_by_cols(&[tpi::I]);

    let report = GroundingReport {
        engine: engine.name().to_string(),
        load_time,
        precleaned,
        converged,
        factor_time,
        factor_queries,
        total_facts: facts.len(),
        total_factors: factors.len(),
        iterations,
    };
    Ok(GroundingOutcome {
        facts,
        factors,
        fact_iteration,
        report,
    })
}

/// Dedupe candidates against everything ever seen, assign ids, and build
/// the new `TΠ` rows (weight NULL — to be filled by marginal inference).
/// Shared with the checkpointed driver (`crate::checkpoint`), which must
/// mirror this loop exactly.
///
/// Candidate row order depends on the physical plans the engine ran
/// (join order, build sides, motions), but fact ids must not — so the
/// keys are sorted before registration. This makes grounding output
/// identical across optimizer settings, thread counts, and engines.
pub(crate) fn register_candidates(registry: &mut FactRegistry, candidates: &Table) -> Vec<Row> {
    let mut keys: Vec<[i64; 5]> = candidates
        .rows()
        .iter()
        .map(|row| FactRegistry::key_of_candidate(row))
        .collect();
    keys.sort_unstable();
    let mut rows = Vec::new();
    for key in keys {
        if let Some(id) = registry.register(key) {
            rows.push(vec![
                Value::Int(id),
                Value::Int(key[0]),
                Value::Int(key[1]),
                Value::Int(key[2]),
                Value::Int(key[3]),
                Value::Int(key[4]),
                Value::Null,
            ]);
        }
    }
    rows
}

/// Sort `TΦ` into its canonical order (all four columns ascending), so
/// the factor table is byte-identical no matter which physical plans
/// produced it. Bag semantics are preserved — duplicates stay. Shared
/// with the checkpointed driver, which must log the canonical table.
pub(crate) fn canonicalize_factors(factors: &mut Table) {
    factors.sort_by_cols(&[tphi::I1, tphi::I2, tphi::I3, tphi::W]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relmodel::tphi;
    use crate::single_node::SingleNodeEngine;
    use probkb_kb::prelude::parse;

    /// The complete Table 1 / Figure 3 running example.
    pub(crate) const TABLE1: &str = r#"
        fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
        fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
        rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
        rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
        rule 2.68 grow_up_in(x:Writer, y:Place) :- born_in(x, y)
        rule 0.74 grow_up_in(x:Writer, y:City) :- born_in(x, y)
        rule 0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
        rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
    "#;

    #[test]
    fn figure3_worked_example() {
        let kb = parse(TABLE1).unwrap().build();
        let mut engine = SingleNodeEngine::new();
        let outcome = ground(&kb, &mut engine, &GroundingConfig::default()).unwrap();

        // Final TΠ (Figure 3(g)): the 2 base facts + live_in ×2 +
        // grow_up_in ×2 + located_in(Brooklyn, NYC) = 7 facts.
        assert_eq!(outcome.facts.len(), 7);
        assert!(outcome.report.converged);

        // Final TΦ (Figure 3(e)): 2 singleton factors + 4 M1 factors +
        // 2 M3 factors (same head via born_in-rule and live_in-rule) = 8.
        assert_eq!(outcome.factors.len(), 8);

        // The located_in head has TWO factors (bag union keeps both
        // derivations — Proposition 1 discussion).
        let located_head: Vec<_> = outcome
            .factors
            .rows()
            .iter()
            .filter(|r| !r[tphi::I3].is_null())
            .collect();
        assert_eq!(located_head.len(), 2);
        assert_eq!(located_head[0][tphi::I1], located_head[1][tphi::I1]);
    }

    #[test]
    fn convergence_detected() {
        let kb = parse(TABLE1).unwrap().build();
        let mut engine = SingleNodeEngine::new();
        let outcome = ground(&kb, &mut engine, &GroundingConfig::default()).unwrap();
        // Iter 1 infers 5 facts (4 via M1, 1 via M3-born_in); iter 2 finds
        // only duplicates (the M3-live_in derivation) and converges.
        let news: Vec<usize> = outcome
            .report
            .iterations
            .iter()
            .map(|i| i.new_facts)
            .collect();
        assert_eq!(news, vec![5, 0]);
        assert_eq!(outcome.report.inferred_facts(), 5);
    }

    #[test]
    fn queries_per_iteration_equal_partition_count() {
        let kb = parse(TABLE1).unwrap().build();
        let mut engine = SingleNodeEngine::new();
        let config = GroundingConfig {
            apply_constraints: false,
            ..GroundingConfig::default()
        };
        let outcome = ground(&kb, &mut engine, &config).unwrap();
        // Two non-empty partitions (M1, M3) → 2 queries per iteration,
        // regardless of the 8 rules.
        for iter in &outcome.report.iterations {
            assert_eq!(iter.queries, 2);
        }
    }

    #[test]
    fn constraints_remove_ambiguous_entities_during_grounding() {
        let kb = parse(
            r#"
            fact 0.9 born_in(Mandel:Writer, Berlin:City)
            fact 0.9 born_in(Mandel:Writer, Baltimore:City)
            rule 0.52 located_in(x:City, y:City) :- born_in(z:Writer, x), born_in(z, y)
            functional born_in 1 1
            "#,
        )
        .unwrap()
        .build();

        // Without constraints: the ambiguous "Mandel" fabricates four
        // located_in facts — Berlin/Baltimore in both orders plus the two
        // reflexive groundings (Horn rules do not require x ≠ y).
        let mut engine = SingleNodeEngine::new();
        let loose = GroundingConfig {
            apply_constraints: false,
            ..GroundingConfig::default()
        };
        let out = ground(&kb, &mut engine, &loose).unwrap();
        assert_eq!(out.report.inferred_facts(), 4);

        // With preclean: Mandel is removed before any inference happens.
        let mut engine = SingleNodeEngine::new();
        let strict = GroundingConfig {
            preclean: true,
            ..GroundingConfig::default()
        };
        let out = ground(&kb, &mut engine, &strict).unwrap();
        assert_eq!(out.report.precleaned, 2);
        assert_eq!(out.report.inferred_facts(), 0);
        assert_eq!(out.facts.len(), 0);
    }

    #[test]
    fn blowup_guard_stops_runaway_grounding() {
        // A transitive-closure-style rule over a chain keeps inferring.
        let mut text = String::new();
        for i in 0..30 {
            text.push_str(&format!("fact 0.9 next(n{}:Node, n{}:Node)\n", i, i + 1));
        }
        text.push_str("rule 1.0 next(x:Node, y:Node) :- next(x, z:Node), next(z, y)\n");
        let kb = parse(&text).unwrap().build();
        let mut engine = SingleNodeEngine::new();
        let config = GroundingConfig {
            max_total_facts: Some(100),
            apply_constraints: false,
            ..GroundingConfig::default()
        };
        let out = ground(&kb, &mut engine, &config).unwrap();
        assert!(!out.report.converged);
        assert!(out.facts.len() > 100); // crossed the cap, then stopped
        assert!(out.report.iterations.len() < 15);
    }

    #[test]
    fn max_iterations_caps_work() {
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("fact 0.9 next(n{}:Node, n{}:Node)\n", i, i + 1));
        }
        text.push_str("rule 1.0 next(x:Node, y:Node) :- next(x, z:Node), next(z, y)\n");
        let kb = parse(&text).unwrap().build();
        let mut engine = SingleNodeEngine::new();
        let config = GroundingConfig {
            max_iterations: 2,
            apply_constraints: false,
            ..GroundingConfig::default()
        };
        let out = ground(&kb, &mut engine, &config).unwrap();
        assert_eq!(out.report.iterations.len(), 2);
        assert!(!out.report.converged);
    }

    #[test]
    fn report_totals_are_consistent() {
        let kb = parse(TABLE1).unwrap().build();
        let mut engine = SingleNodeEngine::new();
        let out = ground(&kb, &mut engine, &GroundingConfig::default()).unwrap();
        let r = &out.report;
        assert_eq!(r.total_facts, out.facts.len());
        assert_eq!(r.total_factors, out.factors.len());
        assert!(r.total_time() >= r.load_time + r.factor_time);
        assert!(r.total_queries() >= r.factor_queries);
        assert_eq!(r.engine, "ProbKB");
    }
}
