//! The high-level knowledge-expansion facade: pick a backend, ground a
//! KB, and get decoded inferred facts back.

use probkb_kb::prelude::{ClassId, EntityId, Fact, ProbKb, RelationId};
use probkb_mpp::prelude::NetworkModel;
use probkb_relational::prelude::{Result, Table};

use crate::engine::GroundingEngine;
use crate::grounding::{ground, GroundingConfig, GroundingOutcome};
use crate::mpp_engine::{MppEngine, MppMode};
use crate::relmodel::tpi;
use crate::single_node::SingleNodeEngine;
use crate::tuffy::TuffyEngine;

/// Backend selection for [`expand`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-node batch grounding (ProbKB on PostgreSQL).
    SingleNode,
    /// MPP batch grounding (ProbKB-p / ProbKB-pn on Greenplum).
    Mpp {
        /// Number of shared-nothing segments.
        segments: usize,
        /// With or without redistributed materialized views.
        mode: MppMode,
    },
    /// The per-rule Tuffy-T baseline.
    Tuffy,
}

/// Options for [`expand`].
#[derive(Debug, Clone)]
pub struct ExpandOptions {
    /// Grounding configuration (iterations, constraints, guards).
    pub config: GroundingConfig,
    /// Which engine to run.
    pub backend: Backend,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions {
            config: GroundingConfig::default(),
            backend: Backend::SingleNode,
        }
    }
}

/// The result of knowledge expansion.
#[derive(Debug)]
pub struct Expansion {
    /// Raw grounding outcome (facts table, `TΦ`, report).
    pub outcome: GroundingOutcome,
    /// Inferred facts (weight-NULL `TΠ` rows), decoded to the KB model.
    pub new_facts: Vec<Fact>,
}

impl Expansion {
    /// Pretty-print the inferred facts against a KB's dictionaries.
    pub fn describe_new_facts(&self, kb: &ProbKb) -> Vec<String> {
        self.new_facts
            .iter()
            .map(|f| kb.fact_to_string(f))
            .collect()
    }
}

/// Decode `TΠ` rows with NULL weights back into [`Fact`]s.
pub fn decode_inferred(facts: &Table) -> Vec<Fact> {
    facts
        .rows()
        .iter()
        .filter(|r| r[tpi::W].is_null())
        .map(|r| {
            Fact::inferred(
                RelationId::from_i64(r[tpi::R].as_int().expect("R")),
                EntityId::from_i64(r[tpi::X].as_int().expect("x")),
                ClassId::from_i64(r[tpi::C1].as_int().expect("C1")),
                EntityId::from_i64(r[tpi::Y].as_int().expect("y")),
                ClassId::from_i64(r[tpi::C2].as_int().expect("C2")),
            )
        })
        .collect()
}

/// Expand a knowledge base: run Algorithm 1 on the selected backend and
/// decode the newly inferred facts.
pub fn expand(kb: &ProbKb, options: &ExpandOptions) -> Result<Expansion> {
    let outcome = match options.backend {
        Backend::SingleNode => {
            let mut engine = SingleNodeEngine::new();
            ground(kb, &mut engine, &options.config)?
        }
        Backend::Mpp { segments, mode } => {
            let mut engine = MppEngine::new(segments, NetworkModel::gigabit(), mode);
            ground(kb, &mut engine, &options.config)?
        }
        Backend::Tuffy => {
            let mut engine = TuffyEngine::new();
            ground(kb, &mut engine, &options.config)?
        }
    };
    let new_facts = decode_inferred(&outcome.facts);
    Ok(Expansion { outcome, new_facts })
}

/// Expand with a caller-provided engine (custom cluster sizes, telemetry).
pub fn expand_with(
    kb: &ProbKb,
    engine: &mut dyn GroundingEngine,
    config: &GroundingConfig,
) -> Result<Expansion> {
    let outcome = ground(kb, engine, config)?;
    let new_facts = decode_inferred(&outcome.facts);
    Ok(Expansion { outcome, new_facts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_kb::prelude::parse;

    fn kb() -> ProbKb {
        parse(
            r#"
            fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
            rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
            "#,
        )
        .unwrap()
        .build()
    }

    #[test]
    fn expand_decodes_inferred_facts() {
        let kb = kb();
        let expansion = expand(&kb, &ExpandOptions::default()).unwrap();
        assert_eq!(expansion.new_facts.len(), 1);
        let described = expansion.describe_new_facts(&kb);
        assert_eq!(described, vec!["live_in(Ruth_Gruber, New_York_City)"]);
    }

    #[test]
    fn all_backends_agree() {
        let kb = kb();
        for backend in [
            Backend::SingleNode,
            Backend::Tuffy,
            Backend::Mpp {
                segments: 2,
                mode: MppMode::Optimized,
            },
            Backend::Mpp {
                segments: 2,
                mode: MppMode::NoViews,
            },
        ] {
            let options = ExpandOptions {
                backend,
                ..ExpandOptions::default()
            };
            let expansion = expand(&kb, &options).unwrap();
            assert_eq!(expansion.new_facts.len(), 1, "{backend:?}");
            assert_eq!(expansion.outcome.facts.len(), 2, "{backend:?}");
        }
    }
}
