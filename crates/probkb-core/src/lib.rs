//! # probkb-core
//!
//! ProbKB's core contribution (SIGMOD 2014): a relational model for
//! probabilistic knowledge bases and an SQL-style grounding algorithm that
//! applies MLN inference rules **in batches** — one join query per
//! structural rule partition (`O(k)` queries) instead of one query per
//! rule (`O(n)`, the Tuffy approach).
//!
//! * [`relmodel`] — the `TΠ` / `M1..M6` / `TΩ` / `TΦ` schemas and the KB
//!   loader (§4.2, Definitions 2–7).
//! * [`queries`] — the grounding join plans (Queries 1-i, 2-i, 3) derived
//!   from one shared [`queries::JoinSpec`] per pattern.
//! * [`grounding`] — Algorithm 1: iterate to closure, apply constraints,
//!   redistribute, then build ground factors.
//! * [`engine`] — the backend trait, with three implementations:
//!   [`single_node::SingleNodeEngine`] (PostgreSQL-style),
//!   [`mpp_engine::MppEngine`] (Greenplum-style, with redistributed
//!   materialized views), and [`tuffy::TuffyEngine`] (the per-rule,
//!   per-relation-table baseline).
//! * [`api`] — the high-level knowledge-expansion facade.
//!
//! ```
//! use probkb_core::prelude::*;
//! use probkb_kb::prelude::parse;
//!
//! let kb = parse(r#"
//!     fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
//!     rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
//! "#).unwrap().build();
//!
//! let mut engine = SingleNodeEngine::new();
//! let out = ground(&kb, &mut engine, &GroundingConfig::default()).unwrap();
//! assert_eq!(out.facts.len(), 2);     // base fact + inferred live_in
//! assert_eq!(out.factors.len(), 2);   // 1 singleton + 1 rule factor
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod checkpoint;
pub mod delta;
pub mod delta_store;
pub mod engine;
pub mod explain;
pub mod grounding;
pub mod local;
pub mod mpp_engine;
pub mod queries;
pub mod relmodel;
pub mod semi_naive;
pub mod single_node;
pub mod tuffy;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::api::{decode_inferred, expand, expand_with, Backend, ExpandOptions, Expansion};
    pub use crate::checkpoint::{
        ground_checkpointed, CheckpointConfig, CheckpointError, CheckpointResult, CheckpointedRun,
        ResumeSummary, CRASH_EXIT_CODE,
    };
    pub use crate::delta::{DeltaApplied, DeltaReport, DeltaRound, DeltaSession, KbDelta};
    pub use crate::delta_store::{
        DeltaResume, DurableDeltaSession, CRASH_AFTER_DELTA_ENV, CRASH_MID_DELTA_ENV,
        DELTA_SNAPSHOT_FILE, DELTA_WAL_FILE,
    };
    pub use crate::engine::{GroundingEngine, ViolatorKey};
    pub use crate::explain::{annotate, explain_grounding, render_report};
    pub use crate::grounding::{
        ground, ground_loaded, GroundingConfig, GroundingOutcome, GroundingReport,
        IterationStats,
    };
    pub use crate::local::{
        CacheAdvance, LocalBudget, LocalCache, LocalCacheEntry, LocalCacheStatus, LocalGround,
        LocalGrounder,
    };
    pub use crate::mpp_engine::{MppEngine, MppMode};
    pub use crate::queries::{
        ground_atoms_plan, ground_factors_plan, join_spec, singleton_factors_plan,
        violators_plan, JoinSpec,
    };
    pub use crate::relmodel::{
        candidate_schema, load, m2_schema, m3_schema, names, tomega_schema, tphi, tphi_schema,
        tpi, tpi_schema, FactRegistry, RelationalKb,
    };
    pub use crate::semi_naive::SemiNaiveEngine;
    pub use crate::single_node::SingleNodeEngine;
    pub use crate::tuffy::TuffyEngine;
}
