//! The relational model for probabilistic knowledge bases (§4.2):
//! schemas and loaders that turn a [`ProbKb`] into the `TΠ`, `M1..M6`,
//! and `TΩ` tables, plus the fact-id registry that assigns `I` values.

use probkb_support::hash::FxHashMap;

use probkb_kb::prelude::*;
use probkb_relational::prelude::*;

/// Column positions of the facts table `TΠ(I, R, x, C1, y, C2, w)`
/// (Definition 4).
pub mod tpi {
    /// Fact id `I`.
    pub const I: usize = 0;
    /// Relation `R`.
    pub const R: usize = 1;
    /// Subject entity `x`.
    pub const X: usize = 2;
    /// Subject class `C1`.
    pub const C1: usize = 3;
    /// Object entity `y`.
    pub const Y: usize = 4;
    /// Object class `C2`.
    pub const C2: usize = 5;
    /// Weight `w` (NULL while inferred facts await marginal inference).
    pub const W: usize = 6;
    /// The columns that identify a fact (everything but `I` and `w`).
    pub const KEY: [usize; 5] = [R, X, C1, Y, C2];
}

/// Column positions of the length-2 MLN tables `M1, M2 (R1, R2, C1, C2, w)`.
pub mod m2 {
    /// Head relation.
    pub const R1: usize = 0;
    /// Body relation.
    pub const R2: usize = 1;
    /// Class of `x`.
    pub const C1: usize = 2;
    /// Class of `y`.
    pub const C2: usize = 3;
    /// Rule weight.
    pub const W: usize = 4;
}

/// Column positions of the length-3 MLN tables
/// `M3..M6 (R1, R2, R3, C1, C2, C3, w)`.
pub mod m3 {
    /// Head relation.
    pub const R1: usize = 0;
    /// First body relation.
    pub const R2: usize = 1;
    /// Second body relation.
    pub const R3: usize = 2;
    /// Class of `x`.
    pub const C1: usize = 3;
    /// Class of `y`.
    pub const C2: usize = 4;
    /// Class of `z`.
    pub const C3: usize = 5;
    /// Rule weight.
    pub const W: usize = 6;
}

/// Column positions of the constraints table `TΩ(R, C1, C2, α, δ)`
/// (Definition 11). The class restriction columns are NULL for the common
/// case (§5.4) where functionality holds for all class pairs.
pub mod tomega {
    /// Constrained relation.
    pub const R: usize = 0;
    /// Optional subject-class restriction (NULL = any).
    pub const C1: usize = 1;
    /// Optional object-class restriction (NULL = any).
    pub const C2: usize = 2;
    /// Functionality type α ∈ {1, 2}.
    pub const ALPHA: usize = 3;
    /// Degree of pseudo-functionality δ.
    pub const DEG: usize = 4;
}

/// Column positions of the ground-factor table `TΦ(I1, I2, I3, w)`
/// (Definition 7). `I2`/`I3` are NULL for singleton/length-2 factors.
pub mod tphi {
    /// Head fact id.
    pub const I1: usize = 0;
    /// First body fact id (NULL for singleton factors).
    pub const I2: usize = 1;
    /// Second body fact id (NULL for factors of size ≤ 2).
    pub const I3: usize = 2;
    /// Factor weight.
    pub const W: usize = 3;
}

/// Schema of `TΠ`.
pub fn tpi_schema() -> Schema {
    Schema::new(vec![
        Column::new("I", DataType::Int),
        Column::new("R", DataType::Int),
        Column::new("x", DataType::Int),
        Column::new("C1", DataType::Int),
        Column::new("y", DataType::Int),
        Column::new("C2", DataType::Int),
        Column::nullable("w", DataType::Float),
    ])
}

/// Schema of the length-2 MLN tables `M1`/`M2`.
pub fn m2_schema() -> Schema {
    Schema::new(vec![
        Column::new("R1", DataType::Int),
        Column::new("R2", DataType::Int),
        Column::new("C1", DataType::Int),
        Column::new("C2", DataType::Int),
        Column::new("w", DataType::Float),
    ])
}

/// Schema of the length-3 MLN tables `M3..M6`.
pub fn m3_schema() -> Schema {
    Schema::new(vec![
        Column::new("R1", DataType::Int),
        Column::new("R2", DataType::Int),
        Column::new("R3", DataType::Int),
        Column::new("C1", DataType::Int),
        Column::new("C2", DataType::Int),
        Column::new("C3", DataType::Int),
        Column::new("w", DataType::Float),
    ])
}

/// Schema of `TΩ`.
pub fn tomega_schema() -> Schema {
    Schema::new(vec![
        Column::new("R", DataType::Int),
        Column::nullable("C1", DataType::Int),
        Column::nullable("C2", DataType::Int),
        Column::new("alpha", DataType::Int),
        Column::new("deg", DataType::Int),
    ])
}

/// Schema of `TΦ`.
pub fn tphi_schema() -> Schema {
    Schema::new(vec![
        Column::new("I1", DataType::Int),
        Column::nullable("I2", DataType::Int),
        Column::nullable("I3", DataType::Int),
        Column::new("w", DataType::Float),
    ])
}

/// Schema of the candidate-fact tables produced by `groundAtoms`:
/// `(R, x, C1, y, C2)`.
pub fn candidate_schema() -> Schema {
    Schema::ints(&["R", "x", "C1", "y", "C2"])
}

/// The canonical table names used by all engines.
pub mod names {
    /// The facts table.
    pub const TPI: &str = "T_pi";
    /// The constraints table.
    pub const TOMEGA: &str = "T_omega";
    /// The ground-factor output table.
    pub const TPHI: &str = "T_phi";

    /// The MLN table for partition `i ∈ 1..=6`.
    pub fn mln(i: usize) -> String {
        format!("M{i}")
    }
}

/// Assigns fact ids and answers "have we seen this fact key before?" —
/// the driver-side state behind `TΠ ← TΠ ∪ (...)` (Algorithm 1, line 5).
#[derive(Debug, Default)]
pub struct FactRegistry {
    next_id: i64,
    index: FxHashMap<[i64; 5], i64>,
}

impl FactRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        FactRegistry::default()
    }

    /// Number of distinct fact keys seen.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no facts registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Register a fact key, returning `Some(new_id)` if it is new, `None`
    /// if already present.
    pub fn register(&mut self, key: [i64; 5]) -> Option<i64> {
        if self.index.contains_key(&key) {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.index.insert(key, id);
        Some(id)
    }

    /// The id of a known fact key.
    pub fn id_of(&self, key: &[i64; 5]) -> Option<i64> {
        self.index.get(key).copied()
    }

    /// The id the next new fact key will receive.
    pub fn next_id(&self) -> i64 {
        self.next_id
    }

    /// All `(key, id)` entries sorted by id — the registry's
    /// serializable form (checkpoint snapshots store this).
    pub fn entries(&self) -> Vec<([i64; 5], i64)> {
        let mut entries: Vec<([i64; 5], i64)> =
            self.index.iter().map(|(k, &id)| (*k, id)).collect();
        entries.sort_by_key(|&(_, id)| id);
        entries
    }

    /// Rebuild a registry from its serialized form.
    pub fn from_entries(next_id: i64, entries: impl IntoIterator<Item = ([i64; 5], i64)>) -> Self {
        FactRegistry {
            next_id,
            index: entries.into_iter().collect(),
        }
    }

    /// Extract the `(R, x, C1, y, C2)` key from a candidate row.
    pub fn key_of_candidate(row: &[Value]) -> [i64; 5] {
        [
            row[0].as_int().expect("candidate R"),
            row[1].as_int().expect("candidate x"),
            row[2].as_int().expect("candidate C1"),
            row[3].as_int().expect("candidate y"),
            row[4].as_int().expect("candidate C2"),
        ]
    }
}

/// The fully-loaded relational form of a KB: the inputs Algorithm 1 needs.
#[derive(Debug)]
pub struct RelationalKb {
    /// The facts table `TΠ` (ids already assigned).
    pub t_pi: Table,
    /// MLN tables keyed by partition index 1..=6; only non-empty
    /// partitions are present.
    pub mln: Vec<(RulePattern, Table)>,
    /// The constraints table `TΩ`.
    pub t_omega: Table,
    /// Fact id registry seeded with the base facts.
    pub registry: FactRegistry,
    /// Rules that failed structural classification (not groundable in
    /// batch mode; reported, not silently dropped).
    pub rejected_rules: usize,
}

/// Build the relational model from a knowledge base (the "Load" step of
/// Table 3).
pub fn load(kb: &ProbKb) -> RelationalKb {
    let mut registry = FactRegistry::new();
    let mut t_pi = Table::empty(tpi_schema());
    for fact in &kb.facts {
        let key = [
            fact.rel.as_i64(),
            fact.x.as_i64(),
            fact.c1.as_i64(),
            fact.y.as_i64(),
            fact.c2.as_i64(),
        ];
        if let Some(id) = registry.register(key) {
            t_pi.push_unchecked(vec![
                Value::Int(id),
                Value::Int(key[0]),
                Value::Int(key[1]),
                Value::Int(key[2]),
                Value::Int(key[3]),
                Value::Int(key[4]),
                fact.weight.map(Value::Float).unwrap_or(Value::Null),
            ]);
        }
    }

    let (mln, rejected_rules) = mln_tables(&kb.rules);

    let mut t_omega = Table::empty(tomega_schema());
    for fc in &kb.constraints {
        let (c1, c2) = match fc.classes {
            Some((c1, c2)) => (Value::Int(c1.as_i64()), Value::Int(c2.as_i64())),
            None => (Value::Null, Value::Null),
        };
        t_omega.push_unchecked(vec![
            Value::Int(fc.rel.as_i64()),
            c1,
            c2,
            Value::Int(fc.functionality.alpha()),
            Value::Int(fc.degree as i64),
        ]);
    }

    RelationalKb {
        t_pi,
        mln,
        t_omega,
        registry,
        rejected_rules,
    }
}

/// Partition `rules` into the six MLN tables of Definition 6 (only
/// non-empty partitions are returned, as in [`load`]) plus the count of
/// structurally unclassifiable rules. Factored out of [`load`] so the
/// incremental delta engine can partition a rule *delta* with exactly the
/// same classification and dedup semantics as the batch path.
pub(crate) fn mln_tables(rules: &[HornRule]) -> (Vec<(RulePattern, Table)>, usize) {
    let partitioning = Partitioning::build(rules);
    let mut mln = Vec::new();
    for pattern in partitioning.non_empty_patterns() {
        let mut table = Table::empty(if pattern.arity() == 2 {
            m2_schema()
        } else {
            m3_schema()
        });
        for (rule_id, classified) in partitioning.rules_in(pattern) {
            let rule = &rules[rule_id.raw() as usize];
            table.push_unchecked(mln_row(rule, classified));
        }
        // Definition 6 stores *sets* of identifier tuples; Proposition 1
        // relies on partitions being duplicate-free.
        table.dedup_rows();
        mln.push((pattern, table));
    }
    (mln, partitioning.rejected().len())
}

/// The identifier-tuple row for a rule within its partition (Example 3).
fn mln_row(rule: &HornRule, classified: &Classified) -> Row {
    match classified.pattern.arity() {
        2 => vec![
            Value::Int(rule.head.rel.as_i64()),
            Value::Int(classified.body[0].rel.as_i64()),
            Value::Int(rule.cx.as_i64()),
            Value::Int(rule.cy.as_i64()),
            Value::Float(rule.weight),
        ],
        3 => vec![
            Value::Int(rule.head.rel.as_i64()),
            Value::Int(classified.body[0].rel.as_i64()),
            Value::Int(classified.body[1].rel.as_i64()),
            Value::Int(rule.cx.as_i64()),
            Value::Int(rule.cy.as_i64()),
            Value::Int(rule.cz.expect("length-3 rule has z class").as_i64()),
            Value::Float(rule.weight),
        ],
        _ => unreachable!("patterns are arity 2 or 3"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kb() -> ProbKb {
        parse(
            r#"
            fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
            fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
            rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
            rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
            rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
            functional born_in 1 1
            "#,
        )
        .unwrap()
        .build()
    }

    #[test]
    fn load_builds_all_tables() {
        let kb = sample_kb();
        let rel = load(&kb);
        assert_eq!(rel.t_pi.len(), 2);
        assert_eq!(rel.t_pi.schema().width(), 7);
        assert_eq!(rel.mln.len(), 2); // P1 and P3 non-empty
        assert_eq!(rel.t_omega.len(), 1);
        assert_eq!(rel.registry.len(), 2);
        assert_eq!(rel.rejected_rules, 0);
    }

    #[test]
    fn fact_ids_are_dense_from_zero() {
        let kb = sample_kb();
        let rel = load(&kb);
        let ids: Vec<i64> = rel
            .t_pi
            .rows()
            .iter()
            .map(|r| r[tpi::I].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn mln_rows_follow_example_3_layout() {
        let kb = sample_kb();
        let rel = load(&kb);
        let (p1, m1) = rel
            .mln
            .iter()
            .find(|(p, _)| *p == RulePattern::P1)
            .unwrap();
        assert_eq!(p1.arity(), 2);
        assert_eq!(m1.len(), 2);
        assert_eq!(m1.schema().names(), vec!["R1", "R2", "C1", "C2", "w"]);
        let (_, m3t) = rel
            .mln
            .iter()
            .find(|(p, _)| *p == RulePattern::P3)
            .unwrap();
        assert_eq!(m3t.len(), 1);
        assert_eq!(
            m3t.schema().names(),
            vec!["R1", "R2", "R3", "C1", "C2", "C3", "w"]
        );
        // For the symmetric rule, R2 and R3 are both born_in.
        assert_eq!(m3t.rows()[0][m3::R2], m3t.rows()[0][m3::R3]);
    }

    #[test]
    fn registry_rejects_duplicates_and_counts() {
        let mut reg = FactRegistry::new();
        assert_eq!(reg.register([1, 2, 3, 4, 5]), Some(0));
        assert_eq!(reg.register([1, 2, 3, 4, 5]), None);
        assert_eq!(reg.register([9, 2, 3, 4, 5]), Some(1));
        assert_eq!(reg.id_of(&[1, 2, 3, 4, 5]), Some(0));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn omega_encodes_alpha_and_degree() {
        let kb = sample_kb();
        let rel = load(&kb);
        let row = &rel.t_omega.rows()[0];
        assert_eq!(row[tomega::ALPHA], Value::Int(1));
        assert_eq!(row[tomega::DEG], Value::Int(1));
    }

    #[test]
    fn weights_can_be_null_for_inferred_rows() {
        let schema = tpi_schema();
        let row = vec![
            Value::Int(7),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Null,
        ];
        assert!(schema.validate_row(&row).is_ok());
    }
}
