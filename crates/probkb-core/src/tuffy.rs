//! The Tuffy-T baseline: one table per relation, one SQL query per rule.
//!
//! Tuffy \[32\] stores each predicate in its own table and issues one join
//! query per MLN rule per iteration — 30,912 queries for the Sherlock
//! rule set. The paper re-implements it with typing support ("Tuffy-T")
//! as the comparison baseline; this module is that re-implementation on
//! our relational engine. Semantics are identical to
//! [`crate::single_node::SingleNodeEngine`]; only the physical design and
//! query count differ.

use std::collections::{HashMap, HashSet};

use probkb_kb::prelude::RulePattern;
use probkb_relational::prelude::*;

use crate::engine::{GroundingEngine, ViolatorKey};
use crate::relmodel::{candidate_schema, tomega, tphi_schema, tpi, RelationalKb};

/// Column positions of the per-relation tables `rel_<R>(I, x, C1, y, C2, w)`.
mod rt {
    pub const I: usize = 0;
    pub const X: usize = 1;
    pub const C1: usize = 2;
    pub const Y: usize = 3;
    pub const C2: usize = 4;
}

fn rel_schema() -> Schema {
    Schema::new(vec![
        Column::new("I", DataType::Int),
        Column::new("x", DataType::Int),
        Column::new("C1", DataType::Int),
        Column::new("y", DataType::Int),
        Column::new("C2", DataType::Int),
        Column::nullable("w", DataType::Float),
    ])
}

fn rel_table_name(rel: i64) -> String {
    format!("rel_{rel}")
}

/// One constraint row: relation, optional class restriction, α, δ.
type TuffyConstraint = (i64, Option<(i64, i64)>, i64, i64);

/// One rule extracted from an MLN table row, kept as plain integers.
#[derive(Debug, Clone)]
struct TuffyRule {
    pattern: RulePattern,
    r1: i64,
    r2: i64,
    r3: Option<i64>,
    c1: i64,
    c2: i64,
    c3: Option<i64>,
    weight: f64,
}

/// The per-rule baseline engine.
#[derive(Debug, Default)]
pub struct TuffyEngine {
    catalog: Catalog,
    rules: Vec<TuffyRule>,
    /// `(R, optional (C1, C2) restriction, alpha, deg)`.
    constraints: Vec<TuffyConstraint>,
    relations: HashSet<i64>,
}

impl TuffyEngine {
    /// A fresh, unloaded engine.
    pub fn new() -> Self {
        TuffyEngine::default()
    }

    /// Number of rules — also the number of queries per iteration.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Number of predicate tables created (the paper loads 83K of them,
    /// which is why Tuffy's bulkload is 607× slower).
    pub fn table_count(&self) -> usize {
        self.relations.len()
    }

    fn ensure_table(&mut self, rel: i64) -> Result<()> {
        if self.relations.insert(rel) {
            self.catalog
                .create(rel_table_name(rel), Table::empty(rel_schema()))?;
        }
        Ok(())
    }

    fn run(&self, plan: &Plan) -> Result<Table> {
        Executor::new(&self.catalog).execute_table(plan)
    }

    /// The per-rule `groundAtoms` query: scan the body relation table(s),
    /// filter by the rule's class constants, join on `z` for length-3
    /// rules, and emit head candidates.
    fn rule_atoms_plan(&self, rule: &TuffyRule) -> Plan {
        let (atom1, atom2) = rule.pattern.body_layout();
        let class_of = |v| match v {
            probkb_kb::prelude::Var::X => rule.c1,
            probkb_kb::prelude::Var::Y => rule.c2,
            probkb_kb::prelude::Var::Z => rule.c3.expect("length-3 rule has C3"),
        };
        let body1 = Plan::scan(rel_table_name(rule.r2)).filter(
            Expr::col(rt::C1)
                .eq(Expr::lit(class_of(atom1.0)))
                .and(Expr::col(rt::C2).eq(Expr::lit(class_of(atom1.1)))),
        );
        let bind1 = |v| {
            if atom1.0 == v {
                rt::X
            } else {
                rt::Y
            }
        };
        match atom2 {
            None => body1.project(vec![
                (Expr::lit(rule.r1), "R"),
                (Expr::col(bind1(probkb_kb::prelude::Var::X)), "x"),
                (Expr::lit(rule.c1), "C1"),
                (Expr::col(bind1(probkb_kb::prelude::Var::Y)), "y"),
                (Expr::lit(rule.c2), "C2"),
            ]),
            Some(atom2) => {
                let body2 = Plan::scan(rel_table_name(rule.r3.expect("R3"))).filter(
                    Expr::col(rt::C1)
                        .eq(Expr::lit(class_of(atom2.0)))
                        .and(Expr::col(rt::C2).eq(Expr::lit(class_of(atom2.1)))),
                );
                let z1 = bind1(probkb_kb::prelude::Var::Z);
                let bind2 = |v| {
                    if atom2.0 == v {
                        rt::X
                    } else {
                        rt::Y
                    }
                };
                let z2 = bind2(probkb_kb::prelude::Var::Z);
                let width1 = 6;
                body1
                    .hash_join(body2, vec![z1], vec![z2])
                    .project(vec![
                        (Expr::lit(rule.r1), "R"),
                        (Expr::col(bind1(probkb_kb::prelude::Var::X)), "x"),
                        (Expr::lit(rule.c1), "C1"),
                        (
                            Expr::col(width1 + bind2(probkb_kb::prelude::Var::Y)),
                            "y",
                        ),
                        (Expr::lit(rule.c2), "C2"),
                    ])
            }
        }
        .distinct()
    }

    /// The per-rule `groundFactors` query: body join plus a join against
    /// the head relation's table.
    fn rule_factors_plan(&self, rule: &TuffyRule) -> Plan {
        let (atom1, atom2) = rule.pattern.body_layout();
        let class_of = |v| match v {
            probkb_kb::prelude::Var::X => rule.c1,
            probkb_kb::prelude::Var::Y => rule.c2,
            probkb_kb::prelude::Var::Z => rule.c3.expect("length-3 rule has C3"),
        };
        let head = Plan::scan(rel_table_name(rule.r1)).filter(
            Expr::col(rt::C1)
                .eq(Expr::lit(rule.c1))
                .and(Expr::col(rt::C2).eq(Expr::lit(rule.c2))),
        );
        let body1 = Plan::scan(rel_table_name(rule.r2)).filter(
            Expr::col(rt::C1)
                .eq(Expr::lit(class_of(atom1.0)))
                .and(Expr::col(rt::C2).eq(Expr::lit(class_of(atom1.1)))),
        );
        let bind1 = |v| if atom1.0 == v { rt::X } else { rt::Y };
        match atom2 {
            None => {
                // body1 ⋈ head on (x, y) bindings.
                let xk = bind1(probkb_kb::prelude::Var::X);
                let yk = bind1(probkb_kb::prelude::Var::Y);
                body1
                    .hash_join(head, vec![xk, yk], vec![rt::X, rt::Y])
                    .project(vec![
                        (Expr::col(6 + rt::I), "I1"),
                        (Expr::col(rt::I), "I2"),
                        (Expr::lit(Value::Null), "I3"),
                        (Expr::lit(rule.weight), "w"),
                    ])
            }
            Some(atom2) => {
                let body2 = Plan::scan(rel_table_name(rule.r3.expect("R3"))).filter(
                    Expr::col(rt::C1)
                        .eq(Expr::lit(class_of(atom2.0)))
                        .and(Expr::col(rt::C2).eq(Expr::lit(class_of(atom2.1)))),
                );
                let bind2 = |v| if atom2.0 == v { rt::X } else { rt::Y };
                let z1 = bind1(probkb_kb::prelude::Var::Z);
                let z2 = bind2(probkb_kb::prelude::Var::Z);
                let xk = bind1(probkb_kb::prelude::Var::X);
                let yk = 6 + bind2(probkb_kb::prelude::Var::Y);
                body1
                    .hash_join(body2, vec![z1], vec![z2])
                    .hash_join(head, vec![xk, yk], vec![rt::X, rt::Y])
                    .project(vec![
                        (Expr::col(12 + rt::I), "I1"),
                        (Expr::col(rt::I), "I2"),
                        (Expr::col(6 + rt::I), "I3"),
                        (Expr::lit(rule.weight), "w"),
                    ])
            }
        }
    }
}

impl GroundingEngine for TuffyEngine {
    fn name(&self) -> &str {
        "Tuffy-T"
    }

    fn load(&mut self, rel: &RelationalKb) -> Result<()> {
        use crate::relmodel::{m2, m3};
        self.rules.clear();
        self.constraints.clear();
        // Explode the MLN tables back into individual rules.
        for (pattern, table) in &rel.mln {
            for row in table.rows() {
                let rule = if pattern.arity() == 2 {
                    TuffyRule {
                        pattern: *pattern,
                        r1: row[m2::R1].as_int().expect("R1"),
                        r2: row[m2::R2].as_int().expect("R2"),
                        r3: None,
                        c1: row[m2::C1].as_int().expect("C1"),
                        c2: row[m2::C2].as_int().expect("C2"),
                        c3: None,
                        weight: row[m2::W].as_float().expect("w"),
                    }
                } else {
                    TuffyRule {
                        pattern: *pattern,
                        r1: row[m3::R1].as_int().expect("R1"),
                        r2: row[m3::R2].as_int().expect("R2"),
                        r3: Some(row[m3::R3].as_int().expect("R3")),
                        c1: row[m3::C1].as_int().expect("C1"),
                        c2: row[m3::C2].as_int().expect("C2"),
                        c3: Some(row[m3::C3].as_int().expect("C3")),
                        weight: row[m3::W].as_float().expect("w"),
                    }
                };
                self.rules.push(rule);
            }
        }
        // One table per relation mentioned anywhere — this is the 83K-table
        // bulkload the paper measures.
        let mut rels: HashSet<i64> = HashSet::new();
        for row in rel.t_pi.rows() {
            rels.insert(row[tpi::R].as_int().expect("R"));
        }
        for rule in &self.rules {
            rels.insert(rule.r1);
            rels.insert(rule.r2);
            if let Some(r3) = rule.r3 {
                rels.insert(r3);
            }
        }
        for r in rels {
            self.ensure_table(r)?;
        }
        // Partition the facts into their relation tables.
        let mut by_rel: HashMap<i64, Vec<Row>> = HashMap::new();
        for row in rel.t_pi.rows() {
            let r = row[tpi::R].as_int().expect("R");
            by_rel.entry(r).or_default().push(vec![
                row[tpi::I].clone(),
                row[tpi::X].clone(),
                row[tpi::C1].clone(),
                row[tpi::Y].clone(),
                row[tpi::C2].clone(),
                row[tpi::W].clone(),
            ]);
        }
        for (r, rows) in by_rel {
            self.catalog.insert_rows_unchecked(&rel_table_name(r), rows)?;
        }
        for row in rel.t_omega.rows() {
            let classes = match (row[tomega::C1].as_int(), row[tomega::C2].as_int()) {
                (Some(c1), Some(c2)) => Some((c1, c2)),
                _ => None,
            };
            self.constraints.push((
                row[tomega::R].as_int().expect("R"),
                classes,
                row[tomega::ALPHA].as_int().expect("alpha"),
                row[tomega::DEG].as_int().expect("deg"),
            ));
        }
        Ok(())
    }

    fn ground_atoms(&mut self) -> Result<(Table, usize)> {
        let mut all = Table::empty(candidate_schema());
        let mut queries = 0;
        // One query per rule — the O(n) loop the paper replaces.
        for rule in &self.rules {
            let out = self.run(&self.rule_atoms_plan(rule))?;
            all.extend_from(out);
            queries += 1;
        }
        all.dedup_rows();
        Ok((all, queries))
    }

    fn insert_facts(&mut self, rows: Vec<Row>) -> Result<usize> {
        let n = rows.len();
        let mut by_rel: HashMap<i64, Vec<Row>> = HashMap::new();
        for row in rows {
            let r = row[tpi::R].as_int().expect("R");
            by_rel.entry(r).or_default().push(vec![
                row[tpi::I].clone(),
                row[tpi::X].clone(),
                row[tpi::C1].clone(),
                row[tpi::Y].clone(),
                row[tpi::C2].clone(),
                row[tpi::W].clone(),
            ]);
        }
        for (r, rows) in by_rel {
            self.ensure_table(r)?;
            self.catalog.insert_rows_unchecked(&rel_table_name(r), rows)?;
        }
        Ok(n)
    }

    fn find_violators(&mut self) -> Result<HashSet<ViolatorKey>> {
        let mut violators = HashSet::new();
        // One query per constraint (Tuffy has no batch constraint table).
        for &(r, classes, alpha, deg) in &self.constraints {
            if !self.relations.contains(&r) {
                continue;
            }
            let (key_e, key_c, other_c) = if alpha == 1 {
                (rt::X, rt::C1, rt::C2)
            } else {
                (rt::Y, rt::C2, rt::C1)
            };
            let source = match classes {
                Some((c1, c2)) => Plan::scan(rel_table_name(r)).filter(
                    Expr::col(rt::C1)
                        .eq(Expr::lit(c1))
                        .and(Expr::col(rt::C2).eq(Expr::lit(c2))),
                ),
                None => Plan::scan(rel_table_name(r)),
            };
            let plan = source
                .aggregate(
                    vec![key_e, key_c, other_c],
                    vec![AggExpr::new(AggFunc::CountStar, "cnt")],
                )
                .filter(Expr::col(3).gt(Expr::lit(deg)))
                .project(vec![(Expr::col(0), "entity"), (Expr::col(1), "class")]);
            for row in self.run(&plan)?.rows() {
                violators.insert((
                    row[0].as_int().expect("entity"),
                    row[1].as_int().expect("class"),
                ));
            }
        }
        Ok(violators)
    }

    fn delete_violators(&mut self, violators: &HashSet<ViolatorKey>) -> Result<usize> {
        if violators.is_empty() {
            return Ok(0);
        }
        let keys: HashSet<Vec<Value>> = violators
            .iter()
            .map(|(e, c)| vec![Value::Int(*e), Value::Int(*c)])
            .collect();
        let mut removed = 0;
        let rels: Vec<i64> = self.relations.iter().copied().collect();
        for r in rels {
            let name = rel_table_name(r);
            removed += self
                .catalog
                .delete_matching(&name, &[rt::X, rt::C1], &keys)?;
            removed += self
                .catalog
                .delete_matching(&name, &[rt::Y, rt::C2], &keys)?;
        }
        Ok(removed)
    }

    fn redistribute(&mut self) -> Result<()> {
        Ok(())
    }

    fn ground_factors(&mut self) -> Result<(Table, usize)> {
        let mut phi = Table::empty(tphi_schema());
        let mut queries = 0;
        for rule in &self.rules {
            phi.extend_from(self.run(&self.rule_factors_plan(rule))?);
            queries += 1;
        }
        // Singleton factors: one scan per relation table.
        let rels: Vec<i64> = {
            let mut v: Vec<i64> = self.relations.iter().copied().collect();
            v.sort();
            v
        };
        for r in rels {
            let plan = Plan::scan(rel_table_name(r))
                .filter(Expr::col(5).is_not_null())
                .project(vec![
                    (Expr::col(rt::I), "I1"),
                    (Expr::lit(Value::Null), "I2"),
                    (Expr::lit(Value::Null), "I3"),
                    (Expr::col(5), "w"),
                ]);
            phi.extend_from(self.run(&plan)?);
            queries += 1;
        }
        Ok((phi, queries))
    }

    fn fact_count(&self) -> Result<usize> {
        let mut n = 0;
        for r in &self.relations {
            n += self.catalog.row_count(&rel_table_name(*r))?;
        }
        Ok(n)
    }

    fn facts(&self) -> Result<Table> {
        let mut out = Table::empty(crate::relmodel::tpi_schema());
        let mut rels: Vec<i64> = self.relations.iter().copied().collect();
        rels.sort();
        for r in rels {
            let t = self.catalog.get(&rel_table_name(r))?;
            for row in t.rows() {
                out.push_unchecked(vec![
                    row[rt::I].clone(),
                    Value::Int(r),
                    row[rt::X].clone(),
                    row[rt::C1].clone(),
                    row[rt::Y].clone(),
                    row[rt::C2].clone(),
                    row[5].clone(),
                ]);
            }
        }
        // Restore id order so snapshots are comparable across engines.
        out.sort_by_cols(&[tpi::I]);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounding::{ground, GroundingConfig};
    use crate::relmodel::load;
    use crate::single_node::SingleNodeEngine;
    use probkb_kb::prelude::parse;

    const TABLE1: &str = r#"
        fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
        fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
        rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
        rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
        rule 2.68 grow_up_in(x:Writer, y:Place) :- born_in(x, y)
        rule 0.74 grow_up_in(x:Writer, y:City) :- born_in(x, y)
        rule 0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
        rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
    "#;

    #[test]
    fn tuffy_matches_probkb_semantics() {
        let kb = parse(TABLE1).unwrap().build();
        let config = GroundingConfig::default();

        let mut tuffy = TuffyEngine::new();
        let t_out = ground(&kb, &mut tuffy, &config).unwrap();
        let mut single = SingleNodeEngine::new();
        let s_out = ground(&kb, &mut single, &config).unwrap();

        assert_eq!(t_out.facts.len(), s_out.facts.len());
        assert_eq!(t_out.factors.len(), s_out.factors.len());

        // Same fact keys (ids may be assigned in different order).
        let keys = |t: &Table| {
            let mut k: Vec<Vec<i64>> = t
                .rows()
                .iter()
                .map(|r| {
                    tpi::KEY
                        .iter()
                        .map(|&c| r[c].as_int().unwrap())
                        .collect()
                })
                .collect();
            k.sort();
            k
        };
        assert_eq!(keys(&t_out.facts), keys(&s_out.facts));
    }

    #[test]
    fn tuffy_uses_one_query_per_rule() {
        let kb = parse(TABLE1).unwrap().build();
        let mut tuffy = TuffyEngine::new();
        let config = GroundingConfig {
            apply_constraints: false,
            ..GroundingConfig::default()
        };
        let out = ground(&kb, &mut tuffy, &config).unwrap();
        // 6 rules → 6 queries per iteration (vs 2 for ProbKB's partitions).
        assert_eq!(out.report.iterations[0].queries, 6);
    }

    #[test]
    fn tuffy_creates_one_table_per_relation() {
        let kb = parse(TABLE1).unwrap().build();
        let rel = load(&kb);
        let mut tuffy = TuffyEngine::new();
        tuffy.load(&rel).unwrap();
        // born_in, live_in, grow_up_in, located_in.
        assert_eq!(tuffy.table_count(), 4);
        assert_eq!(tuffy.rule_count(), 6);
    }

    #[test]
    fn tuffy_constraint_enforcement() {
        let kb = parse(
            r#"
            fact 0.9 born_in(Mandel:Person, Berlin:City)
            fact 0.9 born_in(Mandel:Person, Baltimore:City)
            functional born_in 1 1
            "#,
        )
        .unwrap()
        .build();
        let rel = load(&kb);
        let mut tuffy = TuffyEngine::new();
        tuffy.load(&rel).unwrap();
        let v = tuffy.find_violators().unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(tuffy.delete_violators(&v).unwrap(), 2);
        assert_eq!(tuffy.fact_count().unwrap(), 0);
    }
}
