//! Semi-naive batch grounding: an extension beyond the paper.
//!
//! Algorithm 1 re-joins the *entire* facts table every iteration, so
//! iteration `n` re-derives everything iterations `1..n-1` already found.
//! The classic datalog fix is semi-naive evaluation: keep the delta
//! `ΔTΠ` (facts first derived last iteration) and only run joins in which
//! at least one body atom binds to a delta row:
//!
//! * length-2 partitions: `Mi ⋈ ΔTΠ` — one query;
//! * length-3 partitions: `Mi ⋈ ΔTΠ ⋈ TΠ` ∪ `Mi ⋈ TΠ ⋈ ΔTΠ` — two
//!   queries (the Δ⋈Δ pairs are covered by both and removed by the
//!   DISTINCT).
//!
//! The fixpoint is identical to the naive engine's (standard semi-naive
//! correctness); only the per-iteration work shrinks. The
//! `bench/benches/grounding.rs` ablation and the engine-agreement tests
//! below quantify and guard this.

use std::collections::HashSet;

use probkb_kb::prelude::RulePattern;
use probkb_relational::prelude::*;
use probkb_support::sync::{default_threads, map_indices};

use crate::engine::{GroundingEngine, ViolatorKey};
use crate::queries::{
    ground_factors_plan, join_spec, singleton_factors_plan, violators_plan,
};
use crate::relmodel::{candidate_schema, names, tphi_schema, tpi, RelationalKb};

/// The delta table's catalog name.
pub const TDELTA: &str = "T_delta";

/// Semi-naive single-node engine. Drop-in replacement for
/// [`crate::single_node::SingleNodeEngine`] with per-iteration cost
/// proportional to the new facts instead of the whole KB.
#[derive(Debug)]
pub struct SemiNaiveEngine {
    catalog: Catalog,
    patterns: Vec<RulePattern>,
    threads: usize,
    optimize: bool,
}

impl Default for SemiNaiveEngine {
    fn default() -> Self {
        SemiNaiveEngine {
            catalog: Catalog::new(),
            patterns: Vec::new(),
            threads: default_threads(),
            optimize: default_optimize(),
        }
    }
}

impl SemiNaiveEngine {
    /// A fresh, unloaded engine.
    pub fn new() -> Self {
        SemiNaiveEngine::default()
    }

    /// Builder-style [`GroundingEngine::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style [`GroundingEngine::set_optimize`].
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Direct access to the underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn run(&self, plan: &Plan) -> Result<Table> {
        Executor::new(&self.catalog)
            .with_threads(self.threads)
            .with_optimize(self.optimize)
            .execute_table(plan)
    }

    /// Run independent plans on the fork-join pool; outputs concatenate
    /// in plan order so the result matches the serial loop row-for-row.
    fn run_all_into(&self, plans: &[Plan], into: &mut Table) -> Result<()> {
        let outputs = map_indices(plans.len(), self.threads, |i| self.run(&plans[i]));
        for out in outputs {
            into.extend_from(out?);
        }
        Ok(())
    }

    /// The delta-restricted `groundAtoms` plans for one partition: one
    /// plan for length-2 rules, two for length-3 (delta on either leg).
    fn delta_atoms_plans(&self, pattern: RulePattern) -> Vec<Plan> {
        let spec = join_spec(pattern);
        let m_name = names::mln(pattern.index());
        let project = |plan: Plan| {
            plan.project(vec![
                (Expr::col(0), "R"),
                (Expr::col(spec.x_col), "x"),
                (Expr::col(spec.c1_col), "C1"),
                (Expr::col(spec.y_col), "y"),
                (Expr::col(spec.c2_col), "C2"),
            ])
            .distinct()
        };
        if spec.arity == 2 {
            // Only a new body fact can produce a new head.
            let plan = Plan::scan(&m_name).hash_join(
                Plan::scan(TDELTA),
                spec.m_keys1.clone(),
                spec.t2_keys.clone(),
            );
            vec![project(plan)]
        } else {
            let delta_first = Plan::scan(&m_name)
                .hash_join(
                    Plan::scan(TDELTA),
                    spec.m_keys1.clone(),
                    spec.t2_keys.clone(),
                )
                .hash_join(
                    Plan::scan(names::TPI),
                    spec.mid_keys2.clone(),
                    spec.t3_keys.clone(),
                );
            let delta_second = Plan::scan(&m_name)
                .hash_join(
                    Plan::scan(names::TPI),
                    spec.m_keys1.clone(),
                    spec.t2_keys.clone(),
                )
                .hash_join(
                    Plan::scan(TDELTA),
                    spec.mid_keys2.clone(),
                    spec.t3_keys.clone(),
                );
            vec![project(delta_first), project(delta_second)]
        }
    }
}

impl GroundingEngine for SemiNaiveEngine {
    fn name(&self) -> &str {
        "ProbKB-sn"
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    fn set_optimize(&mut self, optimize: bool) {
        self.optimize = optimize;
    }

    fn load(&mut self, rel: &RelationalKb) -> Result<()> {
        self.catalog.create_or_replace(names::TPI, rel.t_pi.clone());
        // Iteration 1's delta is the whole base KB.
        self.catalog.create_or_replace(TDELTA, rel.t_pi.clone());
        self.catalog
            .create_or_replace(names::TOMEGA, rel.t_omega.clone());
        self.patterns.clear();
        for (pattern, table) in &rel.mln {
            self.catalog
                .create_or_replace(names::mln(pattern.index()), table.clone());
            self.patterns.push(*pattern);
        }
        Ok(())
    }

    fn ground_atoms(&mut self) -> Result<(Table, usize)> {
        let plans: Vec<Plan> = self
            .patterns
            .iter()
            .flat_map(|p| self.delta_atoms_plans(*p))
            .collect();
        let mut all = Table::empty(candidate_schema());
        self.run_all_into(&plans, &mut all)?;
        all.dedup_rows();
        Ok((all, plans.len()))
    }

    fn insert_facts(&mut self, rows: Vec<Row>) -> Result<usize> {
        // The new rows become the next iteration's delta.
        self.catalog.create_or_replace(
            TDELTA,
            Table::from_rows_unchecked(crate::relmodel::tpi_schema(), rows.clone()),
        );
        self.catalog.insert_rows_unchecked(names::TPI, rows)
    }

    fn find_violators(&mut self) -> Result<HashSet<ViolatorKey>> {
        let mut violators = HashSet::new();
        for alpha in [1, 2] {
            let out = self.run(&violators_plan(names::TPI, names::TOMEGA, alpha))?;
            for row in out.rows() {
                violators.insert((
                    row[0].as_int().expect("entity id"),
                    row[1].as_int().expect("class id"),
                ));
            }
        }
        Ok(violators)
    }

    fn delete_violators(&mut self, violators: &HashSet<ViolatorKey>) -> Result<usize> {
        if violators.is_empty() {
            return Ok(0);
        }
        let keys: HashSet<Vec<Value>> = violators
            .iter()
            .map(|(e, c)| vec![Value::Int(*e), Value::Int(*c)])
            .collect();
        let mut removed = 0;
        for table in [names::TPI, TDELTA] {
            removed += self
                .catalog
                .delete_matching(table, &[tpi::X, tpi::C1], &keys)?;
            removed += self
                .catalog
                .delete_matching(table, &[tpi::Y, tpi::C2], &keys)?;
        }
        // Report only TΠ deletions (delta rows are duplicates of them).
        Ok(removed / 2 + removed % 2)
    }

    fn redistribute(&mut self) -> Result<()> {
        Ok(())
    }

    fn ground_factors(&mut self) -> Result<(Table, usize)> {
        // Factors run over the full closure, identical to the naive engine.
        let mut plans: Vec<Plan> = self
            .patterns
            .iter()
            .map(|p| ground_factors_plan(*p, &names::mln(p.index()), names::TPI))
            .collect();
        plans.push(singleton_factors_plan(names::TPI));
        let mut phi = Table::empty(tphi_schema());
        self.run_all_into(&plans, &mut phi)?;
        Ok((phi, plans.len()))
    }

    fn fact_count(&self) -> Result<usize> {
        self.catalog.row_count(names::TPI)
    }

    fn facts(&self) -> Result<Table> {
        Ok((*self.catalog.get(names::TPI)?).clone())
    }

    fn export_state(&self) -> Result<Vec<(String, Table)>> {
        // The delta table rides along with the catalog, so a resumed
        // engine continues from exactly the frontier it was killed at.
        let mut state = Vec::new();
        for name in self.catalog.names() {
            state.push((name.clone(), (*self.catalog.get(&name)?).clone()));
        }
        Ok(state)
    }

    fn import_state(&mut self, state: &[(String, Table)]) -> Result<()> {
        self.catalog = Catalog::new();
        for (name, table) in state {
            self.catalog.create_or_replace(name.clone(), table.clone());
        }
        self.patterns = RulePattern::ALL
            .into_iter()
            .filter(|p| self.catalog.contains(&names::mln(p.index())))
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounding::{ground, GroundingConfig};
    use crate::single_node::SingleNodeEngine;
    use probkb_kb::prelude::parse;

    fn chain_kb(n: usize) -> probkb_kb::prelude::ProbKb {
        let mut text = String::new();
        for i in 0..n {
            text.push_str(&format!("fact 0.9 next(n{}:Node, n{}:Node)\n", i, i + 1));
        }
        text.push_str("rule 1.0 reach(x:Node, y:Node) :- next(x, y)\n");
        text.push_str("rule 1.0 reach(x:Node, y:Node) :- reach(x, z:Node), next(z, y)\n");
        parse(&text).unwrap().build()
    }

    fn keys(t: &Table) -> Vec<Vec<i64>> {
        let mut k: Vec<Vec<i64>> = t
            .rows()
            .iter()
            .map(|r| tpi::KEY.iter().map(|&c| r[c].as_int().unwrap()).collect())
            .collect();
        k.sort();
        k
    }

    #[test]
    fn semi_naive_matches_naive_on_transitive_closure() {
        let kb = chain_kb(12);
        let config = GroundingConfig {
            max_iterations: 20,
            apply_constraints: false,
            ..GroundingConfig::default()
        };
        let mut naive = SingleNodeEngine::new();
        let n = ground(&kb, &mut naive, &config).unwrap();
        let mut sn = SemiNaiveEngine::new();
        let s = ground(&kb, &mut sn, &config).unwrap();
        // Full transitive closure of a 12-edge chain: 13 nodes → 78 reach
        // pairs + 12 base next facts.
        assert_eq!(n.facts.len(), 12 + 78);
        assert_eq!(keys(&s.facts), keys(&n.facts));
        assert_eq!(s.factors.len(), n.factors.len());
        assert!(s.report.converged && n.report.converged);
    }

    #[test]
    fn semi_naive_matches_naive_on_table1() {
        let kb = parse(probkb_datagen_free_table1()).unwrap().build();
        let config = GroundingConfig::default();
        let mut naive = SingleNodeEngine::new();
        let n = ground(&kb, &mut naive, &config).unwrap();
        let mut sn = SemiNaiveEngine::new();
        let s = ground(&kb, &mut sn, &config).unwrap();
        assert_eq!(keys(&s.facts), keys(&n.facts));
        assert_eq!(s.factors.len(), n.factors.len());
    }

    /// Table 1 text without depending on the datagen crate (which depends
    /// on this crate).
    fn probkb_datagen_free_table1() -> &'static str {
        r#"
        fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
        fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
        rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
        rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
        rule 0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
        rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
        functional born_in 1 1
        "#
    }

    #[test]
    fn delta_shrinks_per_iteration_work() {
        // On a long chain, late iterations touch only the frontier: the
        // delta table must shrink to the new-facts count, not the KB size.
        let kb = chain_kb(30);
        let config = GroundingConfig {
            max_iterations: 40,
            apply_constraints: false,
            ..GroundingConfig::default()
        };
        let mut sn = SemiNaiveEngine::new();
        let out = ground(&kb, &mut sn, &config).unwrap();
        assert!(out.report.converged);
        // After convergence, the last delta equals the final iteration's
        // new facts (zero) — the engine is left with an empty frontier.
        // (insert_facts is not called for empty candidate sets, so check
        // the penultimate behaviour via the report instead.)
        let news: Vec<usize> = out.report.iterations.iter().map(|i| i.new_facts).collect();
        assert!(news.windows(2).any(|w| w[1] < w[0]), "work should shrink");
    }

    #[test]
    fn constraints_also_clean_the_delta() {
        let kb = parse(
            r#"
            fact 0.9 born_in(M:Person, A:City)
            fact 0.9 born_in(M:Person, B:City)
            rule 1.0 live_in(x:Person, y:City) :- born_in(x, y)
            functional born_in 1 1
            "#,
        )
        .unwrap()
        .build();
        let config = GroundingConfig {
            preclean: true,
            ..GroundingConfig::default()
        };
        let mut sn = SemiNaiveEngine::new();
        let out = ground(&kb, &mut sn, &config).unwrap();
        // Preclean removes both M facts from TΠ *and* the delta, so
        // nothing is derivable.
        assert_eq!(out.facts.len(), 0);
        assert_eq!(out.report.inferred_facts(), 0);
    }

    #[test]
    fn query_count_at_most_two_per_partition() {
        let kb = chain_kb(5);
        let config = GroundingConfig {
            apply_constraints: false,
            ..GroundingConfig::default()
        };
        let mut sn = SemiNaiveEngine::new();
        let out = ground(&kb, &mut sn, &config).unwrap();
        // Two partitions (P1, P4): ≤ 1 + 2 = 3 queries per iteration.
        for iter in &out.report.iterations {
            assert!(iter.queries <= 3, "got {} queries", iter.queries);
        }
    }
}
