//! Fault-injection suite for checkpoint/resume (ISSUE 3 acceptance):
//! truncate the WAL at every byte offset, flip bytes, delete snapshots
//! or the log outright — every recovery must complete without panicking
//! and produce facts/factors byte-identical to an uninterrupted run.

use std::fs;
use std::path::{Path, PathBuf};

use probkb_core::prelude::*;
use probkb_kb::prelude::{parse, ProbKb};
use probkb_mpp::prelude::NetworkModel;
use probkb_storage::format::encode_table;

fn chain_kb(n: usize) -> ProbKb {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("fact 0.9 next(n{}:Node, n{}:Node)\n", i, i + 1));
    }
    text.push_str("rule 1.0 reach(x:Node, y:Node) :- next(x, y)\n");
    text.push_str("rule 1.0 reach(x:Node, y:Node) :- reach(x, z:Node), next(z, y)\n");
    parse(&text).unwrap().build()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("probkb-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = fs::remove_dir_all(to);
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// The bytes that must match an uninterrupted run exactly.
fn result_bytes(outcome: &GroundingOutcome) -> (Vec<u8>, Vec<u8>) {
    (encode_table(&outcome.facts), encode_table(&outcome.factors))
}

fn semi_naive() -> SemiNaiveEngine {
    SemiNaiveEngine::new()
}

/// A finished checkpointed baseline plus the plain-run truth to diff
/// against.
struct Baseline {
    kb: ProbKb,
    config: GroundingConfig,
    dir: PathBuf,
    expected: (Vec<u8>, Vec<u8>),
}

fn baseline(tag: &str, nodes: usize) -> Baseline {
    let kb = chain_kb(nodes);
    let config = GroundingConfig::default();
    let mut plain = semi_naive();
    let truth = ground(&kb, &mut plain, &config).unwrap();

    let dir = tmp_dir(tag);
    let ckpt = CheckpointConfig {
        snapshot_every: 2,
        ..CheckpointConfig::new(&dir)
    };
    let mut engine = semi_naive();
    let run = ground_checkpointed(&kb, &mut engine, &config, &ckpt).unwrap();
    assert_eq!(result_bytes(&run.outcome), result_bytes(&truth));
    Baseline {
        kb,
        config,
        dir,
        expected: result_bytes(&truth),
    }
}

fn resume_in(base: &Baseline, dir: &Path) -> CheckpointedRun {
    let ckpt = CheckpointConfig {
        snapshot_every: 2,
        ..CheckpointConfig::new(dir)
    };
    let mut engine = semi_naive();
    ground_checkpointed(&base.kb, &mut engine, &base.config, &ckpt).unwrap()
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join(probkb_core::checkpoint::WAL_FILE)
}

fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
    fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name.starts_with("snapshot-") && name.ends_with(".pkb")).then_some(p)
        })
        .collect()
}

#[test]
fn truncate_wal_at_every_offset_recovers_identically() {
    let base = baseline("trunc", 5);
    let wal = fs::read(wal_path(&base.dir)).unwrap();
    let work = tmp_dir("trunc-work");
    for cut in 0..=wal.len() {
        copy_dir(&base.dir, &work);
        fs::write(wal_path(&work), &wal[..cut]).unwrap();
        let run = resume_in(&base, &work);
        assert_eq!(
            result_bytes(&run.outcome),
            base.expected,
            "divergence after truncating the WAL to {cut} bytes"
        );
    }
    let _ = fs::remove_dir_all(&base.dir);
    let _ = fs::remove_dir_all(&work);
}

#[test]
fn truncate_wal_at_every_offset_without_snapshots() {
    // Harsher: no snapshots at all — recovery must rebuild the base
    // state from the KB and replay whatever log prefix survived.
    let base = baseline("trunc-nosnap", 5);
    let wal = fs::read(wal_path(&base.dir)).unwrap();
    let work = tmp_dir("trunc-nosnap-work");
    for cut in 0..=wal.len() {
        copy_dir(&base.dir, &work);
        for snap in snapshot_files(&work) {
            fs::remove_file(snap).unwrap();
        }
        fs::write(wal_path(&work), &wal[..cut]).unwrap();
        let run = resume_in(&base, &work);
        assert_eq!(
            result_bytes(&run.outcome),
            base.expected,
            "divergence after truncating the snapshot-less WAL to {cut} bytes"
        );
    }
    let _ = fs::remove_dir_all(&base.dir);
    let _ = fs::remove_dir_all(&work);
}

#[test]
fn flipped_wal_bytes_never_corrupt_results() {
    let base = baseline("flip", 5);
    let wal = fs::read(wal_path(&base.dir)).unwrap();
    let work = tmp_dir("flip-work");
    // Step through the log; a stride keeps runtime modest while still
    // hitting every frame's header, payload, and CRC regions.
    for pos in (0..wal.len()).step_by(3) {
        copy_dir(&base.dir, &work);
        let mut damaged = wal.clone();
        damaged[pos] ^= 0x41;
        fs::write(wal_path(&work), &damaged).unwrap();
        let run = resume_in(&base, &work);
        assert_eq!(
            result_bytes(&run.outcome),
            base.expected,
            "divergence after flipping WAL byte {pos}"
        );
    }
    let _ = fs::remove_dir_all(&base.dir);
    let _ = fs::remove_dir_all(&work);
}

#[test]
fn flipped_snapshot_bytes_fall_back_safely() {
    let base = baseline("snapflip", 5);
    let work = tmp_dir("snapflip-work");
    copy_dir(&base.dir, &work);
    for snap in snapshot_files(&work) {
        let mut bytes = fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&snap, bytes).unwrap();
    }
    let run = resume_in(&base, &work);
    assert_eq!(result_bytes(&run.outcome), base.expected);
    let _ = fs::remove_dir_all(&base.dir);
    let _ = fs::remove_dir_all(&work);
}

#[test]
fn deleted_snapshots_recover_from_wal_alone() {
    let base = baseline("nosnap", 5);
    let work = tmp_dir("nosnap-work");
    copy_dir(&base.dir, &work);
    for snap in snapshot_files(&work) {
        fs::remove_file(snap).unwrap();
    }
    let run = resume_in(&base, &work);
    assert!(run.resume.resumed());
    assert_eq!(result_bytes(&run.outcome), base.expected);
    let _ = fs::remove_dir_all(&base.dir);
    let _ = fs::remove_dir_all(&work);
}

#[test]
fn deleted_wal_recovers_from_snapshots_alone() {
    let base = baseline("nowal", 5);
    let work = tmp_dir("nowal-work");
    copy_dir(&base.dir, &work);
    fs::remove_file(wal_path(&work)).unwrap();
    let run = resume_in(&base, &work);
    assert!(run.resume.resumed());
    assert_eq!(result_bytes(&run.outcome), base.expected);
    let _ = fs::remove_dir_all(&base.dir);
    let _ = fs::remove_dir_all(&work);
}

#[test]
fn empty_directory_starts_fresh() {
    let base = baseline("empty", 5);
    let work = tmp_dir("empty-work");
    fs::create_dir_all(&work).unwrap();
    let run = resume_in(&base, &work);
    assert!(!run.resume.resumed());
    assert_eq!(result_bytes(&run.outcome), base.expected);
    let _ = fs::remove_dir_all(&base.dir);
    let _ = fs::remove_dir_all(&work);
}

#[test]
fn different_kb_invalidates_state() {
    let base = baseline("kbswap", 5);
    let other_kb = chain_kb(7);
    let mut plain = semi_naive();
    let truth = ground(&other_kb, &mut plain, &base.config).unwrap();

    let ckpt = CheckpointConfig {
        snapshot_every: 2,
        ..CheckpointConfig::new(&base.dir)
    };
    let mut engine = semi_naive();
    let run = ground_checkpointed(&other_kb, &mut engine, &base.config, &ckpt).unwrap();
    assert!(!run.resume.resumed());
    assert_eq!(result_bytes(&run.outcome), result_bytes(&truth));
    let _ = fs::remove_dir_all(&base.dir);
}

#[test]
fn different_engine_invalidates_state() {
    let base = baseline("engswap", 5);
    // SemiNaiveEngine reports a different name than SingleNodeEngine, so
    // its on-disk state must not be replayed into the other backend.
    let mut plain = SingleNodeEngine::new();
    let truth = ground(&base.kb, &mut plain, &base.config).unwrap();

    let ckpt = CheckpointConfig {
        snapshot_every: 2,
        ..CheckpointConfig::new(&base.dir)
    };
    let mut engine = SingleNodeEngine::new();
    let run = ground_checkpointed(&base.kb, &mut engine, &base.config, &ckpt).unwrap();
    assert!(!run.resume.resumed());
    assert_eq!(result_bytes(&run.outcome), result_bytes(&truth));
    let _ = fs::remove_dir_all(&base.dir);
}

fn mpp_roundtrip(tag: &str, mode: MppMode) {
    let kb = chain_kb(5);
    let config = GroundingConfig::default();
    let mut plain = MppEngine::new(4, NetworkModel::free(), mode);
    let truth = ground(&kb, &mut plain, &config).unwrap();

    let dir = tmp_dir(tag);
    let ckpt = CheckpointConfig {
        snapshot_every: 2,
        ..CheckpointConfig::new(&dir)
    };
    let mut engine = MppEngine::new(4, NetworkModel::free(), mode);
    let first = ground_checkpointed(&kb, &mut engine, &config, &ckpt).unwrap();
    assert_eq!(result_bytes(&first.outcome), result_bytes(&truth));

    // Kill-and-resume simulation: truncate the WAL a few frames back,
    // drop the final snapshot, and resume with a brand-new cluster.
    let wal = fs::read(wal_path(&dir)).unwrap();
    fs::write(wal_path(&dir), &wal[..wal.len() * 2 / 3]).unwrap();
    let mut latest = snapshot_files(&dir);
    latest.sort();
    if let Some(newest) = latest.last() {
        fs::remove_file(newest).unwrap();
    }
    let mut engine = MppEngine::new(4, NetworkModel::free(), mode);
    let resumed = ground_checkpointed(&kb, &mut engine, &config, &ckpt).unwrap();
    assert!(resumed.resume.resumed());
    assert_eq!(result_bytes(&resumed.outcome), result_bytes(&truth));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mpp_optimized_checkpoints_byte_identically() {
    mpp_roundtrip("mpp-opt", MppMode::Optimized);
}

#[test]
fn mpp_noviews_checkpoints_byte_identically() {
    mpp_roundtrip("mpp-nv", MppMode::NoViews);
}

#[test]
fn single_node_mid_run_truncation_resumes() {
    let kb = chain_kb(5);
    let config = GroundingConfig::default();
    let mut plain = SingleNodeEngine::new();
    let truth = ground(&kb, &mut plain, &config).unwrap();

    let dir = tmp_dir("sn");
    let ckpt = CheckpointConfig {
        snapshot_every: 2,
        ..CheckpointConfig::new(&dir)
    };
    let mut engine = SingleNodeEngine::new();
    ground_checkpointed(&kb, &mut engine, &config, &ckpt).unwrap();

    let wal = fs::read(wal_path(&dir)).unwrap();
    fs::write(wal_path(&dir), &wal[..wal.len() / 2]).unwrap();
    let mut engine = SingleNodeEngine::new();
    let resumed = ground_checkpointed(&kb, &mut engine, &config, &ckpt).unwrap();
    assert_eq!(result_bytes(&resumed.outcome), result_bytes(&truth));
    let _ = fs::remove_dir_all(&dir);
}
