//! End-to-end acceptance test for the out-of-core storage layer: full
//! knowledge expansion over a synthetic ReVerb-style KB must produce
//! **byte-identical** facts, factors, and derivation schedule whether
//! the engine's catalogs live in RAM or spill through a buffer pool
//! capped far below the dataset's resident size.
//!
//! Everything runs inside ONE test function: the spill policy is a
//! process-wide default (the grounding engines build their catalogs
//! internally), and a single body is the only way to sequence the
//! override without racing other tests in this binary.

use std::collections::BTreeMap;

use probkb_core::prelude::*;
use probkb_datagen::prelude::*;
use probkb_relational::prelude::{
    clear_process_default, set_process_default, SpillPolicy, StorageContext,
};

/// A grounding run's complete observable output, rendered to bytes.
struct Snapshot {
    facts: String,
    factors: String,
    schedule: String,
    new_facts: Vec<String>,
}

fn expand_snapshot(kb: &probkb_kb::prelude::ProbKb, threads: Option<usize>) -> Snapshot {
    let options = ExpandOptions {
        config: GroundingConfig {
            threads,
            ..GroundingConfig::default()
        },
        backend: Backend::SingleNode,
    };
    let expansion = expand(kb, &options).unwrap();
    // The derivation schedule is a HashMap; render it ordered.
    let schedule: BTreeMap<i64, usize> = expansion
        .outcome
        .fact_iteration
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect();
    Snapshot {
        facts: format!("{:?}", expansion.outcome.facts),
        factors: format!("{:?}", expansion.outcome.factors),
        schedule: format!("{schedule:?}"),
        new_facts: expansion.describe_new_facts(kb),
    }
}

#[test]
fn grounding_is_byte_identical_under_capped_buffer_pool() {
    let kb = generate(&ReverbConfig {
        entities: 1_500,
        classes: 10,
        relations: 80,
        facts: 6_000,
        rules: 250,
        functional_frac: 0.05,
        pseudo_frac: 0.05,
        zipf_s: 1.05,
        rule_zipf_s: 0.6,
        seed: 11,
    });

    // Oracle: fully in-memory, serial.
    set_process_default(None);
    let oracle = expand_snapshot(&kb, Some(1));
    assert!(!oracle.new_facts.is_empty(), "workload must infer facts");

    // Spilled runs: tiny and mid-size pools, serial and 4 threads. An
    // aggressive 256-row threshold forces even intermediate tables out
    // of core.
    for pool_pages in [64usize, 1024] {
        for threads in [1usize, 4] {
            let ctx = StorageContext::in_temp(pool_pages).unwrap();
            set_process_default(Some(SpillPolicy {
                ctx,
                threshold_rows: 256,
            }));
            let got = expand_snapshot(&kb, Some(threads));
            clear_process_default();
            let tag = format!("pool={pool_pages} threads={threads}");
            assert_eq!(oracle.facts, got.facts, "facts differ ({tag})");
            assert_eq!(oracle.factors, got.factors, "factors differ ({tag})");
            assert_eq!(oracle.schedule, got.schedule, "schedule differs ({tag})");
            assert_eq!(oracle.new_facts, got.new_facts, "new facts differ ({tag})");
        }
    }
    clear_process_default();
}
