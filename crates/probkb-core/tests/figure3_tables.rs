//! Golden test: the intermediate tables of Figure 3, row by row.
//!
//! Figure 3 of the paper walks Algorithm 1 over the Table 1 KB and shows
//! every intermediate relation: `T¹` (facts after iteration 1), `T²`
//! (after iteration 2), and the final `TΦ`. This test executes the same
//! queries through the engine and checks the actual table contents — not
//! just cardinalities — against the figure.

use std::collections::{BTreeMap, BTreeSet};

use probkb_core::prelude::*;
use probkb_kb::prelude::*;
use probkb_relational::prelude::*;

const TABLE1: &str = r#"
    fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
    fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
    rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
    rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
    rule 2.68 grow_up_in(x:Writer, y:Place) :- born_in(x, y)
    rule 0.74 grow_up_in(x:Writer, y:City) :- born_in(x, y)
    rule 0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
    rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
"#;

struct Fixture {
    kb: ProbKb,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            kb: parse(TABLE1).unwrap().build(),
        }
    }

    fn rel(&self, name: &str) -> i64 {
        self.kb.relations.get(name).unwrap() as i64
    }

    fn ent(&self, name: &str) -> i64 {
        self.kb.entities.get(name).unwrap() as i64
    }

    /// Render a candidate row `(R, x, C1, y, C2)` as `rel(x, y)`.
    fn candidate_name(&self, row: &[Value]) -> String {
        let rel = self.kb.relations.resolve(row[0].as_int().unwrap() as u32).unwrap();
        let x = self.kb.entities.resolve(row[1].as_int().unwrap() as u32).unwrap();
        let y = self.kb.entities.resolve(row[3].as_int().unwrap() as u32).unwrap();
        format!("{rel}({x}, {y})")
    }
}

/// Iteration 1 of Query 1-1 applied to T⁰ (Figure 3(f)): all four M1
/// rules fire on the two born_in facts, yielding exactly the facts with
/// the class-correct bindings (live_in/grow_up_in × NYC-as-City /
/// Brooklyn-as-Place).
#[test]
fn query_1_1_produces_figure_3f() {
    let fx = Fixture::new();
    let rel = load(&fx.kb);
    let mut engine = SingleNodeEngine::new();
    engine.load(&rel).unwrap();

    let plan = ground_atoms_plan(RulePattern::P1, &names::mln(1), names::TPI);
    let out = Executor::new(engine.catalog()).execute_table(&plan).unwrap();

    let got: BTreeSet<String> = out.rows().iter().map(|r| fx.candidate_name(r)).collect();
    let expected: BTreeSet<String> = [
        "live_in(Ruth_Gruber, New_York_City)",
        "live_in(Ruth_Gruber, Brooklyn)",
        "grow_up_in(Ruth_Gruber, New_York_City)",
        "grow_up_in(Ruth_Gruber, Brooklyn)",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    assert_eq!(got, expected);

    // Class columns match the rule that fired: NYC rows carry City, the
    // Brooklyn rows carry Place.
    let city = fx.kb.classes.get("City").unwrap() as i64;
    let place = fx.kb.classes.get("Place").unwrap() as i64;
    for row in out.rows() {
        let y = row[3].as_int().unwrap();
        let c2 = row[4].as_int().unwrap();
        if y == fx.ent("New_York_City") {
            assert_eq!(c2, city);
        } else {
            assert_eq!(c2, place);
        }
    }
}

/// Query 1-3 over T⁰ (the born_in ⋈ born_in rule): located_in(Brooklyn,
/// New_York_City) — Figure 3(g)'s row 7 — plus nothing else from the
/// live_in rule because no live_in facts exist yet.
#[test]
fn query_1_3_produces_located_in() {
    let fx = Fixture::new();
    let rel = load(&fx.kb);
    let mut engine = SingleNodeEngine::new();
    engine.load(&rel).unwrap();

    let plan = ground_atoms_plan(RulePattern::P3, &names::mln(3), names::TPI);
    let out = Executor::new(engine.catalog()).execute_table(&plan).unwrap();
    let got: BTreeSet<String> = out.rows().iter().map(|r| fx.candidate_name(r)).collect();
    assert_eq!(
        got,
        BTreeSet::from(["located_in(Brooklyn, New_York_City)".to_string()])
    );
}

/// The final TΦ (Figure 3(e)): 8 factors with exactly the paper's
/// (head ← body, weight) structure — 2 singletons with the extraction
/// weights, 4 M1 factors, and the doubly-derived located_in head.
#[test]
fn final_t_phi_matches_figure_3e() {
    let fx = Fixture::new();
    let mut engine = SingleNodeEngine::new();
    let out = ground(&fx.kb, &mut engine, &GroundingConfig::default()).unwrap();
    assert_eq!(out.factors.len(), 8);

    // Map fact ids to readable names.
    let mut names_by_id: BTreeMap<i64, String> = BTreeMap::new();
    for row in out.facts.rows() {
        names_by_id.insert(
            row[tpi::I].as_int().unwrap(),
            fx.candidate_name(&[
                row[tpi::R].clone(),
                row[tpi::X].clone(),
                row[tpi::C1].clone(),
                row[tpi::Y].clone(),
                row[tpi::C2].clone(),
            ]),
        );
    }
    let name = |v: &Value| names_by_id[&v.as_int().unwrap()].clone();

    let mut singletons = BTreeSet::new();
    let mut implications = BTreeSet::new();
    for row in out.factors.rows() {
        let w = row[tphi::W].as_float().unwrap();
        match (row[tphi::I2].as_int(), row[tphi::I3].as_int()) {
            (None, None) => {
                singletons.insert(format!("{} @{w:.2}", name(&row[tphi::I1])));
            }
            (Some(_), None) => {
                implications.insert(format!(
                    "{} <- {} @{w:.2}",
                    name(&row[tphi::I1]),
                    name(&row[tphi::I2]),
                ));
            }
            (Some(_), Some(_)) => {
                implications.insert(format!(
                    "{} <- {} & {} @{w:.2}",
                    name(&row[tphi::I1]),
                    name(&row[tphi::I2]),
                    name(&row[tphi::I3]),
                ));
            }
            (None, Some(_)) => panic!("I3 set without I2"),
        }
    }

    let expected_singletons: BTreeSet<String> = [
        "born_in(Ruth_Gruber, New_York_City) @0.96",
        "born_in(Ruth_Gruber, Brooklyn) @0.93",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    assert_eq!(singletons, expected_singletons);

    let expected_implications: BTreeSet<String> = [
        "live_in(Ruth_Gruber, New_York_City) <- born_in(Ruth_Gruber, New_York_City) @1.53",
        "live_in(Ruth_Gruber, Brooklyn) <- born_in(Ruth_Gruber, Brooklyn) @1.40",
        "grow_up_in(Ruth_Gruber, New_York_City) <- born_in(Ruth_Gruber, New_York_City) @0.74",
        "grow_up_in(Ruth_Gruber, Brooklyn) <- born_in(Ruth_Gruber, Brooklyn) @2.68",
        "located_in(Brooklyn, New_York_City) <- born_in(Ruth_Gruber, Brooklyn) & born_in(Ruth_Gruber, New_York_City) @0.52",
        "located_in(Brooklyn, New_York_City) <- live_in(Ruth_Gruber, Brooklyn) & live_in(Ruth_Gruber, New_York_City) @0.32",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    assert_eq!(implications, expected_implications);
}

/// The MLN tables themselves (Figure 3(b)/(c)): M1 holds the four
/// length-2 identifier tuples, M3 the two length-3 ones with the right
/// (R1, R2, R3) columns.
#[test]
fn mln_tables_match_figure_3bc() {
    let fx = Fixture::new();
    let rel = load(&fx.kb);
    let m1 = rel
        .mln
        .iter()
        .find(|(p, _)| *p == RulePattern::P1)
        .map(|(_, t)| t)
        .unwrap();
    assert_eq!(m1.len(), 4);
    for row in m1.rows() {
        assert_eq!(row[1].as_int().unwrap(), fx.rel("born_in")); // R2 always born_in
        let r1 = row[0].as_int().unwrap();
        assert!(r1 == fx.rel("live_in") || r1 == fx.rel("grow_up_in"));
    }

    let m3 = rel
        .mln
        .iter()
        .find(|(p, _)| *p == RulePattern::P3)
        .map(|(_, t)| t)
        .unwrap();
    assert_eq!(m3.len(), 2);
    for row in m3.rows() {
        assert_eq!(row[0].as_int().unwrap(), fx.rel("located_in"));
        // The body relations are symmetric (q = r) in both rules.
        assert_eq!(row[1], row[2]);
    }
}
