//! Ambiguity detection (§5.2): entities that violate functional
//! constraints are flagged as (potentially) ambiguous — a common name
//! covering several real-world objects invalidates the equality checks in
//! the grounding joins.

use std::collections::HashSet;

use probkb_core::prelude::{load, violators_plan};
use probkb_kb::prelude::{ClassId, EntityId, ProbKb};
use probkb_relational::prelude::{Catalog, Executor, Result};

/// Detect `(entity, class)` pairs violating any functional constraint of
/// the KB, without mutating anything.
pub fn detect_violating_entities(kb: &ProbKb) -> Result<Vec<(EntityId, ClassId)>> {
    let rel = load(kb);
    let catalog = Catalog::new();
    catalog.create("T", rel.t_pi)?;
    catalog.create("Omega", rel.t_omega)?;
    let exec = Executor::new(&catalog);
    let mut seen: HashSet<(i64, i64)> = HashSet::new();
    for alpha in [1, 2] {
        let out = exec.execute_table(&violators_plan("T", "Omega", alpha))?;
        for row in out.rows() {
            seen.insert((
                row[0].as_int().expect("entity"),
                row[1].as_int().expect("class"),
            ));
        }
    }
    let mut pairs: Vec<(EntityId, ClassId)> = seen
        .into_iter()
        .map(|(e, c)| (EntityId::from_i64(e), ClassId::from_i64(c)))
        .collect();
    pairs.sort();
    Ok(pairs)
}

/// Resolve detected violators to entity names for reports (Figure 5(b)).
pub fn describe_violators(kb: &ProbKb, pairs: &[(EntityId, ClassId)]) -> Vec<String> {
    pairs
        .iter()
        .map(|(e, c)| {
            format!(
                "{} : {}",
                kb.entities.resolve(e.raw()).unwrap_or("?"),
                kb.classes.resolve(c.raw()).unwrap_or("?"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_kb::prelude::parse;

    #[test]
    fn ambiguous_entity_flagged() {
        // Two different Mandels share one name → two birth cities.
        let kb = parse(
            r#"
            fact 0.9 born_in(Mandel:Person, Berlin:City)
            fact 0.9 born_in(Mandel:Person, New_York_City:City)
            fact 0.9 born_in(Freud:Person, Vienna:City)
            functional born_in 1 1
            "#,
        )
        .unwrap()
        .build();
        let pairs = detect_violating_entities(&kb).unwrap();
        assert_eq!(pairs.len(), 1);
        let described = describe_violators(&kb, &pairs);
        assert_eq!(described, vec!["Mandel : Person"]);
    }

    #[test]
    fn clean_kb_has_no_violators() {
        let kb = parse(
            r#"
            fact 0.9 born_in(A:Person, X:City)
            fact 0.9 born_in(B:Person, X:City)
            functional born_in 1 1
            "#,
        )
        .unwrap()
        .build();
        // Two people born in the same city is fine for Type I.
        assert!(detect_violating_entities(&kb).unwrap().is_empty());
    }

    #[test]
    fn detection_does_not_mutate_kb() {
        let kb = parse(
            r#"
            fact 0.9 born_in(M:Person, A:City)
            fact 0.9 born_in(M:Person, B:City)
            functional born_in 1 1
            "#,
        )
        .unwrap()
        .build();
        let before = kb.facts.len();
        let _ = detect_violating_entities(&kb).unwrap();
        assert_eq!(kb.facts.len(), before);
    }
}
