//! Precision evaluation against ground truth (§6.2, Figure 7(a)).

use probkb_core::prelude::{tpi, GroundingOutcome};

use crate::truth::{FactKey, GroundTruth};

/// One point on a precision curve: the state of inference after a given
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionPoint {
    /// Facts inferred through this iteration (cumulative, survivors only).
    pub inferred: usize,
    /// Of those, how many are correct or probable.
    pub correct: usize,
    /// `correct / inferred` (1.0 when nothing inferred yet).
    pub precision: f64,
    /// The iteration this point summarizes.
    pub iteration: usize,
}

/// Overall evaluation of a grounding run.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Cumulative precision after each iteration — the trajectory
    /// Figure 7(a) plots (precision vs estimated number of correct facts).
    pub curve: Vec<PrecisionPoint>,
    /// Total inferred facts surviving in the final KB.
    pub inferred: usize,
    /// Total correct/probable inferred facts.
    pub correct: usize,
    /// Final precision.
    pub precision: f64,
}

fn key_of_row(row: &[probkb_relational::value::Value]) -> FactKey {
    [
        row[tpi::R].as_int().expect("R"),
        row[tpi::X].as_int().expect("x"),
        row[tpi::C1].as_int().expect("C1"),
        row[tpi::Y].as_int().expect("y"),
        row[tpi::C2].as_int().expect("C2"),
    ]
}

/// Evaluate a grounding outcome against ground truth.
///
/// Only *inferred* facts (NULL weight, i.e. not among the extractions)
/// count, and only those that survived constraint enforcement — exactly
/// the facts the paper's judges would have scored.
pub fn evaluate(outcome: &GroundingOutcome, truth: &GroundTruth) -> Evaluation {
    // (iteration, acceptable?) for every surviving inferred fact.
    let mut judged: Vec<(usize, bool)> = Vec::new();
    for row in outcome.facts.rows() {
        if !row[tpi::W].is_null() {
            continue; // extracted fact, not inferred
        }
        let id = row[tpi::I].as_int().expect("I");
        let iteration = outcome.fact_iteration.get(&id).copied().unwrap_or(0);
        judged.push((iteration, truth.is_acceptable(&key_of_row(row))));
    }
    judged.sort_by_key(|&(iter, _)| iter);

    let mut curve = Vec::new();
    let mut inferred = 0usize;
    let mut correct = 0usize;
    let mut idx = 0usize;
    let max_iter = judged.last().map(|&(i, _)| i).unwrap_or(0);
    for iteration in 1..=max_iter {
        while idx < judged.len() && judged[idx].0 == iteration {
            inferred += 1;
            correct += judged[idx].1 as usize;
            idx += 1;
        }
        curve.push(PrecisionPoint {
            inferred,
            correct,
            precision: if inferred == 0 {
                1.0
            } else {
                correct as f64 / inferred as f64
            },
            iteration,
        });
    }
    Evaluation {
        inferred,
        correct,
        precision: if inferred == 0 {
            1.0
        } else {
            correct as f64 / inferred as f64
        },
        curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_core::prelude::{ground, GroundingConfig, SingleNodeEngine};
    use probkb_kb::prelude::parse;

    #[test]
    fn perfect_kb_scores_full_precision() {
        let kb = parse(
            r#"
            fact 0.9 born_in(A:Person, X:City)
            rule 1.0 live_in(x:Person, y:City) :- born_in(x, y)
            "#,
        )
        .unwrap()
        .build();
        let mut engine = SingleNodeEngine::new();
        let out = ground(&kb, &mut engine, &GroundingConfig::default()).unwrap();

        // Truth: live_in(A, X) is correct.
        let mut truth = GroundTruth::default();
        for row in out.facts.rows() {
            truth.true_keys.insert(key_of_row(row));
        }
        let eval = evaluate(&out, &truth);
        assert_eq!(eval.inferred, 1);
        assert_eq!(eval.correct, 1);
        assert_eq!(eval.precision, 1.0);
        assert_eq!(eval.curve.len(), 1);
        assert_eq!(eval.curve[0].iteration, 1);
    }

    #[test]
    fn wrong_inferences_lower_precision() {
        let kb = parse(
            r#"
            fact 0.9 born_in(A:Person, X:City)
            fact 0.9 born_in(B:Person, Y:City)
            rule 1.0 live_in(x:Person, y:City) :- born_in(x, y)
            "#,
        )
        .unwrap()
        .build();
        let mut engine = SingleNodeEngine::new();
        let out = ground(&kb, &mut engine, &GroundingConfig::default()).unwrap();
        // Only live_in(A, X) is true; live_in(B, Y) is judged incorrect.
        let mut truth = GroundTruth::default();
        let a_key = out
            .facts
            .rows()
            .iter()
            .find(|r| r[tpi::W].is_null() && r[tpi::X] == out.facts.rows()[0][tpi::X])
            .map(|r| key_of_row(r))
            .unwrap();
        truth.true_keys.insert(a_key);
        let eval = evaluate(&out, &truth);
        assert_eq!(eval.inferred, 2);
        assert_eq!(eval.correct, 1);
        assert!((eval.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probable_facts_count_as_acceptable() {
        let kb = parse(
            r#"
            fact 0.9 born_in(A:Person, X:City)
            rule 1.0 live_in(x:Person, y:City) :- born_in(x, y)
            "#,
        )
        .unwrap()
        .build();
        let mut engine = SingleNodeEngine::new();
        let out = ground(&kb, &mut engine, &GroundingConfig::default()).unwrap();
        let mut truth = GroundTruth::default();
        for row in out.facts.rows() {
            if row[tpi::W].is_null() {
                truth.probable_keys.insert(key_of_row(row));
            }
        }
        let eval = evaluate(&out, &truth);
        assert_eq!(eval.precision, 1.0);
    }

    #[test]
    fn empty_inference_has_unit_precision_and_empty_curve() {
        let kb = parse("fact 0.9 p(a:A, b:B)").unwrap().build();
        let mut engine = SingleNodeEngine::new();
        let out = ground(&kb, &mut engine, &GroundingConfig::default()).unwrap();
        let eval = evaluate(&out, &GroundTruth::default());
        assert_eq!(eval.inferred, 0);
        assert_eq!(eval.precision, 1.0);
        assert!(eval.curve.is_empty());
    }
}
