//! Rule cleaning (§5.3): rank rules by their Sherlock-style statistical
//! significance and keep the top-θ fraction.

use probkb_kb::prelude::ProbKb;

/// The indices of the rules that survive cleaning at threshold `theta ∈
/// (0, 1]`: the `⌈θ·n⌉` highest-significance rules (ties broken by
/// original order, which keeps cleaning deterministic).
pub fn surviving_rule_indices(kb: &ProbKb, theta: f64) -> Vec<usize> {
    let theta = theta.clamp(0.0, 1.0);
    let n = kb.rules.len();
    let keep = ((theta * n as f64).ceil() as usize).min(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        kb.rules[b]
            .significance
            .total_cmp(&kb.rules[a].significance)
            .then(a.cmp(&b))
    });
    let mut kept: Vec<usize> = order.into_iter().take(keep).collect();
    kept.sort_unstable();
    kept
}

/// A copy of the KB with only the top-θ rules retained. Facts, entities,
/// and constraints are untouched.
pub fn clean_rules(kb: &ProbKb, theta: f64) -> ProbKb {
    let keep = surviving_rule_indices(kb, theta);
    let mut cleaned = kb.clone();
    cleaned.rules = keep.iter().map(|&i| kb.rules[i].clone()).collect();
    cleaned
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_kb::prelude::parse;

    fn kb() -> ProbKb {
        // Parser sets significance = weight; weights 0.1 .. 0.5.
        parse(
            r#"
            rule 0.3 p1(x:A, y:B) :- q(x, y)
            rule 0.5 p2(x:A, y:B) :- q(x, y)
            rule 0.1 p3(x:A, y:B) :- q(x, y)
            rule 0.4 p4(x:A, y:B) :- q(x, y)
            rule 0.2 p5(x:A, y:B) :- q(x, y)
            "#,
        )
        .unwrap()
        .build()
    }

    #[test]
    fn keeps_top_fraction_by_significance() {
        let kb = kb();
        // Top 40% of 5 rules = 2 rules: the 0.5 and 0.4 ones.
        let kept = surviving_rule_indices(&kb, 0.4);
        assert_eq!(kept, vec![1, 3]);
        let cleaned = clean_rules(&kb, 0.4);
        assert_eq!(cleaned.rules.len(), 2);
        assert!(cleaned
            .rules
            .iter()
            .all(|r| r.significance >= 0.4));
    }

    #[test]
    fn theta_one_keeps_everything() {
        let kb = kb();
        assert_eq!(clean_rules(&kb, 1.0).rules.len(), 5);
        assert_eq!(surviving_rule_indices(&kb, 1.0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn theta_clamps_and_rounds_up() {
        let kb = kb();
        // 10% of 5 = 0.5 → ceil → 1 rule.
        assert_eq!(clean_rules(&kb, 0.1).rules.len(), 1);
        // Out-of-range thetas clamp.
        assert_eq!(clean_rules(&kb, 5.0).rules.len(), 5);
        assert_eq!(clean_rules(&kb, -1.0).rules.len(), 0);
    }

    #[test]
    fn facts_and_constraints_untouched() {
        let kb = parse(
            r#"
            fact 0.9 q(a:A, b:B)
            rule 0.5 p(x:A, y:B) :- q(x, y)
            functional q 1 1
            "#,
        )
        .unwrap()
        .build();
        let cleaned = clean_rules(&kb, 0.00001);
        assert_eq!(cleaned.rules.len(), 1); // ceil of tiny θ keeps 1
        assert_eq!(cleaned.facts.len(), 1);
        assert_eq!(cleaned.constraints.len(), 1);
    }

    #[test]
    fn ties_break_deterministically() {
        let kb = parse(
            "rule 0.5 p1(x:A, y:B) :- q(x, y)\nrule 0.5 p2(x:A, y:B) :- q(x, y)",
        )
        .unwrap()
        .build();
        assert_eq!(surviving_rule_indices(&kb, 0.5), vec![0]);
    }
}
