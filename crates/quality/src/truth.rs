//! Ground-truth bookkeeping for quality evaluation.
//!
//! The paper estimates precision with human judges scoring sampled facts
//! as *correct*, *probable*, or *incorrect* (§6.2). Our synthetic KBs
//! carry machine-checkable ground truth instead: the generator records
//! which facts belong to the true world, which rules/entities/extractions
//! were injected as errors, and which derived facts each error family
//! produces.

use std::collections::HashSet;

use probkb_kb::prelude::Fact;

/// The `(R, x, C1, y, C2)` identity of a fact, matching
/// [`probkb_core::relmodel::FactRegistry`] keys.
pub type FactKey = [i64; 5];

/// Extract the key of a KB-model fact.
pub fn fact_key(fact: &Fact) -> FactKey {
    [
        fact.rel.as_i64(),
        fact.x.as_i64(),
        fact.c1.as_i64(),
        fact.y.as_i64(),
        fact.c2.as_i64(),
    ]
}

/// The paper's three credibility levels (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Credibility {
    /// In the true world.
    Correct,
    /// Derived from rules that are likely but not certain — accepted when
    /// estimating precision, as in the paper.
    Probable,
    /// Everything else.
    Incorrect,
}

/// Ground truth produced by the error-injecting generator.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Facts of the true world: the clean extractions plus everything
    /// derivable from them with the correct rules.
    pub true_keys: HashSet<FactKey>,
    /// Acceptable-but-uncertain facts (derived via pseudo-functional
    /// stretches); judged [`Credibility::Probable`].
    pub probable_keys: HashSet<FactKey>,
    /// Indices (into the corrupted KB's rule list) of injected wrong rules.
    pub wrong_rule_ids: HashSet<usize>,
    /// Entity ids made ambiguous by merging distinct entities under one
    /// name (E3).
    pub ambiguous_entities: HashSet<i64>,
    /// Entity ids that are synonyms of another entity (same real-world
    /// object under two names).
    pub synonym_entities: HashSet<i64>,
    /// Injected incorrect extractions (E1).
    pub error_fact_keys: HashSet<FactKey>,
    /// Facts derivable only by using at least one wrong rule (E2 → E4).
    pub wrong_rule_products: HashSet<FactKey>,
    /// Facts derivable from correct rules only because an ambiguous entity
    /// invalidated a join (E3 → E4).
    pub ambiguity_products: HashSet<FactKey>,
}

impl GroundTruth {
    /// Judge a fact key.
    pub fn judge(&self, key: &FactKey) -> Credibility {
        if self.true_keys.contains(key) {
            Credibility::Correct
        } else if self.probable_keys.contains(key) {
            Credibility::Probable
        } else {
            Credibility::Incorrect
        }
    }

    /// Correct and probable both count toward precision (§6.2: "the
    /// fraction of correct and probable facts").
    pub fn is_acceptable(&self, key: &FactKey) -> bool {
        self.judge(key) != Credibility::Incorrect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_kb::prelude::{ClassId, EntityId, RelationId};

    #[test]
    fn fact_key_matches_registry_layout() {
        let f = Fact::new(
            RelationId(1),
            EntityId(2),
            ClassId(3),
            EntityId(4),
            ClassId(5),
            0.9,
        );
        assert_eq!(fact_key(&f), [1, 2, 3, 4, 5]);
    }

    #[test]
    fn judging_levels() {
        let mut truth = GroundTruth::default();
        truth.true_keys.insert([1, 1, 1, 1, 1]);
        truth.probable_keys.insert([2, 2, 2, 2, 2]);
        assert_eq!(truth.judge(&[1, 1, 1, 1, 1]), Credibility::Correct);
        assert_eq!(truth.judge(&[2, 2, 2, 2, 2]), Credibility::Probable);
        assert_eq!(truth.judge(&[9, 9, 9, 9, 9]), Credibility::Incorrect);
        assert!(truth.is_acceptable(&[1, 1, 1, 1, 1]));
        assert!(truth.is_acceptable(&[2, 2, 2, 2, 2]));
        assert!(!truth.is_acceptable(&[9, 9, 9, 9, 9]));
    }
}
