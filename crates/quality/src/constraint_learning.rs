//! Functional-constraint learning — the Leibniz stand-in.
//!
//! The paper obtains its constraint repository from Leibniz (Lin &
//! Etzioni), an algorithm that identifies functional relations in web
//! text. This module is a working replacement: it scans a KB's
//! extractions and proposes Type-I/Type-II (pseudo-)functional
//! constraints wherever the data supports them, with a noise tolerance so
//! a few bad extractions do not mask a genuinely functional relation.

use std::collections::HashMap;

use probkb_kb::prelude::{FunctionalConstraint, Functionality, ProbKb, RelationId};

/// Learner parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnConfig {
    /// Minimum number of distinct key entities a relation needs before a
    /// constraint is proposed (too little evidence → no claim).
    pub min_support: usize,
    /// Largest pseudo-functionality degree δ worth declaring; relations
    /// needing more partners than this are treated as non-functional.
    pub max_degree: u32,
    /// Fraction of key entities allowed to exceed the learned degree
    /// (tolerates extraction noise). The learned degree is the smallest δ
    /// covering at least `1 - tolerance` of the keys.
    pub tolerance: f64,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            min_support: 3,
            max_degree: 4,
            tolerance: 0.05,
        }
    }
}

/// A proposed constraint with its supporting evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedConstraint {
    /// The constraint itself.
    pub constraint: FunctionalConstraint,
    /// Distinct key entities observed.
    pub support: usize,
    /// Fraction of keys whose partner count exceeds the learned degree.
    pub violation_rate: f64,
}

/// Learn functional constraints from a KB's facts.
///
/// For each relation and each direction, the learner computes the number
/// of distinct partners per key entity and proposes the smallest degree
/// that covers `1 - tolerance` of the keys, provided it does not exceed
/// `max_degree`. Results are sorted by relation id, Type I before Type II.
pub fn learn_constraints(kb: &ProbKb, config: &LearnConfig) -> Vec<LearnedConstraint> {
    // partners[(rel, direction)][key] = set of partner entities.
    let mut forward: HashMap<RelationId, HashMap<i64, Vec<i64>>> = HashMap::new();
    let mut backward: HashMap<RelationId, HashMap<i64, Vec<i64>>> = HashMap::new();
    for fact in &kb.facts {
        forward
            .entry(fact.rel)
            .or_default()
            .entry(fact.x.as_i64())
            .or_default()
            .push(fact.y.as_i64());
        backward
            .entry(fact.rel)
            .or_default()
            .entry(fact.y.as_i64())
            .or_default()
            .push(fact.x.as_i64());
    }

    let mut learned = Vec::new();
    for (index, functionality) in [
        (&mut forward, Functionality::TypeI),
        (&mut backward, Functionality::TypeII),
    ] {
        for (rel, keys) in index.iter_mut() {
            if keys.len() < config.min_support {
                continue;
            }
            // Distinct-partner counts per key.
            let mut counts: Vec<usize> = keys
                .values_mut()
                .map(|partners| {
                    partners.sort_unstable();
                    partners.dedup();
                    partners.len()
                })
                .collect();
            counts.sort_unstable();
            // Smallest degree covering (1 - tolerance) of the keys.
            let cover = ((1.0 - config.tolerance) * counts.len() as f64).ceil() as usize;
            let cover = cover.clamp(1, counts.len());
            let degree = counts[cover - 1] as u32;
            if degree > config.max_degree {
                continue;
            }
            let violations = counts.iter().filter(|&&c| c > degree as usize).count();
            learned.push(LearnedConstraint {
                constraint: FunctionalConstraint {
                    rel: *rel,
                    classes: None,
                    functionality,
                    degree,
                },
                support: counts.len(),
                violation_rate: violations as f64 / counts.len() as f64,
            });
        }
    }
    learned.sort_by_key(|l| {
        (
            l.constraint.rel,
            l.constraint.functionality.alpha(),
        )
    });
    learned
}

/// Convenience: learn constraints and return a KB copy with them
/// installed (replacing any existing constraint set).
pub fn with_learned_constraints(kb: &ProbKb, config: &LearnConfig) -> ProbKb {
    let learned = learn_constraints(kb, config);
    let mut out = kb.clone();
    out.constraints = learned.into_iter().map(|l| l.constraint).collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_kb::prelude::parse;

    fn kb_text(extra: &str) -> ProbKb {
        // born_in: strictly functional forward (everyone has one city).
        // lived_in: pseudo-functional with degree 2.
        // likes: not functional at all (many partners).
        let mut text = String::from(
            r#"
            fact 0.9 born_in(A:P, X:C)
            fact 0.9 born_in(B:P, Y:C)
            fact 0.9 born_in(C:P, X:C)
            fact 0.9 born_in(D:P, Z:C)
            fact 0.9 lived_in(A:P, X:C)
            fact 0.9 lived_in(A:P, Y:C)
            fact 0.9 lived_in(B:P, X:C)
            fact 0.9 lived_in(B:P, Z:C)
            fact 0.9 lived_in(C:P, Z:C)
            fact 0.9 likes(A:P, T1:C)
            fact 0.9 likes(A:P, T2:C)
            fact 0.9 likes(A:P, T3:C)
            fact 0.9 likes(A:P, T4:C)
            fact 0.9 likes(A:P, T5:C)
            fact 0.9 likes(B:P, T1:C)
            fact 0.9 likes(B:P, T2:C)
            fact 0.9 likes(B:P, T3:C)
            fact 0.9 likes(B:P, T4:C)
            fact 0.9 likes(B:P, T5:C)
            fact 0.9 likes(D:P, T1:C)
            fact 0.9 likes(D:P, T2:C)
            fact 0.9 likes(D:P, T3:C)
            fact 0.9 likes(D:P, T4:C)
            fact 0.9 likes(D:P, T5:C)
            "#,
        );
        text.push_str(extra);
        parse(&text).unwrap().build()
    }

    fn find<'a>(
        learned: &'a [LearnedConstraint],
        kb: &ProbKb,
        rel: &str,
        functionality: Functionality,
    ) -> Option<&'a LearnedConstraint> {
        let rel = RelationId(kb.relations.get(rel)?);
        learned
            .iter()
            .find(|l| l.constraint.rel == rel && l.constraint.functionality == functionality)
    }

    #[test]
    fn learns_strict_and_pseudo_functionality() {
        let kb = kb_text("");
        let learned = learn_constraints(&kb, &LearnConfig {
            tolerance: 0.0,
            ..LearnConfig::default()
        });
        let born = find(&learned, &kb, "born_in", Functionality::TypeI).unwrap();
        assert_eq!(born.constraint.degree, 1);
        assert_eq!(born.support, 4);
        assert_eq!(born.violation_rate, 0.0);

        let lived = find(&learned, &kb, "lived_in", Functionality::TypeI).unwrap();
        assert_eq!(lived.constraint.degree, 2);

        // likes needs 5 partners per key — beyond max_degree.
        assert!(find(&learned, &kb, "likes", Functionality::TypeI).is_none());
    }

    #[test]
    fn tolerance_absorbs_noise() {
        // Twenty clean born_in subjects plus one noisy subject with two
        // cities: zero tolerance learns degree 2; 5% tolerance keeps 1.
        let mut extra = String::new();
        for i in 0..20 {
            extra.push_str(&format!("fact 0.9 moved_to(p{i}:P, c{i}:C)\n"));
        }
        extra.push_str("fact 0.9 moved_to(p0:P, cX:C)\n");
        let kb = kb_text(&extra);

        let strict = learn_constraints(&kb, &LearnConfig { tolerance: 0.0, ..LearnConfig::default() });
        assert_eq!(
            find(&strict, &kb, "moved_to", Functionality::TypeI).unwrap().constraint.degree,
            2
        );
        let tolerant = learn_constraints(&kb, &LearnConfig { tolerance: 0.05, ..LearnConfig::default() });
        let l = find(&tolerant, &kb, "moved_to", Functionality::TypeI).unwrap();
        assert_eq!(l.constraint.degree, 1);
        assert!(l.violation_rate > 0.0 && l.violation_rate <= 0.05);
    }

    #[test]
    fn type2_learned_independently() {
        // capital_of: each country has one capital (Type II), but many
        // cities can claim... make it functional both ways here and check
        // Type II comes out.
        let kb = parse(
            r#"
            fact 0.9 capital_of(Berlin:C, Germany:N)
            fact 0.9 capital_of(Paris:C, France:N)
            fact 0.9 capital_of(Rome:C, Italy:N)
            "#,
        )
        .unwrap()
        .build();
        let learned = learn_constraints(&kb, &LearnConfig::default());
        assert!(find(&learned, &kb, "capital_of", Functionality::TypeII).is_some());
        assert!(find(&learned, &kb, "capital_of", Functionality::TypeI).is_some());
    }

    #[test]
    fn min_support_suppresses_weak_evidence() {
        let kb = parse("fact 0.9 rare(a:P, b:C)\nfact 0.9 rare(c:P, d:C)").unwrap().build();
        let learned = learn_constraints(&kb, &LearnConfig::default());
        assert!(learned.is_empty(), "2 keys < min_support 3");
    }

    #[test]
    fn with_learned_constraints_installs_them() {
        let kb = kb_text("");
        assert!(kb.constraints.is_empty());
        let equipped = with_learned_constraints(&kb, &LearnConfig::default());
        assert!(!equipped.constraints.is_empty());
        assert_eq!(equipped.facts.len(), kb.facts.len());
        assert!(equipped.validate().is_empty());
    }

    #[test]
    fn learned_constraints_work_in_grounding() {
        // End-to-end: learn constraints, then use them to catch an
        // injected ambiguity.
        let mut kb = kb_text("");
        // Inject: subject E born in two cities (ambiguous name).
        let mut b = ProbKb::builder();
        probkb_kb::parser::parse_into(&mut b, &probkb_kb::io::to_text(&kb)).unwrap();
        b.fact(0.9, "born_in", ("E", "P"), ("X", "C"));
        b.fact(0.9, "born_in", ("E", "P"), ("Y", "C"));
        kb = b.build();
        let equipped = with_learned_constraints(&kb, &LearnConfig {
            tolerance: 0.2, // learn degree 1 despite E's noise
            ..LearnConfig::default()
        });
        let violators = crate::ambiguity::detect_violating_entities(&equipped).unwrap();
        let names = crate::ambiguity::describe_violators(&equipped, &violators);
        assert!(
            names.iter().any(|n| n.starts_with("E ")),
            "expected E flagged, got {names:?}"
        );
    }
}
