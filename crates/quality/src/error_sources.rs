//! Error-source taxonomy and classification (§5, Figure 7(b)).
//!
//! The paper samples constraint-violating entities and attributes each
//! violation to a source: detected ambiguity, ambiguous join keys,
//! incorrect rules, incorrect extractions, general types, or synonyms.
//! With synthetic ground truth the attribution is exact instead of
//! sampled.

use std::collections::BTreeMap;
use std::fmt;


use crate::truth::{FactKey, GroundTruth};

/// Where a constraint violation came from (the slices of Figure 7(b)).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub enum ErrorSource {
    /// The entity itself is ambiguous (E3, detected directly).
    DetectedAmbiguity,
    /// A derived fact whose join passed through an ambiguous key (E3→E4).
    AmbiguousJoinKey,
    /// A derived fact produced by an incorrect rule (E2→E4).
    IncorrectRule,
    /// An incorrect extraction (E1).
    IncorrectExtraction,
    /// Violations caused by overly general types (e.g. both New York and
    /// U.S. are Places).
    GeneralType,
    /// Two names for the same real-world entity.
    Synonym,
    /// Could not be attributed (should be rare).
    Unknown,
}

impl ErrorSource {
    /// Figure 7(b)'s label for this slice.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorSource::DetectedAmbiguity => "Ambiguities (detected)",
            ErrorSource::AmbiguousJoinKey => "Ambiguous join keys",
            ErrorSource::IncorrectRule => "Incorrect rules",
            ErrorSource::IncorrectExtraction => "Incorrect extractions",
            ErrorSource::GeneralType => "General types",
            ErrorSource::Synonym => "Synonyms",
            ErrorSource::Unknown => "Unattributed",
        }
    }
}

impl fmt::Display for ErrorSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Evidence gathered about one violating entity.
#[derive(Debug, Clone, Copy, Default)]
pub struct ViolationEvidence {
    /// The entity is a known injected ambiguity.
    pub is_ambiguous: bool,
    /// The entity is a known synonym.
    pub is_synonym: bool,
    /// A violating fact of this entity is an injected bad extraction.
    pub touches_error_extraction: bool,
    /// A violating fact is derivable only via a wrong rule.
    pub derived_via_wrong_rule: bool,
    /// A violating fact came from a join through an ambiguous key.
    pub joined_through_ambiguous: bool,
    /// A violating fact pair differs only in class generality.
    pub general_type: bool,
}

/// Attribute a violation to its most *direct* cause, as the paper's
/// annotators did: the entity's own identity problems first (ambiguity,
/// synonymy), then raw extraction errors, then the propagated families
/// (wrong rules, ambiguous join keys), then typing artifacts.
pub fn classify_violation(evidence: &ViolationEvidence) -> ErrorSource {
    if evidence.is_ambiguous {
        ErrorSource::DetectedAmbiguity
    } else if evidence.is_synonym {
        ErrorSource::Synonym
    } else if evidence.touches_error_extraction {
        ErrorSource::IncorrectExtraction
    } else if evidence.derived_via_wrong_rule {
        ErrorSource::IncorrectRule
    } else if evidence.joined_through_ambiguous {
        ErrorSource::AmbiguousJoinKey
    } else if evidence.general_type {
        ErrorSource::GeneralType
    } else {
        ErrorSource::Unknown
    }
}

/// Gather evidence for a violating entity from ground truth and the facts
/// (by key) that mention it.
pub fn evidence_for(
    entity: i64,
    mentioned_in: &[FactKey],
    truth: &GroundTruth,
) -> ViolationEvidence {
    let mut ev = ViolationEvidence {
        is_ambiguous: truth.ambiguous_entities.contains(&entity),
        is_synonym: truth.synonym_entities.contains(&entity),
        ..ViolationEvidence::default()
    };
    for key in mentioned_in {
        if truth.error_fact_keys.contains(key) {
            ev.touches_error_extraction = true;
        }
        if truth.wrong_rule_products.contains(key) {
            ev.derived_via_wrong_rule = true;
        }
        if truth.ambiguity_products.contains(key) {
            ev.joined_through_ambiguous = true;
        }
    }
    ev
}

/// A Figure 7(b)-style breakdown.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    counts: BTreeMap<ErrorSource, usize>,
}

impl Breakdown {
    /// Record one classified violation.
    pub fn record(&mut self, source: ErrorSource) {
        *self.counts.entry(source).or_insert(0) += 1;
    }

    /// Total violations recorded.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// `(source, count, fraction)` rows, largest first.
    pub fn rows(&self) -> Vec<(ErrorSource, usize, f64)> {
        let total = self.total().max(1) as f64;
        let mut rows: Vec<_> = self
            .counts
            .iter()
            .map(|(&s, &c)| (s, c, c as f64 / total))
            .collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.1));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order() {
        let mut ev = ViolationEvidence {
            is_ambiguous: true,
            derived_via_wrong_rule: true,
            ..Default::default()
        };
        assert_eq!(classify_violation(&ev), ErrorSource::DetectedAmbiguity);
        ev.is_ambiguous = false;
        assert_eq!(classify_violation(&ev), ErrorSource::IncorrectRule);
        ev.derived_via_wrong_rule = false;
        assert_eq!(classify_violation(&ev), ErrorSource::Unknown);
    }

    #[test]
    fn evidence_from_truth_sets() {
        let mut truth = GroundTruth::default();
        truth.ambiguous_entities.insert(7);
        truth.error_fact_keys.insert([1, 8, 0, 9, 0]);
        truth.wrong_rule_products.insert([2, 8, 0, 9, 0]);

        let ev = evidence_for(7, &[], &truth);
        assert!(ev.is_ambiguous);

        let ev = evidence_for(8, &[[1, 8, 0, 9, 0], [2, 8, 0, 9, 0]], &truth);
        assert!(!ev.is_ambiguous);
        assert!(ev.touches_error_extraction);
        assert!(ev.derived_via_wrong_rule);
        // Direct extraction errors outrank propagated wrong-rule products.
        assert_eq!(classify_violation(&ev), ErrorSource::IncorrectExtraction);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut b = Breakdown::default();
        for _ in 0..3 {
            b.record(ErrorSource::DetectedAmbiguity);
        }
        b.record(ErrorSource::IncorrectRule);
        assert_eq!(b.total(), 4);
        let rows = b.rows();
        assert_eq!(rows[0].0, ErrorSource::DetectedAmbiguity);
        assert!((rows.iter().map(|r| r.2).sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels_match_figure_7b() {
        assert_eq!(
            ErrorSource::AmbiguousJoinKey.label(),
            "Ambiguous join keys"
        );
        assert_eq!(ErrorSource::Synonym.to_string(), "Synonyms");
    }
}
