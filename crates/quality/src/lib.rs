//! # probkb-quality
//!
//! Quality control for machine-constructed knowledge bases (§5 of the
//! ProbKB paper): the error sources E1–E4, and the defenses the paper
//! combines to raise inferred-fact precision from 0.14 to 0.75.
//!
//! * [`ambiguity`] — detect ambiguous entities via functional-constraint
//!   violations (§5.2). The enforcement itself (Query 3) lives in
//!   `probkb-core` because it runs inside Algorithm 1.
//! * [`rule_cleaning`] — keep the top-θ rules by statistical significance
//!   (§5.3).
//! * [`truth`] / [`evaluation`] — machine-checkable ground truth and the
//!   precision curves of Figure 7(a).
//! * [`error_sources`] — the violation taxonomy and classification behind
//!   Figure 7(b).

#![warn(missing_docs)]

pub mod ambiguity;
pub mod constraint_learning;
pub mod error_sources;
pub mod evaluation;
pub mod rule_cleaning;
pub mod truth;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::ambiguity::{describe_violators, detect_violating_entities};
    pub use crate::constraint_learning::{
        learn_constraints, with_learned_constraints, LearnConfig, LearnedConstraint,
    };
    pub use crate::error_sources::{
        classify_violation, evidence_for, Breakdown, ErrorSource, ViolationEvidence,
    };
    pub use crate::evaluation::{evaluate, Evaluation, PrecisionPoint};
    pub use crate::rule_cleaning::{clean_rules, surviving_rule_indices};
    pub use crate::truth::{fact_key, Credibility, FactKey, GroundTruth};
}
