//! Property tests: distributed execution must agree with single-node
//! execution on the same logical data, for any placement.

use probkb_support::check::prelude::*;

use probkb_mpp::prelude::*;
use probkb_relational::prelude::*;

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0i64..6, 2), 0..=max)
}

fn to_table(rows: &[Vec<i64>]) -> Table {
    Table::from_rows_unchecked(
        Schema::ints(&["k", "v"]),
        rows.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect(),
    )
}

fn sorted_ints(t: &Table) -> Vec<Vec<i64>> {
    let mut out: Vec<Vec<i64>> = t
        .rows()
        .iter()
        .map(|r| r.iter().map(|v| v.as_int().unwrap()).collect())
        .collect();
    out.sort();
    out
}

proptest! {
    /// Gathering a hash-distributed table returns exactly the original rows.
    #[test]
    fn distribution_roundtrip(rows in arb_rows(60), segs in 1usize..6) {
        let c = Cluster::new(segs, NetworkModel::free());
        let t = to_table(&rows);
        c.create_table("t", t.clone(), DistPolicy::Hash(vec![0])).unwrap();
        let gathered = c.gather_table("t").unwrap();
        prop_assert_eq!(sorted_ints(&gathered), sorted_ints(&t));
    }

    /// A join with both sides redistributed on the key equals the
    /// single-node join, for any initial placement.
    #[test]
    fn redistributed_join_equals_single_node(
        a in arb_rows(40),
        b in arb_rows(40),
        segs in 1usize..5,
    ) {
        // Single-node reference.
        let cat = Catalog::new();
        cat.create("a", to_table(&a)).unwrap();
        cat.create("b", to_table(&b)).unwrap();
        let reference = Executor::new(&cat)
            .execute_table(&Plan::scan("a").hash_join(Plan::scan("b"), vec![0], vec![0]))
            .unwrap();

        // Distributed with awkward placement, fixed by motions.
        let c = Cluster::new(segs, NetworkModel::free());
        c.create_table("a", to_table(&a), DistPolicy::RoundRobin).unwrap();
        c.create_table("b", to_table(&b), DistPolicy::RoundRobin).unwrap();
        let plan = DPlan::scan("a")
            .redistribute(vec![0])
            .hash_join(DPlan::scan("b").redistribute(vec![0]), vec![0], vec![0]);
        let (out, _) = DExecutor::new(&c).execute_gathered(&plan).unwrap();
        prop_assert_eq!(sorted_ints(&out), sorted_ints(&reference));
    }

    /// Broadcasting the right side also matches single-node joins.
    #[test]
    fn broadcast_join_equals_single_node(
        a in arb_rows(40),
        b in arb_rows(20),
        segs in 1usize..5,
    ) {
        let cat = Catalog::new();
        cat.create("a", to_table(&a)).unwrap();
        cat.create("b", to_table(&b)).unwrap();
        let reference = Executor::new(&cat)
            .execute_table(&Plan::scan("a").hash_join(Plan::scan("b"), vec![0], vec![0]))
            .unwrap();

        let c = Cluster::new(segs, NetworkModel::free());
        c.create_table("a", to_table(&a), DistPolicy::RoundRobin).unwrap();
        c.create_table("b", to_table(&b), DistPolicy::RoundRobin).unwrap();
        let plan = DPlan::scan("a")
            .hash_join(DPlan::scan("b").broadcast(), vec![0], vec![0]);
        let (out, _) = DExecutor::new(&c).execute_gathered(&plan).unwrap();
        prop_assert_eq!(sorted_ints(&out), sorted_ints(&reference));
    }

    /// Redistribute never ships more rows than exist, broadcast ships
    /// exactly rows × (segments - 1).
    #[test]
    fn motion_volumes_bounded(rows in arb_rows(50), segs in 2usize..6) {
        let c = Cluster::new(segs, NetworkModel::free());
        let t = to_table(&rows);
        c.create_table("t", t.clone(), DistPolicy::RoundRobin).unwrap();
        let exec = DExecutor::new(&c);
        exec.execute(&DPlan::scan("t").redistribute(vec![0])).unwrap();
        let shipped = c.motions().rows_by_kind(MotionKind::Redistribute);
        prop_assert!(shipped <= t.len());
        c.motions().clear();
        exec.execute(&DPlan::scan("t").broadcast()).unwrap();
        prop_assert_eq!(
            c.motions().rows_by_kind(MotionKind::Broadcast),
            t.len() * (segs - 1)
        );
    }

    /// Two-phase distributed count (local count + gather + re-sum) equals
    /// the plain count.
    #[test]
    fn distributed_count_correct(rows in arb_rows(60), segs in 1usize..5) {
        let c = Cluster::new(segs, NetworkModel::free());
        let t = to_table(&rows);
        c.create_table("t", t.clone(), DistPolicy::Hash(vec![0])).unwrap();
        // Collocated on k, so segment-local group-by is exact.
        let plan = DPlan::scan("t")
            .aggregate(vec![0], vec![AggExpr::new(AggFunc::CountStar, "n")]);
        let (out, _) = DExecutor::new(&c).execute_gathered(&plan).unwrap();
        let total: i64 = out.rows().iter().map(|r| r[1].as_int().unwrap()).sum();
        prop_assert_eq!(total as usize, t.len());
    }
}
