//! Redistributed materialized views (§4.4).
//!
//! ProbKB replicates the facts table `TΠ` under several hash-distribution
//! keys so that every grounding join finds a replica already collocated on
//! its join key. The grounding queries are then rewritten to scan the
//! matching replica, replacing an expensive Broadcast/Redistribute of the
//! large facts table with (at most) a motion of the small rules table.

use probkb_relational::error::{Error, Result};
use probkb_relational::prelude::Table;

use crate::cluster::Cluster;
use crate::distribution::DistPolicy;

/// A set of materialized replicas of one base table, each hash-distributed
/// by a different key.
#[derive(Debug, Clone)]
pub struct RedistributedViews {
    base: String,
    keys: Vec<Vec<usize>>,
}

impl RedistributedViews {
    /// Declare views of `base` with the given distribution key sets.
    /// Nothing is materialized until [`RedistributedViews::refresh`].
    pub fn new(base: impl Into<String>, keys: Vec<Vec<usize>>) -> Self {
        RedistributedViews {
            base: base.into(),
            keys,
        }
    }

    /// The paper's four replicas of `TΠ(I, R, x, C1, y, C2, w)`:
    /// `(R, C1, C2)`, `(R, C1, x, C2)`, `(R, C1, C2, y)`, and
    /// `(R, C1, x, C2, y)`. Column positions follow Definition 4's layout.
    pub fn paper_tpi_views(base: impl Into<String>) -> Self {
        RedistributedViews::new(
            base,
            vec![
                vec![1, 3, 5],       // (R, C1, C2)
                vec![1, 3, 2, 5],    // (R, C1, x, C2)
                vec![1, 3, 5, 4],    // (R, C1, C2, y)
                vec![1, 3, 2, 5, 4], // (R, C1, x, C2, y)
            ],
        )
    }

    /// The base table name.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The view name for a key set.
    pub fn view_name(&self, keys: &[usize]) -> String {
        let suffix: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        format!("{}__d{}", self.base, suffix.join("_"))
    }

    /// All view names, in declaration order.
    pub fn view_names(&self) -> Vec<String> {
        self.keys.iter().map(|k| self.view_name(k)).collect()
    }

    /// The declared `(view name, distribution key)` pairs, in order —
    /// lets a checkpoint import rebuild each view's hash policy.
    pub fn keyed_views(&self) -> Vec<(String, Vec<usize>)> {
        self.keys
            .iter()
            .map(|k| (self.view_name(k), k.clone()))
            .collect()
    }

    /// (Re)materialize every view from the current contents of the base
    /// table. Returns the number of views refreshed.
    pub fn refresh(&self, cluster: &Cluster) -> Result<usize> {
        let base = cluster.gather_table(&self.base)?;
        for keys in &self.keys {
            let name = self.view_name(keys);
            cluster.create_or_replace_table(
                name,
                base.clone(),
                DistPolicy::Hash(keys.clone()),
            );
        }
        Ok(self.keys.len())
    }

    /// Drop all views.
    pub fn drop_all(&self, cluster: &Cluster) {
        for keys in &self.keys {
            cluster.drop_table(&self.view_name(keys));
        }
    }

    /// Pick the replica whose distribution key is a subset of the join key
    /// columns, preferring the *largest* matching key (tightest
    /// collocation). Falls back to an error when no replica matches — the
    /// caller should then redistribute explicitly.
    pub fn pick(&self, join_keys: &[usize]) -> Result<String> {
        let mut best: Option<&Vec<usize>> = None;
        for keys in &self.keys {
            if keys.iter().all(|k| join_keys.contains(k))
                && best.is_none_or(|b| keys.len() > b.len()) {
                    best = Some(keys);
                }
        }
        best.map(|k| self.view_name(k)).ok_or_else(|| {
            Error::InvalidPlan(format!(
                "no replica of {} is collocated on join keys {join_keys:?}",
                self.base
            ))
        })
    }

    /// Like [`RedistributedViews::pick`], but also returns the chosen
    /// replica's distribution key columns (in hash order) so the caller
    /// can redistribute the other join side compatibly.
    pub fn pick_with_keys(&self, join_keys: &[usize]) -> Result<(String, Vec<usize>)> {
        let name = self.pick(join_keys)?;
        let keys = self
            .keys
            .iter()
            .find(|k| self.view_name(k) == name)
            .expect("picked view exists")
            .clone();
        Ok((name, keys))
    }

    /// Refresh views from an already-gathered copy of the base table
    /// (avoids re-gathering when the caller just wrote it).
    pub fn refresh_from(&self, cluster: &Cluster, base: &Table) -> usize {
        for keys in &self.keys {
            cluster.create_or_replace_table(
                self.view_name(keys),
                base.clone(),
                DistPolicy::Hash(keys.clone()),
            );
        }
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkModel;
    use probkb_relational::prelude::{Schema, Value};

    fn cluster_with_base() -> Cluster {
        let c = Cluster::new(4, NetworkModel::free());
        let t = Table::from_rows_unchecked(
            Schema::ints(&["i", "r", "x", "c1", "y", "c2"]),
            (0..40)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Int(i % 3),
                        Value::Int(i % 5),
                        Value::Int(1),
                        Value::Int(i % 7),
                        Value::Int(2),
                    ]
                })
                .collect(),
        );
        c.create_table("T", t, DistPolicy::RoundRobin).unwrap();
        c
    }

    #[test]
    fn refresh_materializes_all_views() {
        let c = cluster_with_base();
        let views = RedistributedViews::new("T", vec![vec![1], vec![1, 2]]);
        assert_eq!(views.refresh(&c).unwrap(), 2);
        assert!(c.contains("T__d1"));
        assert!(c.contains("T__d1_2"));
        assert_eq!(c.row_count("T__d1").unwrap(), 40);
        assert_eq!(
            c.policy_of("T__d1_2").unwrap(),
            DistPolicy::Hash(vec![1, 2])
        );
    }

    #[test]
    fn pick_prefers_tightest_collocated_replica() {
        let views = RedistributedViews::new("T", vec![vec![1], vec![1, 2], vec![3]]);
        assert_eq!(views.pick(&[1, 2, 4]).unwrap(), "T__d1_2");
        assert_eq!(views.pick(&[1]).unwrap(), "T__d1");
        assert!(views.pick(&[4]).is_err());
    }

    #[test]
    fn paper_views_cover_grounding_join_keys() {
        let views = RedistributedViews::paper_tpi_views("TPi");
        // Query 1-1 joins on (R, C1, C2) = columns (1, 3, 5).
        assert_eq!(views.pick(&[1, 3, 5]).unwrap(), "TPi__d1_3_5");
        // Query 1-3's second leg additionally matches entity x (column 2).
        assert_eq!(views.pick(&[1, 3, 5, 2]).unwrap(), "TPi__d1_3_2_5");
        // Full key (R, C1, x, C2, y).
        assert_eq!(views.pick(&[1, 2, 3, 4, 5]).unwrap(), "TPi__d1_3_2_5_4");
    }

    #[test]
    fn drop_all_removes_views() {
        let c = cluster_with_base();
        let views = RedistributedViews::new("T", vec![vec![1]]);
        views.refresh(&c).unwrap();
        views.drop_all(&c);
        assert!(!c.contains("T__d1"));
    }

    #[test]
    fn refresh_from_skips_gather() {
        let c = cluster_with_base();
        let base = c.gather_table("T").unwrap();
        let views = RedistributedViews::new("T", vec![vec![2]]);
        assert_eq!(views.refresh_from(&c, &base), 1);
        assert_eq!(c.row_count("T__d2").unwrap(), 40);
    }
}
