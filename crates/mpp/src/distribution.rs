//! Distribution policies: how a table's rows are placed on segments.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use probkb_relational::prelude::{Row, Table, Value};

/// How a distributed table's rows are assigned to segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistPolicy {
    /// Hash rows by the listed key columns; equal keys land on the same
    /// segment, which is what makes collocated joins possible (§4.4).
    Hash(Vec<usize>),
    /// Every segment holds a full copy (small rule/constraint tables).
    Replicated,
    /// Rows live only on the master (segment 0); used for inputs that a
    /// plan explicitly broadcasts or redistributes.
    MasterOnly,
    /// Spread rows evenly without any key affinity (Greenplum's DISTRIBUTED
    /// RANDOMLY); this is the "no useful collocation" baseline.
    RoundRobin,
}

impl DistPolicy {
    /// Short description for EXPLAIN output.
    pub fn describe(&self) -> String {
        match self {
            DistPolicy::Hash(keys) => format!("DISTRIBUTED BY {keys:?}"),
            DistPolicy::Replicated => "DISTRIBUTED REPLICATED".to_string(),
            DistPolicy::MasterOnly => "MASTER ONLY".to_string(),
            DistPolicy::RoundRobin => "DISTRIBUTED RANDOMLY".to_string(),
        }
    }
}

/// Stable hash of a key tuple, shared by table placement and redistribute
/// motions so that placement and motion always agree.
pub fn hash_key(key: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    for v in key {
        v.hash(&mut h);
    }
    h.finish()
}

/// The segment that owns a row under hash distribution on `keys`.
pub fn segment_for(row: &Row, keys: &[usize], segments: usize) -> usize {
    let key = Table::key_of(row, keys);
    (hash_key(&key) % segments as u64) as usize
}

/// Split a table's rows into per-segment row vectors under a policy.
pub fn place_rows(table: &Table, policy: &DistPolicy, segments: usize) -> Vec<Vec<Row>> {
    let mut parts: Vec<Vec<Row>> = (0..segments).map(|_| Vec::new()).collect();
    match policy {
        DistPolicy::Hash(keys) => {
            for row in table.rows() {
                parts[segment_for(row, keys, segments)].push(row.clone());
            }
        }
        DistPolicy::Replicated => {
            for part in parts.iter_mut() {
                part.extend(table.rows().iter().cloned());
            }
        }
        DistPolicy::MasterOnly => {
            parts[0].extend(table.rows().iter().cloned());
        }
        DistPolicy::RoundRobin => {
            for (i, row) in table.rows().iter().enumerate() {
                parts[i % segments].push(row.clone());
            }
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_relational::prelude::Schema;

    fn table(n: i64) -> Table {
        Table::from_rows_unchecked(
            Schema::ints(&["k", "v"]),
            (0..n).map(|i| vec![Value::Int(i % 7), Value::Int(i)]).collect(),
        )
    }

    #[test]
    fn hash_placement_is_total_and_key_consistent() {
        let t = table(100);
        let parts = place_rows(&t, &DistPolicy::Hash(vec![0]), 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
        // Every row with the same key is on the same segment.
        for (seg, part) in parts.iter().enumerate() {
            for row in part {
                assert_eq!(segment_for(row, &[0], 4), seg);
            }
        }
    }

    #[test]
    fn replicated_copies_everywhere() {
        let t = table(10);
        let parts = place_rows(&t, &DistPolicy::Replicated, 3);
        for part in &parts {
            assert_eq!(part.len(), 10);
        }
    }

    #[test]
    fn master_only_concentrates() {
        let t = table(10);
        let parts = place_rows(&t, &DistPolicy::MasterOnly, 3);
        assert_eq!(parts[0].len(), 10);
        assert!(parts[1].is_empty() && parts[2].is_empty());
    }

    #[test]
    fn round_robin_balances() {
        let t = table(9);
        let parts = place_rows(&t, &DistPolicy::RoundRobin, 3);
        assert!(parts.iter().all(|p| p.len() == 3));
    }

    #[test]
    fn hash_key_is_stable() {
        let k = vec![Value::Int(42), Value::str("x")];
        assert_eq!(hash_key(&k), hash_key(&k.clone()));
    }

    #[test]
    fn describe_mentions_policy() {
        assert!(DistPolicy::Hash(vec![1, 2]).describe().contains("[1, 2]"));
        assert!(DistPolicy::Replicated.describe().contains("REPLICATED"));
    }
}
