//! Distributed EXPLAIN: renders plans and executions with motion nodes and
//! the Figure-4-style per-operator annotations.

use probkb_relational::explain::fmt_duration;

use crate::dplan::DPlan;
use crate::executor::DExecMetrics;

/// Render a distributed plan tree (EXPLAIN).
pub fn explain(plan: &DPlan) -> String {
    let mut out = String::new();
    fn go(plan: &DPlan, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        if depth > 0 {
            out.push_str("-> ");
        }
        out.push_str(&plan.describe());
        out.push('\n');
        for child in plan.children() {
            go(child, depth + 1, out);
        }
    }
    go(plan, 0, &mut out);
    out
}

/// Render distributed execution metrics (EXPLAIN ANALYZE). Motion nodes
/// show rows shipped and simulated interconnect time; compute nodes show
/// the parallel-region wall time and, when more than one segment worker
/// ran, the worker count — matching the annotations in Figure 4.
pub fn explain_analyze(metrics: &DExecMetrics) -> String {
    let mut out = String::new();
    metrics.visit(&mut |node, depth| {
        out.push_str(&"  ".repeat(depth));
        if depth > 0 {
            out.push_str("-> ");
        }
        let workers = if node.workers > 1 {
            format!(", workers={}", node.workers)
        } else {
            String::new()
        };
        if node.net_simulated > std::time::Duration::ZERO || node.rows_shipped > 0 {
            out.push_str(&format!(
                "{}  (rows={}, est={}, shipped={}, compute={}, network={}{})\n",
                node.description,
                node.rows_out,
                node.est_rows,
                node.rows_shipped,
                fmt_duration(node.elapsed),
                fmt_duration(node.net_simulated),
                workers,
            ));
        } else {
            out.push_str(&format!(
                "{}  (rows={}, est={}, time={}{})\n",
                node.description,
                node.rows_out,
                node.est_rows,
                fmt_duration(node.elapsed),
                workers,
            ));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::distribution::DistPolicy;
    use crate::executor::DExecutor;
    use crate::network::NetworkModel;
    use probkb_relational::prelude::{Schema, Table, Value};

    #[test]
    fn explain_shows_motions() {
        let plan = DPlan::scan("T")
            .redistribute(vec![0])
            .hash_join(DPlan::scan("M").broadcast(), vec![0], vec![0]);
        let text = explain(&plan);
        assert!(text.contains("Hash Join"));
        assert!(text.contains("Redistribute Motion by [0]"));
        assert!(text.contains("Broadcast Motion"));
        assert!(text.contains("Seq Scan on T"));
    }

    #[test]
    fn explain_analyze_annotates_motion_rows() {
        let c = Cluster::new(3, NetworkModel::gigabit());
        let t = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            (0..30).map(|i| vec![Value::Int(i)]).collect(),
        );
        c.create_table("t", t, DistPolicy::RoundRobin).unwrap();
        let (_, m) = DExecutor::new(&c)
            .execute(&DPlan::scan("t").broadcast())
            .unwrap();
        let text = explain_analyze(&m);
        assert!(text.contains("Broadcast Motion"));
        assert!(text.contains("shipped=60")); // 30 rows × 2 other segments
        assert!(text.contains("network="));
        // Estimated (logical) rows ride along next to the actuals.
        assert!(text.contains("est=30"), "got: {text}");
    }
}
