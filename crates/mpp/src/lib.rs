//! # probkb-mpp
//!
//! A shared-nothing MPP database simulator — the Greenplum stand-in ProbKB
//! runs its parallel grounding on (§4.4 of the paper).
//!
//! The simulator models the pieces of an MPP system the paper's
//! optimizations interact with:
//!
//! * **Segments** ([`cluster::Cluster`]): `S` shared-nothing workers, each
//!   with a private [`probkb_relational::catalog::Catalog`] slice; compute
//!   operators run on real OS threads, one per segment.
//! * **Distribution policies** ([`distribution::DistPolicy`]): hash,
//!   replicated, master-only, round-robin placement.
//! * **Motions** ([`dplan::DPlan`] `Redistribute` / `Broadcast` /
//!   `Gather`): explicit data-shipping operators with row/byte telemetry
//!   ([`network::MotionLog`]) and a simulated interconnect cost
//!   ([`network::NetworkModel`]).
//! * **Redistributed materialized views** ([`views::RedistributedViews`]):
//!   replicas of the facts table under the four distribution keys §4.4
//!   lists, plus the join-key → replica rewriting rule.
//!
//! ## Example: a collocated join beats a broadcast
//!
//! ```
//! use probkb_mpp::prelude::*;
//! use probkb_relational::prelude::*;
//!
//! let cluster = Cluster::new(4, NetworkModel::gigabit());
//! let facts = Table::from_rows(
//!     Schema::ints(&["rel", "subj"]),
//!     (0..100).map(|i| vec![Value::Int(i % 10), Value::Int(i)]).collect(),
//! ).unwrap();
//! cluster.create_table("facts", facts, DistPolicy::Hash(vec![0])).unwrap();
//!
//! // Self-join on the distribution key: no motion needed at all.
//! let plan = DPlan::scan("facts").hash_join(DPlan::scan("facts"), vec![0], vec![0]);
//! let (out, metrics) = DExecutor::new(&cluster).execute_gathered(&plan).unwrap();
//! assert_eq!(out.len(), 1000);
//! assert_eq!(cluster.motions().total_rows(), 0);
//! assert!(metrics.total_net_simulated().is_zero());
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod distribution;
pub mod dplan;
pub mod executor;
pub mod explain;
pub mod network;
pub mod views;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::cluster::{
        parse_slice_checkpoint_name, slice_checkpoint_name, Cluster, Segment,
    };
    pub use crate::distribution::{hash_key, place_rows, segment_for, DistPolicy};
    pub use crate::dplan::{shipping_cost, DPlan};
    pub use crate::executor::{DExecMetrics, DExecutor};
    pub use crate::explain::{explain as explain_dplan, explain_analyze as explain_analyze_dplan};
    pub use crate::network::{MotionKind, MotionLog, MotionRecord, NetworkModel};
    pub use crate::views::RedistributedViews;
}
