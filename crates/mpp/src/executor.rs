//! The distributed executor: runs [`DPlan`]s across all segments in
//! parallel (a fork-join pool of up to one worker per segment per
//! operator, shared-nothing; cap it with [`DExecutor::with_threads`]),
//! and executes motion nodes with telemetry and simulated network cost.
//!
//! Per-segment batches are `Arc<Table>` so scans are zero-copy snapshots;
//! only operators that genuinely produce new rows (and motions, which
//! really do ship rows) allocate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use probkb_relational::error::{Error, Result};
use probkb_relational::exec::{aggregate_table, hash_join};
use probkb_relational::prelude::{Row, Schema, Table, Value};
use probkb_support::sync::map_indices;

use crate::cluster::Cluster;
use crate::distribution::segment_for;
use crate::dplan::DPlan;
use crate::network::{MotionKind, MotionRecord};

/// Per-segment result slices.
pub type Batches = Vec<Arc<Table>>;

/// Per-node distributed execution statistics.
#[derive(Debug, Clone)]
pub struct DExecMetrics {
    /// Operator description.
    pub description: String,
    /// Total rows produced across segments.
    pub rows_out: usize,
    /// Rows the planner estimated (logical rows: a broadcast's per-segment
    /// copies are not multiplied in). Annotated after execution so
    /// `EXPLAIN ANALYZE` shows `est=` next to `rows=`.
    pub est_rows: usize,
    /// Wall-clock time of the parallel region for this node (children
    /// excluded).
    pub elapsed: Duration,
    /// Simulated interconnect time (motion nodes only; zero elsewhere).
    pub net_simulated: Duration,
    /// Rows shipped across segment boundaries (motion nodes only).
    pub rows_shipped: usize,
    /// Concurrent segment workers used for this node's parallel region
    /// (1 for leaf, motion, and serial nodes).
    pub workers: usize,
    /// Child metrics.
    pub children: Vec<DExecMetrics>,
}

impl DExecMetrics {
    /// Total reported time: measured compute plus simulated network,
    /// including children.
    pub fn total_reported(&self) -> Duration {
        self.elapsed
            + self.net_simulated
            + self
                .children
                .iter()
                .map(|c| c.total_reported())
                .sum::<Duration>()
    }

    /// Total simulated network time, including children.
    pub fn total_net_simulated(&self) -> Duration {
        self.net_simulated
            + self
                .children
                .iter()
                .map(|c| c.total_net_simulated())
                .sum::<Duration>()
    }

    /// Visit every node depth-first.
    pub fn visit(&self, f: &mut dyn FnMut(&DExecMetrics, usize)) {
        fn go(node: &DExecMetrics, depth: usize, f: &mut dyn FnMut(&DExecMetrics, usize)) {
            f(node, depth);
            for c in &node.children {
                go(c, depth + 1, f);
            }
        }
        go(self, 0, f);
    }
}

/// Executes distributed plans on a cluster.
///
/// Per-segment local plans run concurrently on a fork-join pool. By
/// default the pool is one worker per segment (the shared-nothing model:
/// every segment has its own CPU); [`DExecutor::with_threads`] caps the
/// concurrency for hosts with fewer cores than segments. Results are
/// identical at any cap — segments are processed in segment order.
pub struct DExecutor<'a> {
    cluster: &'a Cluster,
    threads: Option<usize>,
}

impl<'a> DExecutor<'a> {
    /// Build an executor over a cluster (one worker per segment).
    pub fn new(cluster: &'a Cluster) -> Self {
        DExecutor {
            cluster,
            threads: None,
        }
    }

    /// Cap the number of concurrent segment workers (0 is clamped to 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The worker cap for `n` segment tasks.
    fn cap(&self, n: usize) -> usize {
        self.threads.unwrap_or(n).min(n).max(1)
    }

    /// Execute, returning per-segment result slices and metrics.
    pub fn execute(&self, plan: &DPlan) -> Result<(Batches, DExecMetrics)> {
        let (parts, mut metrics) = self.eval(plan)?;
        annotate_estimates(&mut metrics, plan, self.cluster);
        Ok((parts, metrics))
    }

    /// Execute and concatenate all segment slices into one table.
    pub fn execute_gathered(&self, plan: &DPlan) -> Result<(Table, DExecMetrics)> {
        let (parts, metrics) = self.execute(plan)?;
        let schema = self.plan_schema(plan)?;
        let mut rows: Vec<Row> = Vec::new();
        for part in parts {
            match Arc::try_unwrap(part) {
                Ok(table) => rows.extend(table.into_rows()),
                Err(shared) => rows.extend(shared.rows().iter().cloned()),
            }
        }
        Ok((Table::from_rows_unchecked(schema, rows), metrics))
    }

    fn plan_schema(&self, plan: &DPlan) -> Result<Schema> {
        let lookup = |name: &str| self.cluster.schema_of(name);
        plan.schema(&lookup)
    }

    fn eval(&self, plan: &DPlan) -> Result<(Batches, DExecMetrics)> {
        let segs = self.cluster.num_segments();
        match plan {
            DPlan::Scan { table } => {
                let start = Instant::now();
                let mut parts = Vec::with_capacity(segs);
                for i in 0..segs {
                    parts.push(self.cluster.slice(i, table)?); // zero-copy snapshot
                }
                Ok(self.done(plan, parts, start.elapsed(), Duration::ZERO, 0, 1, vec![]))
            }
            DPlan::Values { table } => {
                let schema = table.schema().clone();
                let mut parts = vec![Arc::new(table.clone())];
                for _ in 1..segs {
                    parts.push(Arc::new(Table::empty(schema.clone())));
                }
                Ok(self.done(plan, parts, Duration::ZERO, Duration::ZERO, 0, 1, vec![]))
            }
            DPlan::Filter { input, predicate } => {
                let (parts, child) = self.eval(input)?;
                let (out, elapsed, workers) =
                    parallel_map(&parts, self.cap(segs), &|_seg, t: &Table| {
                        let mut rows = Vec::new();
                        for row in t.rows() {
                            if predicate.eval(row)?.is_truthy() {
                                rows.push(row.clone());
                            }
                        }
                        Ok(Table::from_rows_unchecked(t.schema().clone(), rows))
                    })?;
                Ok(self.done(plan, out, elapsed, Duration::ZERO, 0, workers, vec![child]))
            }
            DPlan::Project { input, exprs } => {
                let schema = self.plan_schema(plan)?;
                let (parts, child) = self.eval(input)?;
                let (out, elapsed, workers) =
                    parallel_map(&parts, self.cap(segs), &|_seg, t: &Table| {
                        let mut rows = Vec::with_capacity(t.len());
                        for row in t.rows() {
                            let mut r = Vec::with_capacity(exprs.len());
                            for (e, _) in exprs {
                                r.push(e.eval(row)?);
                            }
                            rows.push(r);
                        }
                        Ok(Table::from_rows_unchecked(schema.clone(), rows))
                    })?;
                Ok(self.done(plan, out, elapsed, Duration::ZERO, 0, workers, vec![child]))
            }
            DPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => {
                if left_keys.len() != right_keys.len() {
                    return Err(Error::InvalidPlan(format!(
                        "join key arity mismatch: {} vs {}",
                        left_keys.len(),
                        right_keys.len()
                    )));
                }
                let (lparts, lm) = self.eval(left)?;
                let (rparts, rm) = self.eval(right)?;
                let (out, elapsed, workers) =
                    parallel_map2(&lparts, &rparts, self.cap(segs), &|_seg, l, r| {
                        Ok(hash_join(l, r, left_keys, right_keys, *kind))
                    })?;
                Ok(self.done(plan, out, elapsed, Duration::ZERO, 0, workers, vec![lm, rm]))
            }
            DPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let schema = self.plan_schema(plan)?;
                let (parts, child) = self.eval(input)?;
                let (out, elapsed, workers) =
                    parallel_map(&parts, self.cap(segs), &|_seg, t: &Table| {
                        aggregate_table(t, group_by, aggs, schema.clone())
                    })?;
                Ok(self.done(plan, out, elapsed, Duration::ZERO, 0, workers, vec![child]))
            }
            DPlan::Distinct { input } => {
                let (parts, child) = self.eval(input)?;
                let (out, elapsed, workers) =
                    parallel_map(&parts, self.cap(segs), &|_seg, t: &Table| {
                        let mut t = t.clone();
                        t.dedup_rows();
                        Ok(t)
                    })?;
                Ok(self.done(plan, out, elapsed, Duration::ZERO, 0, workers, vec![child]))
            }
            DPlan::UnionAll { left, right } => {
                let (lparts, lm) = self.eval(left)?;
                let (rparts, rm) = self.eval(right)?;
                if lparts[0].schema().width() != rparts[0].schema().width() {
                    return Err(Error::InvalidPlan("UNION ALL width mismatch".into()));
                }
                // Concurrent per-segment concatenation (the clone per side
                // replaces the old uniqueness-aware move; segment slices
                // are small and the fork-join hides the copy).
                let (out, elapsed, workers) =
                    parallel_map2(&lparts, &rparts, self.cap(segs), &|_seg, l, r| {
                        let mut t = l.clone();
                        t.extend_from(r.clone());
                        Ok(t)
                    })?;
                Ok(self.done(plan, out, elapsed, Duration::ZERO, 0, workers, vec![lm, rm]))
            }
            DPlan::Redistribute { input, keys } => {
                let (parts, child) = self.eval(input)?;
                let schema = self.plan_schema(input)?;
                let start = Instant::now();
                let mut buckets: Vec<Vec<Row>> = (0..segs).map(|_| Vec::new()).collect();
                let mut rows_shipped = 0usize;
                let mut bytes_shipped = 0usize;
                for (src, part) in parts.into_iter().enumerate() {
                    for row in unshare(part).into_rows() {
                        let dest = segment_for(&row, keys, segs);
                        if dest != src {
                            rows_shipped += 1;
                            bytes_shipped +=
                                row.iter().map(Value::size_bytes).sum::<usize>();
                        }
                        buckets[dest].push(row);
                    }
                }
                let out: Batches = buckets
                    .into_iter()
                    .map(|rows| Arc::new(Table::from_rows_unchecked(schema.clone(), rows)))
                    .collect();
                let simulated = self.record_motion(
                    MotionKind::Redistribute,
                    rows_shipped,
                    bytes_shipped,
                );
                Ok(self.done(plan, out, start.elapsed(), simulated, rows_shipped, 1, vec![child]))
            }
            DPlan::Broadcast { input } => {
                let (parts, child) = self.eval(input)?;
                let schema = self.plan_schema(input)?;
                let start = Instant::now();
                let mut all: Vec<Row> = Vec::new();
                for part in parts {
                    all.extend(part.rows().iter().cloned());
                }
                let copies = segs.saturating_sub(1);
                let rows_shipped = all.len() * copies;
                let bytes_shipped = all
                    .iter()
                    .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
                    .sum::<usize>()
                    * copies;
                // One shared copy per segment models the replicated table;
                // each segment reads the same physical rows here, but the
                // simulated network already charged the real shipping.
                let replica = Arc::new(Table::from_rows_unchecked(schema, all));
                let out: Batches = (0..segs).map(|_| Arc::clone(&replica)).collect();
                let simulated =
                    self.record_motion(MotionKind::Broadcast, rows_shipped, bytes_shipped);
                Ok(self.done(plan, out, start.elapsed(), simulated, rows_shipped, 1, vec![child]))
            }
            DPlan::Gather { input } => {
                let (parts, child) = self.eval(input)?;
                let schema = self.plan_schema(input)?;
                let start = Instant::now();
                let mut rows_shipped = 0usize;
                let mut bytes_shipped = 0usize;
                let mut master: Vec<Row> = Vec::new();
                for (src, part) in parts.into_iter().enumerate() {
                    if src != 0 {
                        rows_shipped += part.len();
                        bytes_shipped += part.size_bytes();
                    }
                    master.extend(unshare(part).into_rows());
                }
                let mut out: Batches =
                    vec![Arc::new(Table::from_rows_unchecked(schema.clone(), master))];
                for _ in 1..segs {
                    out.push(Arc::new(Table::empty(schema.clone())));
                }
                let simulated =
                    self.record_motion(MotionKind::Gather, rows_shipped, bytes_shipped);
                Ok(self.done(plan, out, start.elapsed(), simulated, rows_shipped, 1, vec![child]))
            }
        }
    }

    fn record_motion(&self, kind: MotionKind, rows: usize, bytes: usize) -> Duration {
        let simulated = self.cluster.network().cost(bytes);
        self.cluster.motions().record(MotionRecord {
            kind,
            rows_shipped: rows,
            bytes_shipped: bytes,
            simulated,
        });
        simulated
    }

    #[allow(clippy::too_many_arguments)]
    fn done(
        &self,
        plan: &DPlan,
        parts: Batches,
        elapsed: Duration,
        net_simulated: Duration,
        rows_shipped: usize,
        workers: usize,
        children: Vec<DExecMetrics>,
    ) -> (Batches, DExecMetrics) {
        let rows_out = parts.iter().map(|t| t.len()).sum();
        let metrics = DExecMetrics {
            description: plan.describe(),
            rows_out,
            est_rows: 0, // annotated by `execute` from the plan estimates
            elapsed,
            net_simulated,
            rows_shipped,
            workers,
            children,
        };
        (parts, metrics)
    }
}

/// Fill `est_rows` from the cardinality estimator over each node's logical
/// shape (motions are transparent: they estimate as their input). The
/// metrics tree mirrors the plan tree node for node.
fn annotate_estimates(metrics: &mut DExecMetrics, plan: &DPlan, cluster: &Cluster) {
    if let Ok(est) = probkb_relational::optimizer::estimate(&plan.shape(), cluster) {
        metrics.est_rows = est.rows.round() as usize;
    }
    for (m, p) in metrics.children.iter_mut().zip(plan.children()) {
        annotate_estimates(m, p, cluster);
    }
}

/// Take ownership of a batch, cloning only when it is still shared (e.g. a
/// scan snapshot that the catalog also holds).
fn unshare(part: Arc<Table>) -> Table {
    Arc::try_unwrap(part).unwrap_or_else(|shared| (*shared).clone())
}

/// Run `f` on each segment slice concurrently, at most `cap` workers at a
/// time (segment order preserved). Returns the outputs, the wall-clock
/// time of the parallel region, and the worker count used.
fn parallel_map(
    parts: &[Arc<Table>],
    cap: usize,
    f: &(dyn Fn(usize, &Table) -> Result<Table> + Sync),
) -> Result<(Batches, Duration, usize)> {
    let start = Instant::now();
    let workers = cap.min(parts.len()).max(1);
    let results = map_indices(parts.len(), workers, |i| f(i, &parts[i]));
    let tables = results
        .into_iter()
        .map(|r| r.map(Arc::new))
        .collect::<Result<Batches>>()?;
    Ok((tables, start.elapsed(), workers))
}

/// Binary variant of [`parallel_map`] for joins and unions.
fn parallel_map2(
    left: &[Arc<Table>],
    right: &[Arc<Table>],
    cap: usize,
    f: &(dyn Fn(usize, &Table, &Table) -> Result<Table> + Sync),
) -> Result<(Batches, Duration, usize)> {
    let start = Instant::now();
    let workers = cap.min(left.len()).max(1);
    let results = map_indices(left.len(), workers, |i| f(i, &left[i], &right[i]));
    let tables = results
        .into_iter()
        .map(|r| r.map(Arc::new))
        .collect::<Result<Batches>>()?;
    Ok((tables, start.elapsed(), workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistPolicy;
    use crate::network::NetworkModel;
    use probkb_relational::expr::Expr;
    use probkb_relational::plan::{AggExpr, AggFunc};
    use probkb_relational::prelude::Schema;

    fn keyed(n: i64, modk: i64) -> Table {
        Table::from_rows_unchecked(
            Schema::ints(&["k", "v"]),
            (0..n).map(|i| vec![Value::Int(i % modk), Value::Int(i)]).collect(),
        )
    }

    fn cluster() -> Cluster {
        Cluster::new(4, NetworkModel::free())
    }

    #[test]
    fn scan_returns_slices_summing_to_table() {
        let c = cluster();
        c.create_table("t", keyed(40, 8), DistPolicy::Hash(vec![0])).unwrap();
        let (parts, m) = DExecutor::new(&c).execute(&DPlan::scan("t")).unwrap();
        assert_eq!(parts.iter().map(|t| t.len()).sum::<usize>(), 40);
        assert_eq!(m.rows_out, 40);
    }

    #[test]
    fn collocated_self_join_matches_single_node() {
        let c = cluster();
        c.create_table("t", keyed(60, 6), DistPolicy::Hash(vec![0])).unwrap();
        let plan = DPlan::scan("t").hash_join(DPlan::scan("t"), vec![0], vec![0]);
        let (out, _) = DExecutor::new(&c).execute_gathered(&plan).unwrap();
        // Each key 0..6 appears 10 times → 100 pairs per key, 600 total.
        assert_eq!(out.len(), 600);
    }

    #[test]
    fn non_collocated_join_fixed_by_redistribute() {
        let c = cluster();
        c.create_table("a", keyed(30, 5), DistPolicy::RoundRobin).unwrap();
        c.create_table("b", keyed(30, 5), DistPolicy::RoundRobin).unwrap();
        let bad = DPlan::scan("a").hash_join(DPlan::scan("b"), vec![0], vec![0]);
        let (bad_out, _) = DExecutor::new(&c).execute_gathered(&bad).unwrap();
        let good = DPlan::scan("a")
            .redistribute(vec![0])
            .hash_join(DPlan::scan("b").redistribute(vec![0]), vec![0], vec![0]);
        let (good_out, gm) = DExecutor::new(&c).execute_gathered(&good).unwrap();
        assert_eq!(good_out.len(), 180); // 6×6 per key × 5 keys
        assert!(bad_out.len() < good_out.len());
        assert!(gm.total_net_simulated() == Duration::ZERO); // free network
    }

    #[test]
    fn broadcast_replicates_small_side() {
        let c = cluster();
        c.create_table("big", keyed(100, 10), DistPolicy::RoundRobin).unwrap();
        c.create_table("small", keyed(10, 10), DistPolicy::MasterOnly).unwrap();
        let plan = DPlan::scan("big")
            .hash_join(DPlan::scan("small").broadcast(), vec![0], vec![0]);
        let (out, _) = DExecutor::new(&c).execute_gathered(&plan).unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(c.motions().rows_by_kind(MotionKind::Broadcast), 30); // 10 rows × 3 other segments
    }

    #[test]
    fn broadcast_ships_more_than_redistribute() {
        let c = Cluster::new(8, NetworkModel::gigabit());
        c.create_table("t", keyed(1000, 50), DistPolicy::RoundRobin).unwrap();
        let exec = DExecutor::new(&c);
        exec.execute(&DPlan::scan("t").redistribute(vec![0])).unwrap();
        let redist_rows = c.motions().rows_by_kind(MotionKind::Redistribute);
        exec.execute(&DPlan::scan("t").broadcast()).unwrap();
        let bcast_rows = c.motions().rows_by_kind(MotionKind::Broadcast);
        assert!(
            bcast_rows > 3 * redist_rows,
            "broadcast {bcast_rows} should dwarf redistribute {redist_rows}"
        );
        assert!(c.motions().total_simulated() > Duration::ZERO);
    }

    #[test]
    fn gather_concentrates_on_master() {
        let c = cluster();
        c.create_table("t", keyed(20, 4), DistPolicy::RoundRobin).unwrap();
        let (parts, m) = DExecutor::new(&c).execute(&DPlan::scan("t").gather()).unwrap();
        assert_eq!(parts[0].len(), 20);
        assert!(parts[1..].iter().all(|p| p.is_empty()));
        assert_eq!(m.rows_shipped, 15);
    }

    #[test]
    fn filter_project_aggregate_distributed() {
        let c = cluster();
        c.create_table("t", keyed(100, 10), DistPolicy::Hash(vec![0])).unwrap();
        let plan = DPlan::scan("t")
            .filter(Expr::col(0).lt(Expr::lit(5i64)))
            .project(vec![(Expr::col(0), "k")])
            .aggregate(vec![0], vec![AggExpr::new(AggFunc::CountStar, "n")]);
        let (out, _) = DExecutor::new(&c).execute_gathered(&plan).unwrap();
        assert_eq!(out.len(), 5);
        for row in out.rows() {
            assert_eq!(row[1], Value::Int(10));
        }
    }

    #[test]
    fn values_lives_on_master_until_broadcast() {
        let c = cluster();
        let inline = keyed(5, 5);
        let (parts, _) = DExecutor::new(&c).execute(&DPlan::values(inline.clone())).unwrap();
        assert_eq!(parts[0].len(), 5);
        assert!(parts[1].is_empty());
        let (parts, _) = DExecutor::new(&c)
            .execute(&DPlan::values(inline).broadcast())
            .unwrap();
        assert!(parts.iter().all(|p| p.len() == 5));
    }

    #[test]
    fn union_all_segmentwise() {
        let c = cluster();
        c.create_table("t", keyed(12, 3), DistPolicy::Hash(vec![0])).unwrap();
        let plan = DPlan::scan("t").union_all(DPlan::scan("t"));
        let (out, _) = DExecutor::new(&c).execute_gathered(&plan).unwrap();
        assert_eq!(out.len(), 24);
    }

    #[test]
    fn metrics_totals_include_children() {
        let c = cluster();
        c.create_table("t", keyed(10, 2), DistPolicy::RoundRobin).unwrap();
        let plan = DPlan::scan("t").redistribute(vec![0]).distinct();
        let (_, m) = DExecutor::new(&c).execute(&plan).unwrap();
        assert!(m.total_reported() >= m.elapsed);
        let mut nodes = 0;
        m.visit(&mut |_, _| nodes += 1);
        assert_eq!(nodes, 3);
    }

    #[test]
    fn thread_cap_does_not_change_results() {
        let c = cluster();
        c.create_table("t", keyed(120, 12), DistPolicy::Hash(vec![0])).unwrap();
        let plan = DPlan::scan("t")
            .hash_join(DPlan::scan("t"), vec![0], vec![0])
            .aggregate(vec![0], vec![AggExpr::new(AggFunc::CountStar, "n")])
            .gather();
        let (full, fm) = DExecutor::new(&c).execute_gathered(&plan).unwrap();
        for cap in [1usize, 2, 8] {
            let (capped, cm) = DExecutor::new(&c)
                .with_threads(cap)
                .execute_gathered(&plan)
                .unwrap();
            assert_eq!(format!("{full:?}"), format!("{capped:?}"), "cap={cap}");
            // 4 segments: the reported worker count respects the cap.
            let mut max_workers = 0;
            cm.visit(&mut |n, _| max_workers = max_workers.max(n.workers));
            assert!(max_workers <= cap.min(4), "cap={cap}");
        }
        let mut max_workers = 0;
        fm.visit(&mut |n, _| max_workers = max_workers.max(n.workers));
        assert_eq!(max_workers, 4, "uncapped: one worker per segment");
    }

    #[test]
    fn scan_does_not_deep_copy() {
        let c = cluster();
        c.create_table("t", keyed(100, 10), DistPolicy::Hash(vec![0])).unwrap();
        let (parts, _) = DExecutor::new(&c).execute(&DPlan::scan("t")).unwrap();
        // The scan batch and the catalog snapshot are the same allocation.
        let snapshot = c.slice(0, "t").unwrap();
        assert!(Arc::ptr_eq(&parts[0], &snapshot));
    }
}
