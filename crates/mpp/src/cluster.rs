//! The shared-nothing cluster: a master plus `S` segments, each with its
//! own catalog slice.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use probkb_support::sync::RwLock;

use probkb_relational::catalog::Catalog;
use probkb_relational::error::{Error, Result};
use probkb_relational::optimizer::StatsSource;
use probkb_relational::prelude::{Row, Schema, Table, TableStats, Value};

use crate::distribution::{place_rows, DistPolicy};
use crate::network::{MotionLog, NetworkModel};

/// One shared-nothing segment: an id and a private catalog.
#[derive(Debug)]
pub struct Segment {
    /// Segment id (0 is also the master).
    pub id: usize,
    /// The segment's private table slices.
    pub catalog: Catalog,
}

/// The canonical checkpoint name for one segment's slice of a
/// distributed table: `"{table}@seg{segment:04}"`. Checkpoint exports
/// use this so per-segment state restores verbatim — placement included
/// — instead of being re-hashed on import.
pub fn slice_checkpoint_name(table: &str, segment: usize) -> String {
    format!("{table}@seg{segment:04}")
}

/// Parse a [`slice_checkpoint_name`] back into `(table, segment)`.
pub fn parse_slice_checkpoint_name(name: &str) -> Option<(&str, usize)> {
    let (table, seg) = name.rsplit_once("@seg")?;
    if table.is_empty() || seg.len() != 4 {
        return None;
    }
    Some((table, seg.parse().ok()?))
}

/// A simulated MPP cluster.
#[derive(Debug)]
pub struct Cluster {
    segments: Vec<Segment>,
    network: NetworkModel,
    motions: MotionLog,
    policies: RwLock<HashMap<String, DistPolicy>>,
    schemas: RwLock<HashMap<String, Schema>>,
}

impl Cluster {
    /// Create a cluster with `segments` segments and an interconnect model.
    pub fn new(segments: usize, network: NetworkModel) -> Self {
        assert!(segments > 0, "cluster needs at least one segment");
        Cluster {
            segments: (0..segments)
                .map(|id| Segment {
                    id,
                    catalog: Catalog::new(),
                })
                .collect(),
            network,
            motions: MotionLog::new(),
            policies: RwLock::new(HashMap::new()),
            schemas: RwLock::new(HashMap::new()),
        }
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The interconnect model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Motion telemetry accumulated by executions on this cluster.
    pub fn motions(&self) -> &MotionLog {
        &self.motions
    }

    /// The segments (read access for the executor).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Create a distributed table from a master-side table.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        table: Table,
        policy: DistPolicy,
    ) -> Result<()> {
        let name = name.into();
        if self.policies.read().contains_key(&name) {
            return Err(Error::AlreadyExists(name));
        }
        let schema = table.schema().clone();
        let parts = place_rows(&table, &policy, self.num_segments());
        for (segment, rows) in self.segments.iter().zip(parts) {
            segment
                .catalog
                .create(&name, Table::from_rows_unchecked(schema.clone(), rows))?;
        }
        self.policies.write().insert(name.clone(), policy);
        self.schemas.write().insert(name, schema);
        Ok(())
    }

    /// Create or overwrite a distributed table.
    pub fn create_or_replace_table(&self, name: impl Into<String>, table: Table, policy: DistPolicy) {
        let name = name.into();
        self.drop_table(&name);
        self.create_table(name, table, policy)
            .expect("fresh name cannot collide");
    }

    /// Restore a distributed table from explicit per-segment slices —
    /// the inverse of gathering every [`Cluster::slice`]. Unlike
    /// [`Cluster::create_or_replace_table`], rows are NOT re-placed
    /// through the policy: each slice lands verbatim on its segment, so
    /// a checkpointed table resumes with byte-identical placement and
    /// row order. The caller must supply exactly one slice per segment.
    pub fn create_or_replace_from_slices(
        &self,
        name: impl Into<String>,
        policy: DistPolicy,
        slices: Vec<Table>,
    ) -> Result<()> {
        let name = name.into();
        if slices.len() != self.num_segments() {
            return Err(Error::InvalidPlan(format!(
                "table {name}: {} slices for {} segments",
                slices.len(),
                self.num_segments()
            )));
        }
        let schema = slices[0].schema().clone();
        self.drop_table(&name);
        for (segment, slice) in self.segments.iter().zip(slices) {
            segment.catalog.create(&name, slice)?;
        }
        self.policies.write().insert(name.clone(), policy);
        self.schemas.write().insert(name, schema);
        Ok(())
    }

    /// Drop a distributed table everywhere; true if it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        let existed = self.policies.write().remove(name).is_some();
        self.schemas.write().remove(name);
        for segment in &self.segments {
            segment.catalog.drop_table(name);
        }
        existed
    }

    /// True if a distributed table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.policies.read().contains_key(name)
    }

    /// Names of all distributed tables, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.policies.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// A table's distribution policy.
    pub fn policy_of(&self, name: &str) -> Result<DistPolicy> {
        self.policies
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// A table's schema.
    pub fn schema_of(&self, name: &str) -> Result<Schema> {
        self.schemas
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Per-segment snapshot of a table slice.
    pub fn slice(&self, segment: usize, name: &str) -> Result<Arc<Table>> {
        self.segments[segment].catalog.get(name)
    }

    /// Pull every slice to the master, reassembling the logical table.
    /// Replicated tables return a single copy.
    pub fn gather_table(&self, name: &str) -> Result<Table> {
        let schema = self.schema_of(name)?;
        let policy = self.policy_of(name)?;
        if policy == DistPolicy::Replicated {
            return Ok((*self.slice(0, name)?).clone());
        }
        let mut rows: Vec<Row> = Vec::new();
        for segment in &self.segments {
            rows.extend(segment.catalog.get(name)?.rows().iter().cloned());
        }
        Ok(Table::from_rows_unchecked(schema, rows))
    }

    /// Logical row count (replicated tables count one copy).
    pub fn row_count(&self, name: &str) -> Result<usize> {
        if self.policy_of(name)? == DistPolicy::Replicated {
            return Ok(self.slice(0, name)?.len());
        }
        let mut n = 0;
        for segment in &self.segments {
            n += segment.catalog.row_count(name)?;
        }
        Ok(n)
    }

    /// Insert rows, routing each to its segment per the table's policy.
    pub fn insert_rows(&self, name: &str, rows: Vec<Row>) -> Result<usize> {
        let policy = self.policy_of(name)?;
        let n = rows.len();
        let staged =
            place_rows(
                &Table::from_rows_unchecked(self.schema_of(name)?, rows),
                &policy,
                self.num_segments(),
            );
        for (segment, part) in self.segments.iter().zip(staged) {
            segment.catalog.insert_rows_unchecked(name, part)?;
        }
        Ok(n)
    }

    /// Delete rows whose key over `cols` is in `keys`, on every segment.
    pub fn delete_matching(
        &self,
        name: &str,
        cols: &[usize],
        keys: &HashSet<Vec<Value>>,
    ) -> Result<usize> {
        let mut removed = 0;
        for segment in &self.segments {
            removed += segment.catalog.delete_matching(name, cols, keys)?;
        }
        if self.policy_of(name)? == DistPolicy::Replicated {
            removed /= self.num_segments().max(1);
        }
        Ok(removed)
    }

    /// Deduplicate a table over `cols`.
    ///
    /// When the table is hash-distributed by a subset of `cols` (or
    /// replicated), duplicates are collocated and dedup runs segment-local.
    /// Otherwise the table is gathered, deduplicated, and redistributed —
    /// exactly the data-shipping penalty §4.4 is about avoiding.
    pub fn dedup(&self, name: &str, cols: &[usize]) -> Result<usize> {
        let policy = self.policy_of(name)?;
        let local_ok = match &policy {
            DistPolicy::Replicated => true,
            DistPolicy::Hash(keys) => keys.iter().all(|k| cols.contains(k)),
            DistPolicy::MasterOnly => true,
            DistPolicy::RoundRobin => false,
        };
        if local_ok {
            let mut removed = 0;
            for segment in &self.segments {
                removed += segment.catalog.dedup_table(name, cols)?;
            }
            if policy == DistPolicy::Replicated {
                removed /= self.num_segments().max(1);
            }
            return Ok(removed);
        }
        let mut gathered = self.gather_table(name)?;
        let before = gathered.len();
        gathered.dedup_by_cols(cols);
        let removed = before - gathered.len();
        self.create_or_replace_table(name, gathered, policy);
        Ok(removed)
    }

    /// Cluster-wide planner statistics for a distributed table: the
    /// per-segment statistics merged into one logical view (replicated
    /// tables count a single copy). `None` for unknown tables.
    pub fn stats_of(&self, name: &str) -> Option<Arc<TableStats>> {
        if self.policy_of(name).ok()? == DistPolicy::Replicated {
            return self.segments[0].catalog.stats_of(name);
        }
        let mut merged = TableStats::default();
        for segment in &self.segments {
            let slice = segment.catalog.stats_of(name)?;
            merged.merge(&slice);
        }
        Some(Arc::new(merged))
    }

    /// The skew of a table: max segment slice / mean slice size. 1.0 is a
    /// perfect balance; large values mean a hot segment throttles
    /// parallelism.
    pub fn skew(&self, name: &str) -> Result<f64> {
        let mut sizes = Vec::with_capacity(self.num_segments());
        for segment in &self.segments {
            sizes.push(segment.catalog.row_count(name)? as f64);
        }
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        if mean == 0.0 {
            return Ok(1.0);
        }
        Ok(max / mean)
    }
}

impl StatsSource for Cluster {
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        self.stats_of(name)
    }

    fn table_schema(&self, name: &str) -> Result<Schema> {
        self.schema_of(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::segment_for;

    fn keyed_table(n: i64) -> Table {
        Table::from_rows_unchecked(
            Schema::ints(&["k", "v"]),
            (0..n).map(|i| vec![Value::Int(i % 5), Value::Int(i)]).collect(),
        )
    }

    fn cluster() -> Cluster {
        Cluster::new(4, NetworkModel::free())
    }

    #[test]
    fn create_and_gather_roundtrip() {
        let c = cluster();
        c.create_table("t", keyed_table(50), DistPolicy::Hash(vec![0]))
            .unwrap();
        assert_eq!(c.row_count("t").unwrap(), 50);
        let mut gathered = c.gather_table("t").unwrap();
        gathered.sort_by_cols(&[1]);
        assert_eq!(gathered.len(), 50);
        assert_eq!(gathered.rows()[0][1], Value::Int(0));
    }

    #[test]
    fn duplicate_create_rejected_and_drop_works() {
        let c = cluster();
        c.create_table("t", keyed_table(5), DistPolicy::RoundRobin)
            .unwrap();
        assert!(c.create_table("t", keyed_table(5), DistPolicy::RoundRobin).is_err());
        assert!(c.drop_table("t"));
        assert!(!c.contains("t"));
        assert!(!c.drop_table("t"));
    }

    #[test]
    fn replicated_row_count_counts_once() {
        let c = cluster();
        c.create_table("r", keyed_table(10), DistPolicy::Replicated)
            .unwrap();
        assert_eq!(c.row_count("r").unwrap(), 10);
        assert_eq!(c.gather_table("r").unwrap().len(), 10);
    }

    #[test]
    fn insert_routes_by_policy() {
        let c = cluster();
        c.create_table("t", keyed_table(0), DistPolicy::Hash(vec![0]))
            .unwrap();
        c.insert_rows("t", vec![vec![Value::Int(3), Value::Int(99)]])
            .unwrap();
        assert_eq!(c.row_count("t").unwrap(), 1);
        // The row landed on the segment its key hashes to.
        let expected_seg = segment_for(&vec![Value::Int(3), Value::Int(99)], &[0], 4);
        assert_eq!(c.slice(expected_seg, "t").unwrap().len(), 1);
    }

    #[test]
    fn delete_matching_spans_segments() {
        let c = cluster();
        c.create_table("t", keyed_table(50), DistPolicy::Hash(vec![0]))
            .unwrap();
        let mut keys = HashSet::new();
        keys.insert(vec![Value::Int(2)]);
        let removed = c.delete_matching("t", &[0], &keys).unwrap();
        assert_eq!(removed, 10);
        assert_eq!(c.row_count("t").unwrap(), 40);
    }

    #[test]
    fn dedup_local_when_collocated() {
        let c = cluster();
        let mut t = keyed_table(20);
        let dup = t.rows()[0].clone();
        t.push_unchecked(dup);
        c.create_table("t", t, DistPolicy::Hash(vec![0])).unwrap();
        let removed = c.dedup("t", &[0, 1]).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(c.row_count("t").unwrap(), 20);
    }

    #[test]
    fn dedup_via_gather_when_not_collocated() {
        let c = cluster();
        let mut t = keyed_table(8);
        let dup = t.rows()[3].clone();
        t.push_unchecked(dup);
        // RoundRobin puts duplicates on different segments.
        c.create_table("t", t, DistPolicy::RoundRobin).unwrap();
        let removed = c.dedup("t", &[0, 1]).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(c.row_count("t").unwrap(), 8);
        // Policy preserved.
        assert_eq!(c.policy_of("t").unwrap(), DistPolicy::RoundRobin);
    }

    #[test]
    fn skew_reports_balance() {
        let c = cluster();
        c.create_table("t", keyed_table(1000), DistPolicy::RoundRobin)
            .unwrap();
        let s = c.skew("t").unwrap();
        assert!((0.9..1.1).contains(&s), "round robin should balance, got {s}");
        // A constant key piles everything on one segment.
        let skewed = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            (0..100).map(|_| vec![Value::Int(7)]).collect(),
        );
        c.create_table("s", skewed, DistPolicy::Hash(vec![0])).unwrap();
        assert!(c.skew("s").unwrap() > 3.0);
    }

    #[test]
    fn unknown_table_errors() {
        let c = cluster();
        assert!(c.gather_table("nope").is_err());
        assert!(c.policy_of("nope").is_err());
        assert!(c.row_count("nope").is_err());
    }

    #[test]
    fn stats_merge_segment_slices_into_logical_view() {
        let c = cluster();
        c.create_table("t", keyed_table(50), DistPolicy::Hash(vec![0]))
            .unwrap();
        let s = c.stats_of("t").unwrap();
        assert_eq!(s.row_count(), 50);
        assert_eq!(s.column(0).unwrap().distinct_count(), 5);
        assert_eq!(s.column(1).unwrap().distinct_count(), 50);
        // Replicated tables count a single copy, like row_count.
        c.create_table("r", keyed_table(10), DistPolicy::Replicated)
            .unwrap();
        assert_eq!(c.stats_of("r").unwrap().row_count(), 10);
        assert!(c.stats_of("nope").is_none());
    }
}
