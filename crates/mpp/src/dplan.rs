//! Distributed query plans with explicit motion nodes.
//!
//! Unlike Greenplum, the simulator does not auto-plan motions: the caller
//! (ProbKB's query rewriter, §4.4) places `Redistribute`/`Broadcast`
//! explicitly, which is precisely the optimization the paper studies —
//! rewriting the grounding joins to run against replicas whose distribution
//! keys already match the join keys, so fewer/cheaper motions are needed.

use probkb_relational::expr::Expr;
use probkb_relational::optimizer::{estimate, StatsSource};
use probkb_relational::plan::{AggExpr, JoinKind, Plan};
use probkb_relational::prelude::{Result, Schema, Table};

/// Estimated interconnect bytes a distributed plan ships, from the
/// cardinality estimator: every motion node pays its input's estimated
/// rows × row width × 8 bytes per value, and a broadcast pays that once
/// per *receiving* segment. Collocated plans (no motions) cost zero, so
/// a planner comparing candidate motion placements prefers them — the
/// §4.4 rewrite in cost-model form. Estimation failures (unknown tables)
/// propagate so callers can fall back to a default placement.
pub fn shipping_cost(plan: &DPlan, src: &dyn StatsSource, segments: usize) -> Result<f64> {
    let mut total = 0.0;
    for child in plan.children() {
        total += shipping_cost(child, src, segments)?;
    }
    let shipped = |input: &DPlan| -> Result<f64> {
        let est = estimate(&input.shape(), src)?;
        Ok(est.rows * est.width() as f64 * 8.0)
    };
    total += match plan {
        DPlan::Redistribute { input, .. } | DPlan::Gather { input } => shipped(input)?,
        DPlan::Broadcast { input } => shipped(input)? * segments.saturating_sub(1) as f64,
        _ => 0.0,
    };
    Ok(total)
}

/// A distributed plan node. Compute nodes run independently on every
/// segment; motion nodes move rows across segments.
#[derive(Debug, Clone)]
pub enum DPlan {
    /// Scan a distributed table's local slice on each segment.
    Scan {
        /// Distributed table name.
        table: String,
    },
    /// An inline table materialized on the master (segment 0) only.
    Values {
        /// The inlined rows.
        table: Table,
    },
    /// Segment-local filter.
    Filter {
        /// Input plan.
        input: Box<DPlan>,
        /// Row predicate.
        predicate: Expr,
    },
    /// Segment-local projection.
    Project {
        /// Input plan.
        input: Box<DPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Segment-local hash join. Only correct when both inputs are
    /// collocated on the join keys — that is the invariant the motion
    /// nodes (or the table distribution policies) must establish.
    HashJoin {
        /// Left input.
        left: Box<DPlan>,
        /// Right input.
        right: Box<DPlan>,
        /// Left key columns.
        left_keys: Vec<usize>,
        /// Right key columns.
        right_keys: Vec<usize>,
        /// Join flavour.
        kind: JoinKind,
    },
    /// Segment-local grouped aggregation (caller ensures collocation on the
    /// grouping key, or gathers first).
    Aggregate {
        /// Input plan.
        input: Box<DPlan>,
        /// Grouping key columns.
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Segment-local duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<DPlan>,
    },
    /// Bag union, segment-wise.
    UnionAll {
        /// Left input.
        left: Box<DPlan>,
        /// Right input.
        right: Box<DPlan>,
    },
    /// Hash-redistribute rows so equal keys land on the same segment.
    Redistribute {
        /// Input plan.
        input: Box<DPlan>,
        /// Key columns of the *input's* output schema.
        keys: Vec<usize>,
    },
    /// Replicate the whole input to every segment.
    Broadcast {
        /// Input plan.
        input: Box<DPlan>,
    },
    /// Collect all rows on the master (segment 0).
    Gather {
        /// Input plan.
        input: Box<DPlan>,
    },
}

impl DPlan {
    /// Scan a distributed table.
    pub fn scan(table: impl Into<String>) -> DPlan {
        DPlan::Scan {
            table: table.into(),
        }
    }

    /// Inline a master-only table.
    pub fn values(table: Table) -> DPlan {
        DPlan::Values { table }
    }

    /// Apply a filter.
    pub fn filter(self, predicate: Expr) -> DPlan {
        DPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Apply a projection.
    pub fn project(self, exprs: Vec<(Expr, &str)>) -> DPlan {
        DPlan::Project {
            input: Box::new(self),
            exprs: exprs
                .into_iter()
                .map(|(e, n)| (e, n.to_string()))
                .collect(),
        }
    }

    /// Inner collocated hash join.
    pub fn hash_join(self, right: DPlan, left_keys: Vec<usize>, right_keys: Vec<usize>) -> DPlan {
        self.join(right, left_keys, right_keys, JoinKind::Inner)
    }

    /// Collocated hash join of any kind.
    pub fn join(
        self,
        right: DPlan,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        kind: JoinKind,
    ) -> DPlan {
        DPlan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
            kind,
        }
    }

    /// Segment-local aggregation.
    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<AggExpr>) -> DPlan {
        DPlan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    /// Segment-local duplicate elimination.
    pub fn distinct(self) -> DPlan {
        DPlan::Distinct {
            input: Box::new(self),
        }
    }

    /// Bag union.
    pub fn union_all(self, right: DPlan) -> DPlan {
        DPlan::UnionAll {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Redistribute by key columns.
    pub fn redistribute(self, keys: Vec<usize>) -> DPlan {
        DPlan::Redistribute {
            input: Box::new(self),
            keys,
        }
    }

    /// Broadcast to all segments.
    pub fn broadcast(self) -> DPlan {
        DPlan::Broadcast {
            input: Box::new(self),
        }
    }

    /// Gather onto the master.
    pub fn gather(self) -> DPlan {
        DPlan::Gather {
            input: Box::new(self),
        }
    }

    /// The equivalent single-node plan *shape*, used for schema inference:
    /// motions are transparent to the logical schema.
    pub fn shape(&self) -> Plan {
        match self {
            DPlan::Scan { table } => Plan::scan(table.clone()),
            DPlan::Values { table } => Plan::values(table.clone()),
            DPlan::Filter { input, predicate } => input.shape().filter(predicate.clone()),
            DPlan::Project { input, exprs } => Plan::Project {
                input: Box::new(input.shape()),
                exprs: exprs.clone(),
            },
            DPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => left.shape().join(
                right.shape(),
                left_keys.clone(),
                right_keys.clone(),
                *kind,
            ),
            DPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => input.shape().aggregate(group_by.clone(), aggs.clone()),
            DPlan::Distinct { input } => input.shape().distinct(),
            DPlan::UnionAll { left, right } => left.shape().union_all(right.shape()),
            DPlan::Redistribute { input, .. }
            | DPlan::Broadcast { input }
            | DPlan::Gather { input } => input.shape(),
        }
    }

    /// Output schema given a scan resolver.
    pub fn schema(&self, lookup: &dyn Fn(&str) -> Result<Schema>) -> Result<Schema> {
        self.shape().schema(lookup)
    }

    /// One-line description for EXPLAIN.
    pub fn describe(&self) -> String {
        match self {
            DPlan::Redistribute { keys, .. } => {
                format!("Redistribute Motion by {keys:?}")
            }
            DPlan::Broadcast { .. } => "Broadcast Motion".to_string(),
            DPlan::Gather { .. } => "Gather Motion".to_string(),
            other => other.shape_describe(),
        }
    }

    fn shape_describe(&self) -> String {
        match self {
            DPlan::Scan { table } => format!("Seq Scan on {table}"),
            DPlan::Values { table } => format!("Values ({} rows, master)", table.len()),
            DPlan::Filter { predicate, .. } => format!("Filter: {predicate}"),
            DPlan::Project { exprs, .. } => {
                let list: Vec<String> =
                    exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!("Project: {}", list.join(", "))
            }
            DPlan::HashJoin {
                left_keys,
                right_keys,
                kind,
                ..
            } => {
                let kind = match kind {
                    JoinKind::Inner => "Hash Join",
                    JoinKind::LeftSemi => "Hash Semi Join",
                    JoinKind::LeftAnti => "Hash Anti Join",
                };
                format!("{kind} on left{left_keys:?} = right{right_keys:?}")
            }
            DPlan::Aggregate { group_by, aggs, .. } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                format!("HashAggregate group_by={group_by:?} aggs={names:?}")
            }
            DPlan::Distinct { .. } => "HashDistinct".to_string(),
            DPlan::UnionAll { .. } => "Append (UNION ALL)".to_string(),
            DPlan::Redistribute { .. } | DPlan::Broadcast { .. } | DPlan::Gather { .. } => {
                unreachable!("motions handled in describe()")
            }
        }
    }

    /// Children, for tree walks.
    pub fn children(&self) -> Vec<&DPlan> {
        match self {
            DPlan::Scan { .. } | DPlan::Values { .. } => vec![],
            DPlan::Filter { input, .. }
            | DPlan::Project { input, .. }
            | DPlan::Aggregate { input, .. }
            | DPlan::Distinct { input }
            | DPlan::Redistribute { input, .. }
            | DPlan::Broadcast { input }
            | DPlan::Gather { input } => vec![input],
            DPlan::HashJoin { left, right, .. } | DPlan::UnionAll { left, right } => {
                vec![left, right]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_relational::prelude::{Schema, Value};

    #[test]
    fn shape_strips_motions() {
        let plan = DPlan::scan("t").redistribute(vec![0]).broadcast().gather();
        match plan.shape() {
            Plan::Scan { table } => assert_eq!(table, "t"),
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn schema_passes_through_motions() {
        let s = Schema::ints(&["a", "b"]);
        let lookup = {
            let s = s.clone();
            move |_: &str| Ok(s.clone())
        };
        let plan = DPlan::scan("t").redistribute(vec![1]);
        assert_eq!(plan.schema(&lookup).unwrap(), s);
    }

    #[test]
    fn describe_names_motions() {
        assert_eq!(
            DPlan::scan("t").redistribute(vec![0]).describe(),
            "Redistribute Motion by [0]"
        );
        assert_eq!(DPlan::scan("t").broadcast().describe(), "Broadcast Motion");
        assert_eq!(DPlan::scan("t").gather().describe(), "Gather Motion");
        assert!(DPlan::scan("t").describe().contains("Seq Scan"));
    }

    #[test]
    fn shipping_cost_prefers_collocated_plans() {
        use crate::cluster::Cluster;
        use crate::distribution::DistPolicy;
        use crate::network::NetworkModel;
        let c = Cluster::new(4, NetworkModel::free());
        let t = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            (0..30).map(|i| vec![Value::Int(i)]).collect(),
        );
        c.create_table("t", t, DistPolicy::Hash(vec![0])).unwrap();
        let collocated = shipping_cost(&DPlan::scan("t"), &c, 4).unwrap();
        let redist = shipping_cost(&DPlan::scan("t").redistribute(vec![0]), &c, 4).unwrap();
        let bcast = shipping_cost(&DPlan::scan("t").broadcast(), &c, 4).unwrap();
        assert_eq!(collocated, 0.0);
        assert_eq!(redist, 30.0 * 8.0);
        assert_eq!(bcast, 30.0 * 8.0 * 3.0); // once per receiving segment
        // Cost of shipping an unknown table cannot be estimated.
        assert!(shipping_cost(&DPlan::scan("missing").broadcast(), &c, 4).is_err());
    }

    #[test]
    fn children_counts() {
        let join = DPlan::scan("a").hash_join(DPlan::scan("b"), vec![0], vec![0]);
        assert_eq!(join.children().len(), 2);
        assert_eq!(join.broadcast().children().len(), 1);
        let t = Table::empty(Schema::ints(&["x"]));
        assert!(DPlan::values(t).children().is_empty());
        let _ = Value::Int(0);
    }
}
