//! The interconnect cost model and motion telemetry.
//!
//! Segments in the simulator live in one process, so shipping rows between
//! them is nearly free; a real Greenplum cluster pays serialization and
//! network transfer. The [`NetworkModel`] charges every motion a simulated
//! cost (per-motion latency + per-byte transfer) which is reported next to
//! the measured compute time. The *ratios* Figure 4 shows (broadcast ≫
//! redistribute) come out of the model structurally: a broadcast ships
//! `rows × segments`, a redistribute ships each row once.

use std::time::Duration;

use probkb_support::sync::Mutex;

/// Which kind of motion moved the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotionKind {
    /// Hash-redistribute rows by key to their owning segment.
    Redistribute,
    /// Replicate the full input to every segment.
    Broadcast,
    /// Collect all rows on the master (segment 0).
    Gather,
}

impl MotionKind {
    /// Display name matching Greenplum's plan nodes.
    pub fn label(&self) -> &'static str {
        match self {
            MotionKind::Redistribute => "Redistribute Motion",
            MotionKind::Broadcast => "Broadcast Motion",
            MotionKind::Gather => "Gather Motion",
        }
    }
}

/// Cost model for the simulated interconnect.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// Fixed setup cost charged once per motion operation.
    pub latency: Duration,
    /// Sustained per-segment-pair throughput in bytes/second.
    pub bytes_per_sec: f64,
}

impl NetworkModel {
    /// A model loosely calibrated to a 1 GbE interconnect, the class of
    /// hardware in the paper's 2014 cluster.
    pub fn gigabit() -> Self {
        NetworkModel {
            latency: Duration::from_micros(500),
            bytes_per_sec: 125_000_000.0, // 1 Gb/s
        }
    }

    /// A free network (isolates pure compute effects in tests).
    pub fn free() -> Self {
        NetworkModel {
            latency: Duration::ZERO,
            bytes_per_sec: f64::INFINITY,
        }
    }

    /// Simulated time to ship `bytes` across the interconnect.
    pub fn cost(&self, bytes: usize) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        let transfer = bytes as f64 / self.bytes_per_sec;
        self.latency + Duration::from_secs_f64(transfer.max(0.0))
    }
}

/// One motion's telemetry record.
#[derive(Debug, Clone)]
pub struct MotionRecord {
    /// Kind of motion.
    pub kind: MotionKind,
    /// Rows shipped across segment boundaries (rows that stayed local are
    /// not counted for redistribution).
    pub rows_shipped: usize,
    /// Bytes shipped.
    pub bytes_shipped: usize,
    /// Simulated network time charged by the model.
    pub simulated: Duration,
}

/// Accumulates motion telemetry for a cluster.
#[derive(Debug, Default)]
pub struct MotionLog {
    records: Mutex<Vec<MotionRecord>>,
}

impl MotionLog {
    /// New empty log.
    pub fn new() -> Self {
        MotionLog::default()
    }

    /// Record a motion.
    pub fn record(&self, rec: MotionRecord) {
        self.records.lock().push(rec);
    }

    /// Snapshot of all records so far.
    pub fn snapshot(&self) -> Vec<MotionRecord> {
        self.records.lock().clone()
    }

    /// Clear the log.
    pub fn clear(&self) {
        self.records.lock().clear();
    }

    /// Total rows shipped.
    pub fn total_rows(&self) -> usize {
        self.records.lock().iter().map(|r| r.rows_shipped).sum()
    }

    /// Total bytes shipped.
    pub fn total_bytes(&self) -> usize {
        self.records.lock().iter().map(|r| r.bytes_shipped).sum()
    }

    /// Total simulated network time.
    pub fn total_simulated(&self) -> Duration {
        self.records.lock().iter().map(|r| r.simulated).sum()
    }

    /// Rows shipped per motion kind.
    pub fn rows_by_kind(&self, kind: MotionKind) -> usize {
        self.records
            .lock()
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.rows_shipped)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_network_costs_nothing() {
        let m = NetworkModel::free();
        assert_eq!(m.cost(1_000_000), Duration::ZERO.max(m.cost(0)));
        assert_eq!(m.cost(0), Duration::ZERO);
    }

    #[test]
    fn gigabit_cost_scales_with_bytes() {
        let m = NetworkModel::gigabit();
        let small = m.cost(1_000);
        let big = m.cost(125_000_000); // one second of transfer
        assert!(big > small);
        assert!(big >= Duration::from_secs(1));
        assert!(small >= m.latency);
    }

    #[test]
    fn log_accumulates_and_filters() {
        let log = MotionLog::new();
        log.record(MotionRecord {
            kind: MotionKind::Broadcast,
            rows_shipped: 10,
            bytes_shipped: 100,
            simulated: Duration::from_millis(1),
        });
        log.record(MotionRecord {
            kind: MotionKind::Redistribute,
            rows_shipped: 5,
            bytes_shipped: 50,
            simulated: Duration::from_millis(2),
        });
        assert_eq!(log.total_rows(), 15);
        assert_eq!(log.total_bytes(), 150);
        assert_eq!(log.total_simulated(), Duration::from_millis(3));
        assert_eq!(log.rows_by_kind(MotionKind::Broadcast), 10);
        assert_eq!(log.snapshot().len(), 2);
        log.clear();
        assert_eq!(log.total_rows(), 0);
    }

    #[test]
    fn motion_labels_match_greenplum() {
        assert_eq!(MotionKind::Redistribute.label(), "Redistribute Motion");
        assert_eq!(MotionKind::Broadcast.label(), "Broadcast Motion");
        assert_eq!(MotionKind::Gather.label(), "Gather Motion");
    }
}
