//! Table 3: Tuffy-T vs ProbKB vs ProbKB-p on the ReVerb-Sherlock KB.
//!
//! Reproduces the paper's case study: bulkload time, Query-1 time for
//! four grounding iterations, Query-2 (factor construction) time, and the
//! result sizes — which grow explosively because this run (like the
//! paper's) applies constraints only once, before inference.
//!
//! Two tables are printed: raw in-memory times, and DBMS-equivalent times
//! that add the calibrated per-query dispatch overhead a PostgreSQL-class
//! engine pays (see `probkb_bench::QUERY_DISPATCH_OVERHEAD`) — the paper's
//! comparison runs on such an engine, and its headline gap *is* that
//! overhead times 30,912 queries.
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin table3 -- --scale 0.02 --segments 8
//! ```

use std::time::Duration;

use probkb_bench::{dbms_equivalent, flag, mins, row, run_system, PerfRun, System, QUERY_DISPATCH_OVERHEAD};
use probkb_datagen::prelude::{generate, ReverbConfig};

fn print_table(runs: &[PerfRun], iterations: usize, overhead: Duration, label: &str) {
    println!("\n-- {label} (minutes, as in Table 3) --");
    let mut header = vec!["Systems".to_string(), "Load".to_string()];
    for i in 1..=iterations {
        header.push(format!("Q1 iter{i}"));
    }
    header.push("Query 2".into());
    header.push("facts".into());
    header.push("factors".into());
    row(&header);

    for run in runs {
        let mut cells = vec![run.system.name().to_string(), mins(run.report.load_time)];
        for i in 1..=iterations {
            let stat = run.report.iterations.iter().find(|s| s.iteration == i);
            cells.push(match stat {
                Some(s) => mins(dbms_equivalent(s.elapsed, s.queries, overhead)),
                None => "-".into(),
            });
        }
        cells.push(mins(dbms_equivalent(
            run.report.factor_time,
            run.report.factor_queries,
            overhead,
        )));
        cells.push(run.report.total_facts.to_string());
        cells.push(run.report.total_factors.to_string());
        row(&cells);
    }
}

fn main() {
    let scale: f64 = flag("scale", 0.02);
    let segments: usize = flag("segments", 8);
    let iterations: usize = flag("iterations", 4);
    let cap: usize = flag("cap", 3_000_000);

    let kb = generate(&ReverbConfig::scaled(scale));
    println!(
        "== Table 3: ReVerb-Sherlock case study (scale {scale}, {} facts, {} rules, {segments} segments) ==",
        kb.stats().facts,
        kb.stats().rules
    );
    println!("Query 3 runs once before inference; no constraints during (as in §6.1.1).");

    let systems = [System::ProbKbP, System::ProbKb, System::TuffyT];
    let runs: Vec<_> = systems
        .iter()
        .map(|&s| {
            eprintln!("running {} ...", s.name());
            run_system(s, &kb, iterations, segments, true, Some(cap))
        })
        .collect();

    print_table(&runs, iterations, Duration::ZERO, "raw in-memory execution");
    print_table(
        &runs,
        iterations,
        QUERY_DISPATCH_OVERHEAD,
        "DBMS-equivalent (+5 ms dispatch per query)",
    );

    // The §6.1.1 headline claims, derived from the DBMS-equivalent run.
    let probkb = &runs[1];
    let tuffy = &runs[2];
    println!("\nDerived (paper's §6.1.1 headline numbers, DBMS-equivalent):");
    let q_t = tuffy.report.iterations.first().map(|s| s.queries).unwrap_or(0);
    let q_p = probkb.report.iterations.first().map(|s| s.queries).unwrap_or(0);
    println!(
        "  queries per iteration: {q_t} (Tuffy-T) vs {q_p} (ProbKB) [paper: 30,912 vs 6]"
    );
    for i in 2..=iterations {
        let t = tuffy.report.iterations.iter().find(|s| s.iteration == i);
        let p = probkb.report.iterations.iter().find(|s| s.iteration == i);
        if let (Some(t), Some(p)) = (t, p) {
            let tq = dbms_equivalent(t.elapsed, t.queries, QUERY_DISPATCH_OVERHEAD);
            let pq = dbms_equivalent(p.elapsed, p.queries, QUERY_DISPATCH_OVERHEAD);
            println!(
                "  Query 1 iter {i}: Tuffy-T/ProbKB = {:.1}x (paper: >100x in iters 2-4)",
                tq.as_secs_f64() / pq.as_secs_f64().max(1e-9)
            );
        }
    }
    // Bulkload: Tuffy creates one table per relation (83K in the paper).
    println!(
        "  bulkload: Tuffy-T/ProbKB = {:.1}x raw (paper: 607x; the gap is mostly \
         per-table DDL overhead, which our in-memory catalog barely pays)",
        tuffy.report.load_time.as_secs_f64() / probkb.report.load_time.as_secs_f64().max(1e-9)
    );

    // The result must agree across systems.
    assert_eq!(runs[0].report.total_facts, runs[1].report.total_facts);
    assert_eq!(runs[1].report.total_facts, runs[2].report.total_facts);
}
