//! Run every experiment harness in sequence at its default (scaled-down)
//! parameters, separating sections clearly. Useful for regenerating all
//! of EXPERIMENTS.md's measurements in one go.
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin all_experiments 2>&1 | tee experiments.log
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "table2", "table3", "fig4", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b",
        "ablation_semi_naive",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n######## {bin} ########\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nAll experiments completed.");
}
