//! Table 4 + Figure 7(a): precision of inferred facts under the six
//! quality-control configurations.
//!
//! Generates a clean ReVerb-Sherlock-style KB, injects the paper's error
//! families with ground truth, then grounds under each configuration of
//! Table 4 (G1 without semantic constraints, G2 with them, each at three
//! rule-cleaning levels) and reports the precision trajectory as
//! inference proceeds — the curves of Figure 7(a).
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin fig7a
//! ```

use probkb_bench::{flag, row};
use probkb_core::prelude::*;
use probkb_datagen::prelude::*;
use probkb_quality::prelude::*;

struct QcConfig {
    name: &'static str,
    semantic_constraints: bool,
    theta: f64,
}

fn main() {
    let facts: usize = flag("facts", 3_000);
    let cap: usize = flag("cap", 300_000);

    println!("== Table 4: quality control parameters ==\n");
    row(&["".into(), "SC".into(), "RC (θ)".into()]);
    row(&["G1".into(), "no-SC".into(), "1 (no-RC), 20%, 10%".into()]);
    row(&["G2".into(), "SC".into(), "1 (no-RC), 50%, 20%".into()]);

    let clean = generate(&ReverbConfig {
        entities: facts / 2,
        classes: 12,
        relations: 100,
        facts,
        rules: 300,
        functional_frac: 0.5,
        pseudo_frac: 0.2,
        zipf_s: 1.05,
        rule_zipf_s: 0.6,
        seed: 71,
    });
    let corrupted = inject(
        &clean,
        &ErrorConfig {
            wrong_rules: 120,
            ambiguous_merges: facts / 8,
            error_facts: facts / 10,
            synonym_pairs: facts / 60,
            seed: 72,
            closure_iterations: 6,
            closure_cap: cap,
        },
    );
    println!(
        "\nKB: {} facts, {} rules ({} injected wrong), {} ambiguous entities, {} bad extractions\n",
        corrupted.kb.facts.len(),
        corrupted.kb.rules.len(),
        corrupted.truth.wrong_rule_ids.len(),
        corrupted.truth.ambiguous_entities.len(),
        corrupted.truth.error_fact_keys.len(),
    );

    let configs = [
        QcConfig { name: "No SC, no RC", semantic_constraints: false, theta: 1.0 },
        QcConfig { name: "RC top 20%", semantic_constraints: false, theta: 0.2 },
        QcConfig { name: "RC top 10%", semantic_constraints: false, theta: 0.1 },
        QcConfig { name: "SC only", semantic_constraints: true, theta: 1.0 },
        QcConfig { name: "SC + RC top 50%", semantic_constraints: true, theta: 0.5 },
        QcConfig { name: "SC + RC top 20%", semantic_constraints: true, theta: 0.2 },
    ];

    println!("== Figure 7(a): precision vs estimated number of correct facts ==\n");
    row(&[
        "configuration".into(),
        "curve (correct:precision per iteration)".into(),
        "#inferred".into(),
        "#correct".into(),
        "precision".into(),
    ]);

    for qc in &configs {
        let kb = clean_rules(&corrupted.kb, qc.theta);
        let config = GroundingConfig {
            max_iterations: 8,
            preclean: qc.semantic_constraints,
            apply_constraints: qc.semantic_constraints,
            max_total_facts: Some(cap),
            threads: None,
            optimize: None,
        };
        let mut engine = SingleNodeEngine::new();
        let out = ground(&kb, &mut engine, &config).expect("grounding");
        let eval = evaluate(&out, &corrupted.truth);
        let curve: Vec<String> = eval
            .curve
            .iter()
            .map(|p| format!("{}:{:.2}", p.correct, p.precision))
            .collect();
        row(&[
            qc.name.into(),
            curve.join(" "),
            eval.inferred.to_string(),
            eval.correct.to_string(),
            format!("{:.2}", eval.precision),
        ]);
    }

    println!(
        "\nExpected shape (paper): raw ≈ 0.14 precision; rule cleaning alone\n\
         raises precision at reduced recall; semantic constraints raise both\n\
         precision and usable recall (the unconstrained run wastes its budget\n\
         on garbage); SC + RC is the best configuration (0.65–0.75)."
    );
}
