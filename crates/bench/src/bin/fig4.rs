//! Figure 4: Greenplum query plans with and without redistributed
//! materialized views, annotated with per-operator timings.
//!
//! Joins `M3` against a synthetic `TΠ` (10M rows in the paper; scaled
//! here) on an 8-segment cluster, and prints the two EXPLAIN ANALYZE
//! trees. The optimized plan replaces the Broadcast Motion of the large
//! intermediate result with Redistribute Motions against collocated view
//! replicas.
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin fig4 -- --facts 1000000 --segments 8
//! ```

use probkb_bench::flag;
use probkb_core::prelude::*;
use probkb_datagen::prelude::*;
use probkb_kb::prelude::RulePattern;
use probkb_mpp::prelude::*;

fn main() {
    let facts: usize = flag("facts", 1_000_000);
    let segments: usize = flag("segments", 8);

    // A synthetic TΠ like the paper's 10M-row sample, with enough P3
    // rules to make the intermediate result large.
    let base = generate(&ReverbConfig {
        entities: (facts / 20).max(100),
        classes: 12,
        relations: 200,
        facts: facts / 10,
        rules: 400,
        functional_frac: 0.0,
        pseudo_frac: 0.0,
        zipf_s: 1.05,
        rule_zipf_s: 0.0,
        seed: 4,
    });
    let kb = s2_with_facts(&base, facts, 9);
    let rel = load(&kb);
    let pattern = rel
        .mln
        .iter()
        .map(|(p, _)| *p)
        .find(|p| *p == RulePattern::P3)
        .or_else(|| rel.mln.iter().map(|(p, _)| *p).find(|p| p.arity() == 3))
        .expect("generator emits length-3 rules");

    println!(
        "== Figure 4: M{} ⋈ TΠ with {} rows on {segments} segments ==\n",
        pattern.index(),
        kb.stats().facts
    );

    for (label, mode) in [
        ("WITH redistributed materialized views (left plan)", MppMode::Optimized),
        ("WITHOUT optimization (right plan)", MppMode::NoViews),
    ] {
        let mut engine = MppEngine::new(segments, NetworkModel::gigabit(), mode);
        engine.load(&rel).expect("load");
        engine.cluster().motions().clear();
        let plan = engine.ground_atoms_dplan(pattern).expect("plan");
        let (out, metrics) = DExecutor::new(engine.cluster())
            .execute(&plan)
            .expect("execute");
        let produced: usize = out.iter().map(|t| t.len()).sum();
        println!("--- {label} ---");
        println!("{}", explain_analyze_dplan(&metrics));
        let motions = engine.cluster().motions();
        println!(
            "rows produced: {produced} | shipped: {} redistribute + {} broadcast | simulated network: {:?} | total reported: {:?}\n",
            motions.rows_by_kind(MotionKind::Redistribute),
            motions.rows_by_kind(MotionKind::Broadcast),
            metrics.total_net_simulated(),
            metrics.total_reported(),
        );
    }

    println!(
        "Expected shape (paper): the unoptimized plan's Broadcast Motion of the\n\
         intermediate hash-join result dominates (8.06s vs 0.85s in Figure 4);\n\
         here the same asymmetry appears in rows shipped and simulated network time."
    );
}
