//! Figure 7(b): distribution of error sources behind constraint
//! violations.
//!
//! Grounds a corrupted KB without constraint enforcement (so errors
//! propagate), detects every entity violating a functional constraint,
//! and attributes each violation to its ground-truth cause — the pie
//! chart of Figure 7(b) as a table.
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin fig7b
//! ```

use std::collections::HashMap;

use probkb_bench::{flag, row};
use probkb_core::prelude::*;
use probkb_datagen::prelude::*;
use probkb_quality::prelude::*;

fn main() {
    let facts: usize = flag("facts", 3_000);

    let clean = generate(&ReverbConfig {
        entities: facts / 2,
        classes: 12,
        relations: 100,
        facts,
        rules: 300,
        functional_frac: 0.5,
        pseudo_frac: 0.2,
        zipf_s: 1.05,
        rule_zipf_s: 0.6,
        seed: 71,
    });
    let corrupted = inject(
        &clean,
        &ErrorConfig {
            wrong_rules: 40,
            ambiguous_merges: facts / 8,
            error_facts: facts / 10,
            synonym_pairs: facts / 60,
            seed: 72,
            closure_iterations: 6,
            closure_cap: 300_000,
        },
    );

    // Ground without constraints so every error family can propagate.
    let mut engine = SingleNodeEngine::new();
    let config = GroundingConfig {
        max_iterations: 5,
        preclean: false,
        apply_constraints: false,
        max_total_facts: Some(300_000),
        threads: None,
        optimize: None,
    };
    let out = ground(&corrupted.kb, &mut engine, &config).expect("grounding");

    // Violating entities over the *expanded* KB, then ground-truth
    // attribution of each.
    let mut expanded = corrupted.kb.clone();
    expanded.facts.clear();
    let mut mentions: HashMap<i64, Vec<FactKey>> = HashMap::new();
    for r in out.facts.rows() {
        let key: FactKey = [
            r[tpi::R].as_int().unwrap(),
            r[tpi::X].as_int().unwrap(),
            r[tpi::C1].as_int().unwrap(),
            r[tpi::Y].as_int().unwrap(),
            r[tpi::C2].as_int().unwrap(),
        ];
        mentions.entry(key[1]).or_default().push(key);
        mentions.entry(key[3]).or_default().push(key);
        expanded.facts.push(probkb_kb::prelude::Fact {
            rel: probkb_kb::prelude::RelationId::from_i64(key[0]),
            x: probkb_kb::prelude::EntityId::from_i64(key[1]),
            c1: probkb_kb::prelude::ClassId::from_i64(key[2]),
            y: probkb_kb::prelude::EntityId::from_i64(key[3]),
            c2: probkb_kb::prelude::ClassId::from_i64(key[4]),
            weight: r[tpi::W].as_float(),
        });
    }
    let violators = detect_violating_entities(&expanded).expect("detection");

    let mut breakdown = Breakdown::default();
    for (entity, _class) in &violators {
        let keys = mentions
            .get(&entity.as_i64())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let evidence = evidence_for(entity.as_i64(), keys, &corrupted.truth);
        breakdown.record(classify_violation(&evidence));
    }

    println!(
        "== Figure 7(b): error sources behind {} constraint-violating entities ==\n",
        breakdown.total()
    );
    row(&["error source".into(), "count".into(), "share".into(), "paper".into()]);
    let paper: &[(&str, &str)] = &[
        ("Ambiguities (detected)", "34%"),
        ("Ambiguous join keys", "24%"),
        ("Incorrect rules", "33%"),
        ("Incorrect extractions", "6%"),
        ("General types", "2%"),
        ("Synonyms", "1%"),
        ("Unattributed", "-"),
    ];
    for (source, count, share) in breakdown.rows() {
        let paper_share = paper
            .iter()
            .find(|(label, _)| *label == source.label())
            .map(|(_, s)| *s)
            .unwrap_or("-");
        row(&[
            source.label().into(),
            count.to_string(),
            format!("{:.0}%", share * 100.0),
            paper_share.into(),
        ]);
    }

    println!(
        "\nExpected shape (paper): ambiguity (direct + join keys) and incorrect\n\
         rules dominate; extraction errors are a small slice; general types\n\
         and synonyms are marginal."
    );
}
