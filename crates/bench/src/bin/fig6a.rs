//! Figure 6(a): grounding runtime vs number of rules (the S1 sweep).
//!
//! Fixes the fact set and sweeps the rule count; new rules are existing
//! rules with substituted heads (the paper's construction). Each system
//! runs one grounding iteration plus the factor pass, as in §6.1.2.
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin fig6a -- --facts 20000 --segments 8
//! cargo run --release -p probkb-bench --bin fig6a -- --full   # larger sweep
//! ```

use probkb_bench::{
    dbms_equivalent, flag, row, run_system, secs, switch, System, QUERY_DISPATCH_OVERHEAD,
};
use probkb_datagen::prelude::*;

fn main() {
    let facts: usize = flag("facts", 20_000);
    let segments: usize = flag("segments", 8);
    let full = switch("full");
    let rule_counts: Vec<usize> = if full {
        vec![10_000, 50_000, 200_000, 1_000_000]
    } else {
        vec![1_000, 5_000, 20_000, 50_000]
    };

    // Relation/entity counts keep the derivation density near the
    // paper's (a few inferred facts per rule, not dozens): ReVerb has 10x
    // more relations than rules have bodies to cover.
    let base = generate(&ReverbConfig {
        entities: (facts * 2).max(2_000),
        classes: 20,
        relations: (facts / 5).max(500),
        facts,
        rules: 500,
        functional_frac: 0.1,
        pseudo_frac: 0.2,
        zipf_s: 0.9,
        rule_zipf_s: 0.0,
        seed: 61,
    });
    println!(
        "== Figure 6(a): runtime vs #rules (S1; {} facts fixed; 1 iteration) ==\n",
        base.stats().facts
    );
    row(&[
        "#rules".into(),
        "Tuffy-T s".into(),
        "Tuffy-T dbms-eq s".into(),
        "ProbKB s".into(),
        "ProbKB dbms-eq s".into(),
        "ProbKB-p s".into(),
        "ProbKB-p dbms-eq s".into(),
        "#inferred".into(),
    ]);

    for &rules in &rule_counts {
        let kb = s1_with_rules(&base, rules, 7);
        let mut cells = vec![rules.to_string()];
        let mut inferred = 0;
        for system in [System::TuffyT, System::ProbKb, System::ProbKbP] {
            let run = run_system(system, &kb, 1, segments, false, None);
            cells.push(secs(run.total()));
            cells.push(secs(dbms_equivalent(
                run.total(),
                run.report.total_queries(),
                QUERY_DISPATCH_OVERHEAD,
            )));
            inferred = run.report.inferred_facts();
        }
        cells.push(inferred.to_string());
        row(&cells);
    }

    println!(
        "\nExpected shape (paper): ProbKB/ProbKB-p stay near-flat in the rule\n\
         count (constant number of batch queries) while Tuffy-T grows linearly\n\
         (one query per rule); at 1M rules the paper sees 311x for ProbKB-p."
    );
}
