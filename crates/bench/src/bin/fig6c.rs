//! Figure 6(c): PostgreSQL vs Greenplum, with and without redistributed
//! materialized views (ProbKB vs ProbKB-pn vs ProbKB-p), on the S2 sweep.
//!
//! Queries 1 and 2 only (one grounding iteration plus the factor pass).
//! Beside wall-clock time we report the simulated interconnect time —
//! the quantity a real cluster pays that an in-process simulator hides.
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin fig6c -- --segments 8
//! ```

use probkb_bench::{flag, row, secs, switch};
use probkb_core::prelude::*;
use probkb_datagen::prelude::*;
use probkb_mpp::prelude::*;

fn main() {
    let segments: usize = flag("segments", 8);
    let rules: usize = flag("rules", 2_000);
    let full = switch("full");
    let fact_counts: Vec<usize> = if full {
        vec![100_000, 500_000, 2_000_000, 10_000_000]
    } else {
        vec![10_000, 50_000, 200_000, 500_000]
    };

    let base = generate(&ReverbConfig {
        entities: 100_000,
        classes: 20,
        relations: 4_000,
        facts: 10_000,
        rules,
        functional_frac: 0.1,
        pseudo_frac: 0.2,
        zipf_s: 0.9,
        rule_zipf_s: 0.0,
        seed: 63,
    });
    println!(
        "== Figure 6(c): single-node vs MPP (S2; {} rules; {segments} segments; Queries 1+2) ==\n",
        base.stats().rules
    );
    row(&[
        "#facts".into(),
        "ProbKB s".into(),
        "ProbKB-pn s".into(),
        "ProbKB-pn net s".into(),
        "ProbKB-p s".into(),
        "ProbKB-p net s".into(),
        "#inferred".into(),
    ]);

    let config = GroundingConfig {
        max_iterations: 1,
        preclean: false,
        apply_constraints: false,
        max_total_facts: None,
        threads: None,
        optimize: None,
    };

    for &facts in &fact_counts {
        let kb = s2_with_facts(&base, facts, 8);

        let mut single = SingleNodeEngine::new();
        let s = ground_loaded(load(&kb), &mut single, &config).expect("single");
        let mut cells = vec![kb.stats().facts.to_string(), secs(s.report.total_time())];
        let inferred = s.report.inferred_facts();

        for mode in [MppMode::NoViews, MppMode::Optimized] {
            let mut engine = MppEngine::new(segments, NetworkModel::gigabit(), mode);
            let out = ground_loaded(load(&kb), &mut engine, &config).expect("mpp");
            assert_eq!(out.report.inferred_facts(), inferred, "{mode:?} disagrees");
            cells.push(secs(out.report.total_time()));
            cells.push(secs(engine.cluster().motions().total_simulated()));
        }
        cells.push(inferred.to_string());
        row(&cells);
    }

    println!(
        "\nExpected shape (paper): both Greenplum variants beat PostgreSQL (≥3.1x),\n\
         and the redistributed views add up to 6.3x by eliminating broadcast\n\
         motions. In this in-process simulator the wall-clock gap narrows (all\n\
         segments share one machine), but the interconnect columns show the\n\
         effect the views exist to produce: ProbKB-p ships a fraction of\n\
         ProbKB-pn's volume."
    );
}
