//! Join-order microbench: the cost of a bad join order on a skewed
//! workload, and what the statistics-driven planner recovers.
//!
//! Three relations with wildly different cardinalities are joined in the
//! worst possible left-deep order (big ⋈ big first, tiny table last —
//! the order a naive query writer or a stats-blind planner picks). The
//! same plan is then run through the optimizer, which reorders the chain
//! to start from the most selective leaf and flips the hash-build side
//! using MCV-based estimates.
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin join_order -- --scale 4
//! ```

use std::time::{Duration, Instant};

use probkb_bench::{flag, row, secs};
use probkb_relational::prelude::*;

/// Build the skewed workload: `big` (scale×50k rows, key skewed so one
/// value dominates), `mid` (scale×10k rows), `tiny` (8 rows).
fn build_catalog(scale: usize) -> Catalog {
    let catalog = Catalog::new();
    let big_rows = scale * 50_000;
    let mid_rows = scale * 10_000;

    // 90% of big's keys collide on value 0 — the MCV sketch sees this;
    // a row-count heuristic does not.
    let big = Table::from_rows_unchecked(
        Schema::ints(&["k", "v"]),
        (0..big_rows as i64)
            .map(|i| {
                let k = if i % 10 < 9 { 0 } else { i % 1_000 };
                vec![Value::Int(k), Value::Int(i)]
            })
            .collect(),
    );
    let mid = Table::from_rows_unchecked(
        Schema::ints(&["k", "w"]),
        (0..mid_rows as i64)
            .map(|i| vec![Value::Int(i % 1_000), Value::Int(i)])
            .collect(),
    );
    let tiny = Table::from_rows_unchecked(
        Schema::ints(&["w", "u"]),
        (0..8i64).map(|i| vec![Value::Int(i * 7), Value::Int(i)]).collect(),
    );
    catalog.create("big", big).unwrap();
    catalog.create("mid", mid).unwrap();
    catalog.create("tiny", tiny).unwrap();
    catalog
}

/// The worst left-deep chain: big ⋈ mid explodes through the skewed key
/// before tiny throws almost everything away.
fn chain() -> Plan {
    Plan::scan("big")
        .hash_join(Plan::scan("mid"), vec![0], vec![0])
        // mid.w is column 3 of the intermediate result.
        .hash_join(Plan::scan("tiny"), vec![3], vec![0])
}

fn run(catalog: &Catalog, optimize: bool, reps: usize) -> (usize, Duration) {
    let exec = Executor::new(catalog).with_optimize(optimize);
    let mut rows = 0;
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let out = exec.execute_table(&chain()).expect("join chain");
        best = best.min(start.elapsed());
        rows = out.len();
    }
    (rows, best)
}

fn main() {
    let scale: usize = flag("scale", 2);
    let reps: usize = flag("reps", 3);
    let catalog = build_catalog(scale);

    println!("== join_order: worst left-deep order vs optimizer-chosen (skewed keys) ==\n");
    println!("{}", explain(&optimize(&chain(), &catalog)));

    row(&["plan".into(), "rows".into(), "best s".into()]);
    let (rows_worst, worst) = run(&catalog, false, reps);
    row(&["worst left-deep".into(), rows_worst.to_string(), secs(worst)]);
    let (rows_opt, opt) = run(&catalog, true, reps);
    row(&["optimizer-chosen".into(), rows_opt.to_string(), secs(opt)]);
    assert_eq!(rows_worst, rows_opt, "plans must agree on output size");

    println!(
        "\nspeedup: {:.1}x (scale {scale}: big={}, mid={}, tiny=8)",
        worst.as_secs_f64() / opt.as_secs_f64(),
        scale * 50_000,
        scale * 10_000,
    );
}
