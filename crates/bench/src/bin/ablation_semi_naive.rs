//! Ablation: naive (Algorithm 1) vs semi-naive grounding.
//!
//! Algorithm 1 re-joins the full `TΠ` every iteration; semi-naive
//! evaluation joins only against the last iteration's delta. On
//! workloads with deep derivation chains the per-iteration cost of the
//! naive engine grows with the KB while the semi-naive engine's tracks
//! the (shrinking) frontier.
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin ablation_semi_naive -- --chain 400
//! ```

use probkb_bench::{flag, row, secs};
use probkb_core::prelude::*;
use probkb_kb::prelude::parse;

fn chain_kb(n: usize) -> probkb_kb::prelude::ProbKb {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("fact 0.9 next(n{}:Node, n{}:Node)\n", i, i + 1));
    }
    // Bounded-depth reachability: rules chain, so iteration k derives
    // paths of length 2^k — a deep frontier workload.
    text.push_str("rule 1.0 reach(x:Node, y:Node) :- next(x, y)\n");
    text.push_str("rule 1.0 reach(x:Node, y:Node) :- reach(x, z:Node), next(z, y)\n");
    parse(&text).unwrap().build()
}

fn main() {
    let chain: usize = flag("chain", 400);
    let iterations: usize = flag("iterations", 10);
    let kb = chain_kb(chain);
    println!(
        "== Ablation: naive vs semi-naive grounding ({chain}-edge chain, {iterations} iterations) ==\n"
    );

    let config = GroundingConfig {
        max_iterations: iterations,
        preclean: false,
        apply_constraints: false,
        max_total_facts: None,
        threads: None,
        optimize: None,
    };

    let mut naive = SingleNodeEngine::new();
    let n = ground(&kb, &mut naive, &config).expect("naive");
    let mut sn = SemiNaiveEngine::new();
    let s = ground(&kb, &mut sn, &config).expect("semi-naive");

    assert_eq!(n.facts.len(), s.facts.len(), "engines must agree");
    assert_eq!(n.factors.len(), s.factors.len());

    row(&[
        "iteration".into(),
        "new facts".into(),
        "naive s".into(),
        "semi-naive s".into(),
        "speedup".into(),
    ]);
    let mut naive_total = 0.0;
    let mut sn_total = 0.0;
    for (a, b) in n.report.iterations.iter().zip(s.report.iterations.iter()) {
        assert_eq!(a.new_facts, b.new_facts, "iteration {}", a.iteration);
        let (ta, tb) = (a.elapsed.as_secs_f64(), b.elapsed.as_secs_f64());
        naive_total += ta;
        sn_total += tb;
        row(&[
            a.iteration.to_string(),
            a.new_facts.to_string(),
            secs(a.elapsed),
            secs(b.elapsed),
            format!("{:.2}x", ta / tb.max(1e-9)),
        ]);
    }
    println!(
        "\ntotals: naive {naive_total:.3}s, semi-naive {sn_total:.3}s ({:.2}x); final KB {} facts, {} factors",
        naive_total / sn_total.max(1e-9),
        n.facts.len(),
        n.factors.len(),
    );
    println!(
        "\nExpected shape: identical new-fact counts every iteration; the\n\
         semi-naive engine pulls ahead in later iterations as the delta\n\
         shrinks relative to the accumulated KB."
    );
}
