//! Table 2: ReVerb-Sherlock KB statistics.
//!
//! Prints the statistics of the synthetic ReVerb-Sherlock-style KB at the
//! requested scale, next to the paper's full-scale numbers.
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin table2 -- --scale 0.05
//! ```

use probkb_bench::{flag, row};
use probkb_datagen::prelude::{generate, ReverbConfig};

fn main() {
    let scale: f64 = flag("scale", 0.05);
    let config = ReverbConfig::scaled(scale);
    let kb = generate(&config);
    let stats = kb.stats();

    println!("== Table 2: Sherlock-ReVerb KB statistics (scale {scale}) ==\n");
    row(&["".into(), "paper".into(), format!("this run (×{scale})")]);
    row(&["# relations".into(), "82,768".into(), stats.relations.to_string()]);
    row(&["# rules".into(), "30,912".into(), stats.rules.to_string()]);
    row(&["# entities".into(), "277,216".into(), stats.entities.to_string()]);
    row(&["# facts".into(), "407,247".into(), stats.facts.to_string()]);
    row(&[
        "# constraints (Leibniz)".into(),
        "10,374".into(),
        stats.constraints.to_string(),
    ]);

    let problems = kb.validate();
    assert!(problems.is_empty(), "generated KB invalid: {problems:?}");
    println!("\nKB validates: OK");
}
