//! Out-of-core acceptance harness: ground a ReVerb-Sherlock-scale KB
//! twice — fully in memory, then with every catalog spilled through a
//! buffer pool capped below the dataset's resident size — and check the
//! two runs byte for byte (facts, factors, derivation schedule). Prints
//! wall times and buffer-pool telemetry for EXPERIMENTS.md.
//!
//! ```sh
//! # Table-2 full scale (407K base facts), 4 MiB of buffer pool:
//! cargo run --release -p probkb-bench --bin outofcore -- --scale 1.0 --pool 512
//! # CI smoke (seconds, not minutes):
//! cargo run --release -p probkb-bench --bin outofcore -- --scale 0.02
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use probkb_bench::{flag, row, secs};
use probkb_core::prelude::*;
use probkb_datagen::prelude::{generate, ReverbConfig};
use probkb_relational::prelude::{
    clear_process_default, set_process_default, SpillPolicy, StorageContext,
};

fn snapshot(expansion: &Expansion) -> (String, String, String) {
    let schedule: BTreeMap<i64, usize> = expansion
        .outcome
        .fact_iteration
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect();
    (
        format!("{:?}", expansion.outcome.facts),
        format!("{:?}", expansion.outcome.factors),
        format!("{schedule:?}"),
    )
}

fn main() {
    let scale: f64 = flag("scale", 0.02);
    let pool: usize = flag("pool", 512); // pages of 8 KiB = 4 MiB default
    let threshold: usize = flag("threshold", 4096);

    let kb = generate(&ReverbConfig::scaled(scale));
    let stats = kb.stats();
    println!(
        "== Out-of-core grounding (scale {scale}: {} facts, {} rules; pool {pool} pages = {} KiB) ==\n",
        stats.facts,
        stats.rules,
        pool * 8
    );
    let options = ExpandOptions::default();

    // Baseline: everything in RAM.
    clear_process_default();
    set_process_default(None);
    let t0 = Instant::now();
    let mem = expand(&kb, &options).unwrap();
    let mem_time = t0.elapsed();
    let mem_bytes = mem.outcome.facts.size_bytes() + mem.outcome.factors.size_bytes();

    // Capped run: spill every catalog table through a small pool.
    let ctx = StorageContext::in_temp(pool).unwrap();
    set_process_default(Some(SpillPolicy {
        ctx: ctx.clone(),
        threshold_rows: threshold,
    }));
    let t0 = Instant::now();
    let capped = expand(&kb, &options).unwrap();
    let capped_time = t0.elapsed();
    let stats_after = ctx.stats();
    clear_process_default();

    let (mf, mphi, msched) = snapshot(&mem);
    let (cf, cphi, csched) = snapshot(&capped);
    assert_eq!(mf, cf, "facts differ between in-memory and capped runs");
    assert_eq!(mphi, cphi, "factors differ");
    assert_eq!(msched, csched, "derivation schedule differs");

    row(&["".into(), "in-memory".into(), format!("pool={pool} pages")]);
    row(&[
        "facts (base -> total)".into(),
        format!("{} -> {}", stats.facts, mem.outcome.facts.len()),
        "identical".into(),
    ]);
    row(&[
        "factors".into(),
        mem.outcome.factors.len().to_string(),
        "identical".into(),
    ]);
    row(&["ground time (s)".into(), secs(mem_time), secs(capped_time)]);
    row(&[
        "result resident (MiB)".into(),
        format!("{:.1}", mem_bytes as f64 / (1 << 20) as f64),
        format!("{:.3} pool", (pool * 8192) as f64 / (1 << 20) as f64),
    ]);
    row(&[
        "buffer pool".into(),
        "-".into(),
        format!(
            "pins={} hits={} misses={} evict={} spilled={:.1}MiB",
            stats_after.pins,
            stats_after.hits,
            stats_after.misses,
            stats_after.evictions,
            stats_after.bytes_spilled as f64 / (1 << 20) as f64
        ),
    ]);
    println!("\nbyte-identity: OK (facts, factors, schedule)");
}
