//! Figure 6(b): grounding runtime vs number of facts (the S2 sweep).
//!
//! Fixes the rule set and sweeps the fact count; new facts are random
//! edges added to the base KB. One grounding iteration plus the factor
//! pass per system, as in §6.1.2.
//!
//! ```sh
//! cargo run --release -p probkb-bench --bin fig6b -- --rules 2000 --segments 8
//! cargo run --release -p probkb-bench --bin fig6b -- --full
//! ```

use probkb_bench::{
    dbms_equivalent, flag, row, run_system, secs, switch, System, QUERY_DISPATCH_OVERHEAD,
};
use probkb_datagen::prelude::*;

fn main() {
    let rules: usize = flag("rules", 2_000);
    let segments: usize = flag("segments", 8);
    let full = switch("full");
    let fact_counts: Vec<usize> = if full {
        vec![100_000, 500_000, 2_000_000, 10_000_000]
    } else {
        vec![10_000, 50_000, 200_000, 500_000]
    };

    let base = generate(&ReverbConfig {
        entities: 100_000,
        classes: 20,
        relations: 4_000,
        facts: 10_000,
        rules,
        functional_frac: 0.1,
        pseudo_frac: 0.2,
        zipf_s: 0.9,
        rule_zipf_s: 0.0,
        seed: 62,
    });
    println!(
        "== Figure 6(b): runtime vs #facts (S2; {} rules fixed; 1 iteration) ==\n",
        base.stats().rules
    );
    row(&[
        "#facts".into(),
        "Tuffy-T s".into(),
        "Tuffy-T dbms-eq s".into(),
        "ProbKB s".into(),
        "ProbKB dbms-eq s".into(),
        "ProbKB-p s".into(),
        "ProbKB-p dbms-eq s".into(),
        "#inferred".into(),
    ]);

    for &facts in &fact_counts {
        let kb = s2_with_facts(&base, facts, 8);
        let mut cells = vec![kb.stats().facts.to_string()];
        let mut inferred = 0;
        for system in [System::TuffyT, System::ProbKb, System::ProbKbP] {
            let run = run_system(system, &kb, 1, segments, false, None);
            cells.push(secs(run.total()));
            cells.push(secs(dbms_equivalent(
                run.total(),
                run.report.total_queries(),
                QUERY_DISPATCH_OVERHEAD,
            )));
            inferred = run.report.inferred_facts();
        }
        cells.push(inferred.to_string());
        row(&cells);
    }

    println!(
        "\nExpected shape (paper): all systems grow with the fact count, but\n\
         Tuffy-T grows much faster (per-rule scans re-read the hot relations\n\
         thousands of times); the paper sees 237x for ProbKB-p at 10M facts."
    );
}
