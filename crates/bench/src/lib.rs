//! Shared harness utilities for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index). This library holds the
//! common pieces: flag parsing, run orchestration, and tabular output.

#![warn(missing_docs)]

use std::time::Duration;

use probkb_core::prelude::*;
use probkb_kb::prelude::ProbKb;
use probkb_mpp::prelude::NetworkModel;

/// Parse `--name value` or `--name=value` from `std::env::args`.
pub fn flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    let key = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    let mut i = 0;
    while i < args.len() {
        if let Some(value) = args[i].strip_prefix(&format!("{key}=")) {
            return value.parse().unwrap_or_else(|_| panic!("bad value for {key}"));
        }
        if args[i] == key {
            if let Some(value) = args.get(i + 1) {
                return value
                    .parse()
                    .unwrap_or_else(|_| panic!("bad value for {key}"));
            }
        }
        i += 1;
    }
    default
}

/// True when `--name` appears as a bare switch.
pub fn switch(name: &str) -> bool {
    let key = format!("--{name}");
    std::env::args().any(|a| a == key)
}

/// Format a duration in seconds with 3 decimals (figures) — stable width
/// for TSV output.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format a duration in minutes, the unit Table 3 reports.
pub fn mins(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64() / 60.0)
}

/// Print a TSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Per-query dispatch overhead of a real DBMS (parse, plan, optimize,
/// executor startup, result round-trip). Our in-memory engine dispatches a
/// query in microseconds; PostgreSQL-class systems pay milliseconds — and
/// that overhead, multiplied by 30,912 per-rule queries, is precisely what
/// ProbKB's batching eliminates (§4.3.1). The harnesses therefore report
/// both raw measured time and a "DBMS-equivalent" time that adds this
/// calibrated constant per executed query. 5 ms is conservative for the
/// multi-join grounding queries (and is charged to ProbKB's big batch
/// queries too).
pub const QUERY_DISPATCH_OVERHEAD: Duration = Duration::from_millis(5);

/// `measured + queries × overhead`: what the same run would cost on an
/// engine with real per-query dispatch overhead.
pub fn dbms_equivalent(measured: Duration, queries: usize, overhead: Duration) -> Duration {
    measured + overhead * queries as u32
}

/// The systems compared in the performance experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Per-rule baseline.
    TuffyT,
    /// Single-node batch grounding.
    ProbKb,
    /// MPP without redistributed views.
    ProbKbPn,
    /// MPP with redistributed views.
    ProbKbP,
}

impl System {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            System::TuffyT => "Tuffy-T",
            System::ProbKb => "ProbKB",
            System::ProbKbPn => "ProbKB-pn",
            System::ProbKbP => "ProbKB-p",
        }
    }

    /// Instantiate the engine (MPP variants get `segments` segments).
    pub fn engine(&self, segments: usize) -> Box<dyn GroundingEngine> {
        match self {
            System::TuffyT => Box::new(TuffyEngine::new()),
            System::ProbKb => Box::new(SingleNodeEngine::new()),
            System::ProbKbPn => Box::new(MppEngine::new(
                segments,
                NetworkModel::gigabit(),
                MppMode::NoViews,
            )),
            System::ProbKbP => Box::new(MppEngine::new(
                segments,
                NetworkModel::gigabit(),
                MppMode::Optimized,
            )),
        }
    }
}

/// One measured grounding run.
#[derive(Debug)]
pub struct PerfRun {
    /// System measured.
    pub system: System,
    /// Full grounding report (load, per-iteration, factor pass).
    pub report: GroundingReport,
}

impl PerfRun {
    /// Query-1 time for iteration `i` (1-based), if it ran.
    pub fn iter_time(&self, i: usize) -> Option<Duration> {
        self.report
            .iterations
            .iter()
            .find(|s| s.iteration == i)
            .map(|s| s.elapsed)
    }

    /// Total grounding time (load + iterations + factors).
    pub fn total(&self) -> Duration {
        self.report.total_time()
    }
}

/// Ground `kb` on `system` with a performance configuration (`preclean`
/// once, no constraint passes during iterations — §6.1's setup).
pub fn run_system(
    system: System,
    kb: &ProbKb,
    iterations: usize,
    segments: usize,
    preclean: bool,
    cap: Option<usize>,
) -> PerfRun {
    let mut engine = system.engine(segments);
    let config = GroundingConfig {
        max_iterations: iterations,
        preclean,
        apply_constraints: false,
        max_total_facts: cap,
        threads: None,
        optimize: None,
    };
    let outcome = ground(kb, engine.as_mut(), &config).expect("grounding run");
    PerfRun {
        system,
        report: outcome.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_and_mins_format() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(mins(Duration::from_secs(90)), "1.5000");
    }

    #[test]
    fn systems_have_engines_and_names() {
        for system in [
            System::TuffyT,
            System::ProbKb,
            System::ProbKbPn,
            System::ProbKbP,
        ] {
            let engine = system.engine(2);
            assert_eq!(engine.name(), system.name());
        }
    }

    #[test]
    fn run_system_produces_report() {
        let kb = probkb_datagen::prelude::table1_kb();
        let run = run_system(System::ProbKb, &kb, 3, 1, false, None);
        assert_eq!(run.system, System::ProbKb);
        assert!(run.report.total_facts >= 2);
        assert!(run.iter_time(1).is_some());
        assert!(run.total() >= run.report.load_time);
    }
}
