//! Snapshot write/load throughput (ISSUE 3): how fast the durable
//! storage layer serializes a `TΠ`-shaped catalog to disk and loads it
//! back, at 10k / 100k / 1M rows. Rows/sec is `rows / elapsed` on the
//! reported mean times.

use std::fs;
use std::path::PathBuf;

use probkb_support::microbench::{BenchmarkId, Criterion};
use probkb_support::{criterion_group, criterion_main};

use probkb_core::prelude::tpi_schema;
use probkb_relational::prelude::*;
use probkb_storage::snapshot::{read_catalog_snapshot, write_catalog_snapshot};

/// A realistic facts table: dense ids, small id domains, mostly-NULL
/// weights — the exact shape checkpoints persist every few iterations.
fn facts(rows: usize) -> Table {
    Table::from_rows_unchecked(
        tpi_schema(),
        (0..rows as i64)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 100),
                    Value::Int(i % 40_000),
                    Value::Int(i % 30),
                    Value::Int((i * 7) % 40_000),
                    Value::Int(i % 30),
                    if i % 3 == 0 {
                        Value::Float((i % 1000) as f64 / 1000.0)
                    } else {
                        Value::Null
                    },
                ]
            })
            .collect(),
    )
}

fn bench_path(tag: &str, rows: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "probkb-bench-snapshot-{tag}-{rows}-{}.pkb",
        std::process::id()
    ))
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_throughput");

    for rows in [10_000usize, 100_000, 1_000_000] {
        // Keep the 1M-row point affordable: fewer samples, same shape.
        group.sample_size(if rows >= 1_000_000 { 10 } else { 20 });

        let catalog = Catalog::new();
        catalog.create_or_replace("T_pi", facts(rows));

        let write_path = bench_path("write", rows);
        group.bench_with_input(BenchmarkId::new("write", rows), &rows, |b, _| {
            b.iter(|| write_catalog_snapshot(&write_path, &catalog).unwrap());
        });

        let read_path = bench_path("read", rows);
        write_catalog_snapshot(&read_path, &catalog).unwrap();
        group.bench_with_input(BenchmarkId::new("load", rows), &rows, |b, _| {
            b.iter(|| std::hint::black_box(read_catalog_snapshot(&read_path).unwrap()));
        });

        let _ = fs::remove_file(write_path);
        let _ = fs::remove_file(read_path);
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
