//! Criterion microbenchmarks for the inference stage: sequential vs
//! chromatic parallel Gibbs sweeps over a grounding-shaped factor graph.

use probkb_support::microbench::{BenchmarkId, Criterion};
use probkb_support::{criterion_group, criterion_main};

use probkb_core::prelude::*;
use probkb_datagen::prelude::*;
use probkb_factorgraph::prelude::*;
use probkb_inference::prelude::*;

fn ground_graph() -> GroundGraph {
    // A dense grounding (many rules per head) so each variable's Markov
    // blanket carries real work — the regime where parallel sampling pays.
    let kb = generate(&ReverbConfig {
        entities: 2_000,
        classes: 10,
        relations: 80,
        facts: 4_000,
        rules: 1_500,
        functional_frac: 0.0,
        pseudo_frac: 0.0,
        zipf_s: 1.05,
        rule_zipf_s: 0.6,
        seed: 21,
    });
    let mut engine = SingleNodeEngine::new();
    let config = GroundingConfig {
        max_iterations: 2,
        preclean: false,
        apply_constraints: false,
        max_total_facts: Some(100_000),
        threads: None,
        optimize: None,
    };
    let out = ground(&kb, &mut engine, &config).expect("grounding");
    from_phi(&out.factors)
}

fn bench_samplers(c: &mut Criterion) {
    let gg = ground_graph();
    let vars = gg.graph.num_vars();
    let mut group = c.benchmark_group(format!("gibbs_{vars}_vars_20_sweeps"));
    group.sample_size(10);
    // Benchmark a 20-sweep schedule through each sampler's `run` path so
    // the chromatic sampler's persistent worker pool is what's measured.
    let schedule = GibbsConfig {
        burn_in: 0,
        samples: 20,
        seed: 1,
    };

    group.bench_function(BenchmarkId::new("sequential", 1), |b| {
        b.iter(|| {
            let m = GibbsSampler::new(&gg.graph, 1).run(&schedule);
            std::hint::black_box(m.p[0])
        });
    });

    for threads in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new("chromatic", threads), |b| {
            b.iter(|| {
                let m = ChromaticGibbs::new(&gg.graph, threads, 1).run(&schedule);
                std::hint::black_box(m.p[0])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
