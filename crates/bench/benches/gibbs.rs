//! Criterion microbenchmarks for the inference stage: sequential vs
//! chromatic vs partitioned multi-chain Gibbs sweeps over a
//! grounding-shaped factor graph, plus a convergence-control comparison
//! (fixed schedule vs R̂-triggered early stop) with `samples/sec/worker`
//! throughput lines.

use probkb_support::microbench::{BenchmarkId, Criterion};
use probkb_support::{criterion_group, criterion_main};

use probkb_core::prelude::*;
use probkb_datagen::prelude::*;
use probkb_factorgraph::prelude::*;
use probkb_inference::prelude::*;

fn ground_graph() -> GroundGraph {
    // A dense grounding (many rules per head) so each variable's Markov
    // blanket carries real work — the regime where parallel sampling pays.
    let kb = generate(&ReverbConfig {
        entities: 2_000,
        classes: 10,
        relations: 80,
        facts: 4_000,
        rules: 1_500,
        functional_frac: 0.0,
        pseudo_frac: 0.0,
        zipf_s: 1.05,
        rule_zipf_s: 0.6,
        seed: 21,
    });
    let mut engine = SingleNodeEngine::new();
    let config = GroundingConfig {
        max_iterations: 2,
        preclean: false,
        apply_constraints: false,
        max_total_facts: Some(100_000),
        threads: None,
        optimize: None,
    };
    let out = ground(&kb, &mut engine, &config).expect("grounding");
    from_phi(&out.factors)
}

fn bench_samplers(c: &mut Criterion) {
    let gg = ground_graph();
    let vars = gg.graph.num_vars();
    let mut group = c.benchmark_group(format!("gibbs_{vars}_vars_20_sweeps"));
    group.sample_size(10);
    // Benchmark a 20-sweep schedule through each sampler's `run` path so
    // the chromatic sampler's persistent worker pool is what's measured.
    let schedule = GibbsConfig {
        burn_in: 0,
        samples: 20,
        seed: 1,
        ..GibbsConfig::default()
    };

    group.bench_function(BenchmarkId::new("sequential", 1), |b| {
        b.iter(|| {
            let m = GibbsSampler::new(&gg.graph, 1).run(&schedule);
            std::hint::black_box(m.p[0])
        });
    });

    for threads in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new("chromatic", threads), |b| {
            b.iter(|| {
                let m = ChromaticGibbs::new(&gg.graph, threads, 1).run(&schedule);
                std::hint::black_box(m.p[0])
            });
        });
    }

    for workers in [1usize, 2, 4, 8] {
        let config = GibbsConfig {
            burn_in: 0,
            samples: 20,
            seed: 1,
            chains: 2,
            workers: Some(workers),
            ..GibbsConfig::default()
        };
        let sampler = PartitionedGibbs::new(&gg.graph, &config);
        let mut last = None;
        group.bench_function(BenchmarkId::new("partitioned", workers), |b| {
            b.iter(|| {
                let run = sampler.run();
                let p0 = run.marginals.p[0];
                last = Some(run.report);
                std::hint::black_box(p0)
            });
        });
        if let Some(report) = &last {
            println!(
                "  partitioned/{workers}: {:.0} samples/sec/worker",
                report.samples_per_sec_per_worker()
            );
        }
    }
    group.finish();
}

/// Convergence control vs a fixed schedule: the R̂-triggered run should
/// stop well short of `max_sweeps` while landing on the same marginals.
fn bench_convergence(c: &mut Criterion) {
    let gg = ground_graph();
    let vars = gg.graph.num_vars();
    let mut group = c.benchmark_group(format!("gibbs_convergence_{vars}_vars"));
    group.sample_size(1);

    let fixed = GibbsConfig {
        burn_in: 50,
        samples: 2_000,
        seed: 1,
        chains: 4,
        workers: Some(4),
        ..GibbsConfig::default()
    };
    let controlled = GibbsConfig {
        target_rhat: Some(1.05),
        max_sweeps: 2_000,
        check_interval: 100,
        ..fixed
    };

    let mut fixed_run = None;
    group.bench_function("fixed/2000_sweeps", |b| {
        b.iter(|| {
            let run = partitioned_marginals(&gg.graph, &fixed);
            let p0 = run.marginals.p[0];
            fixed_run = Some(run);
            std::hint::black_box(p0)
        });
    });
    let mut controlled_run = None;
    group.bench_function("controlled/rhat_1.05", |b| {
        b.iter(|| {
            let run = partitioned_marginals(&gg.graph, &controlled);
            let p0 = run.marginals.p[0];
            controlled_run = Some(run);
            std::hint::black_box(p0)
        });
    });

    if let (Some(fixed_run), Some(controlled_run)) = (fixed_run, controlled_run) {
        let gap = fixed_run
            .marginals
            .p
            .iter()
            .zip(controlled_run.marginals.p.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!("  fixed:      {}", fixed_run.report.annotate());
        println!("  controlled: {}", controlled_run.report.annotate());
        println!(
            "  controlled ran {}/{} sweeps; max marginal gap vs fixed = {gap:.4}",
            controlled_run.report.sweeps, fixed_run.report.sweeps
        );
        println!(
            "  throughput: fixed {:.0} vs controlled {:.0} samples/sec/worker",
            fixed_run.report.samples_per_sec_per_worker(),
            controlled_run.report.samples_per_sec_per_worker()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_samplers, bench_convergence);
criterion_main!(benches);
