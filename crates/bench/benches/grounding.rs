//! Criterion microbenchmark: batch rule application (ProbKB) vs per-rule
//! queries (Tuffy-T) — the core ablation behind Figure 6(a).

use probkb_support::microbench::{BenchmarkId, Criterion};
use probkb_support::{criterion_group, criterion_main};

use probkb_core::prelude::*;
use probkb_datagen::prelude::*;

fn bench_ground_atoms(c: &mut Criterion) {
    let base = generate(&ReverbConfig {
        entities: 2_000,
        classes: 10,
        relations: 100,
        facts: 5_000,
        rules: 100,
        functional_frac: 0.0,
        pseudo_frac: 0.0,
        zipf_s: 1.05,
        rule_zipf_s: 0.6,
        seed: 5,
    });

    let mut group = c.benchmark_group("ground_atoms_one_iteration");
    group.sample_size(10);
    for rules in [200usize, 1_000, 5_000] {
        let kb = s1_with_rules(&base, rules, 3);
        let rel = load(&kb);

        group.bench_with_input(BenchmarkId::new("probkb_batch", rules), &rel, |b, rel| {
            let mut engine = SingleNodeEngine::new();
            engine.load(rel).unwrap();
            b.iter(|| {
                let (candidates, queries) = engine.ground_atoms().unwrap();
                assert!(queries <= 6);
                std::hint::black_box(candidates.len())
            });
        });

        group.bench_with_input(
            BenchmarkId::new("probkb_semi_naive", rules),
            &rel,
            |b, rel| {
                let mut engine = SemiNaiveEngine::new();
                engine.load(rel).unwrap();
                b.iter(|| {
                    // First-iteration delta = whole KB; ≤ 2 queries per
                    // partition either way.
                    let (candidates, queries) = engine.ground_atoms().unwrap();
                    assert!(queries <= 12);
                    std::hint::black_box(candidates.len())
                });
            },
        );

        group.bench_with_input(BenchmarkId::new("tuffy_per_rule", rules), &rel, |b, rel| {
            let mut engine = TuffyEngine::new();
            engine.load(rel).unwrap();
            b.iter(|| {
                let (candidates, queries) = engine.ground_atoms().unwrap();
                // M tables deduplicate identical synthetic rules, so the
                // query count can fall slightly below the nominal target.
                assert!(queries > rules / 2 && queries <= rules);
                std::hint::black_box(candidates.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ground_atoms);
criterion_main!(benches);
