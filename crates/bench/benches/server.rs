//! Multi-client server throughput (ISSUE 8): queries per second through
//! the full wire path — frame encode, TCP, session thread, epoch-snapshot
//! read, frame decode — at 1, 8, and 64 concurrent connections, with and
//! without a concurrent delta writer.
//!
//! Numbers land in EXPERIMENTS.md. Caveat there applies here: the
//! container is effectively 1 CPU, so connection counts past 1 measure
//! scheduling fairness and per-session overhead, not parallel speedup.
//!
//! Flags: `--scale` (ReVerb-Sherlock scale, default 0.002), `--secs`
//! (measure window per point, default 2), `--conns` (comma list,
//! default `1,8,64`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use probkb::prelude::{generate, GibbsConfig, GroundingConfig, ReverbConfig};
use probkb_bench::{flag, row};
use probkb_client::prelude::{Client, FactRef};
use probkb_server::prelude::{start, ServerConfig, ServerHandle};

fn serve(scale: f64) -> ServerHandle {
    let kb = generate(&ReverbConfig::scaled(scale));
    start(
        kb,
        ServerConfig {
            max_sessions: 1024,
            grounding: GroundingConfig {
                apply_constraints: false,
                ..GroundingConfig::default()
            },
            gibbs: GibbsConfig {
                burn_in: 50,
                samples: 300,
                ..GibbsConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server start")
}

/// Hammer the server from `conns` connections for `window`; returns
/// (requests served, elapsed).
fn measure(addr: &str, conns: usize, facts: u64, window: Duration) -> (u64, Duration) {
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let start_at = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|w| {
            let addr = addr.to_string();
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut id = (w as u64 * 7919) % facts.max(1);
                while !stop.load(Ordering::Relaxed) {
                    // 2:1 FACT:MARGINAL mix over the id space.
                    let fact_ref = FactRef::Id(id as i64);
                    let ok = if id % 3 == 2 {
                        client.marginal(fact_ref).is_ok()
                    } else {
                        client.fact(fact_ref).is_ok()
                    };
                    assert!(ok, "read failed mid-bench");
                    served.fetch_add(1, Ordering::Relaxed);
                    id = (id + 1) % facts.max(1);
                }
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("bench worker");
    }
    (served.load(Ordering::Relaxed), start_at.elapsed())
}

fn main() {
    let scale: f64 = flag("scale", 0.002);
    let secs: u64 = flag("secs", 2);
    let conns_spec: String = flag("conns", "1,8,64".to_string());
    let conns: Vec<usize> = conns_spec
        .split(',')
        .map(|c| c.trim().parse().expect("bad --conns"))
        .collect();

    let handle = serve(scale);
    let addr = handle.addr().to_string();
    let state = handle.shared().current.load();
    let facts = state.num_facts();
    eprintln!(
        "# server up: scale={scale} facts={facts} inferred={} factors={}",
        state.num_inferred(),
        state.num_factors()
    );

    row(&["conns".into(), "requests".into(), "secs".into(), "qps".into()]);
    for &c in &conns {
        // Warm-up pass primes connections and the scheduler.
        let _ = measure(&addr, c, facts, Duration::from_millis(300));
        let (requests, elapsed) = measure(&addr, c, facts, Duration::from_secs(secs));
        let qps = requests as f64 / elapsed.as_secs_f64();
        row(&[
            c.to_string(),
            requests.to_string(),
            format!("{:.3}", elapsed.as_secs_f64()),
            format!("{qps:.0}"),
        ]);
    }

    // One point with a live writer: the same 8-connection read load
    // while a writer commits small deltas as fast as the writer thread
    // lets it — shows reads stay served during grounding/resampling.
    let stop = Arc::new(AtomicBool::new(false));
    let deltas = Arc::new(AtomicU64::new(0));
    let writer = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let deltas = Arc::clone(&deltas);
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("writer connect");
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let text = format!("fact 0.60 bench_rel(bx{n}:benchC, by{n}:benchC)");
                client.apply_delta(&text).expect("bench delta");
                deltas.fetch_add(1, Ordering::Relaxed);
                n += 1;
            }
        })
    };
    let (requests, elapsed) = measure(&addr, 8, facts, Duration::from_secs(secs));
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("bench writer");
    let qps = requests as f64 / elapsed.as_secs_f64();
    row(&[
        "8+writer".into(),
        requests.to_string(),
        format!("{:.3}", elapsed.as_secs_f64()),
        format!("{qps:.0} ({} deltas committed)", deltas.load(Ordering::Relaxed)),
    ]);

    let mut client = Client::connect(&addr).expect("shutdown connect");
    client.shutdown().expect("shutdown");
    handle.join();
}
