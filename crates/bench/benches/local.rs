//! Query-time local grounding bench: time-to-first-marginal for one
//! query fact, local (backward-chain + budgeted subgraph inference)
//! vs full (factor graph over the whole `TΦ` + partitioned Gibbs).
//!
//! Both sides start from the same grounded closure — the comparison is
//! the *query-time* cost: what a reader pays between "which marginal do
//! you want?" and "here it is". The full side pays graph construction
//! plus a whole-KB sampling pass; the local side pays index build +
//! best-first expansion + inference over the admitted subgraph (exact
//! when ≤ 20 variables). The index build is amortizable across queries,
//! so the repeat-query (warm grounder / cache hit) times are reported
//! too.
//!
//! Manual harness; `MICROBENCH_SAMPLES=<n>` overrides repetitions.

use std::time::{Duration, Instant};

use probkb_core::prelude::*;
use probkb_datagen::prelude::*;
use probkb_factorgraph::prelude::from_phi;
use probkb_inference::prelude::{partitioned_marginals, GibbsConfig, LocalSession};
use probkb_kb::prelude::ProbKb;

fn reps() -> usize {
    std::env::var("MICROBENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Table-2-scale synthetic KB (same generator family as the delta and
/// grounding benches).
fn workload() -> ProbKb {
    let seeded = generate(&ReverbConfig {
        entities: 8_000,
        classes: 10,
        relations: 200,
        facts: 20_000,
        rules: 150,
        functional_frac: 0.0,
        pseudo_frac: 0.0,
        zipf_s: 0.8,
        rule_zipf_s: 0.6,
        seed: 7,
    });
    s1_with_rules(&seeded, 250, 3)
}

fn config() -> GroundingConfig {
    GroundingConfig {
        apply_constraints: false,
        max_total_facts: Some(500_000),
        ..GroundingConfig::default()
    }
}

/// Production-default sampling effort (`GibbsConfig::default()` burn-in
/// and samples — what the server's read sessions run), pinned seed and
/// single worker so both sides are deterministic and comparable.
fn gibbs() -> GibbsConfig {
    GibbsConfig {
        seed: 9,
        chains: 2,
        workers: Some(1),
        ..GibbsConfig::default()
    }
}

fn secs(d: Duration) -> String {
    if d < Duration::from_millis(1) {
        format!("{:.1}us", d.as_secs_f64() * 1e6)
    } else if d < Duration::from_secs(1) {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.3}s", d.as_secs_f64())
    }
}

fn main() {
    let reps = reps();
    let kb = workload();
    let session = DeltaSession::new(kb.clone(), config()).expect("ground");
    let facts = session.facts();

    // Query mix: inferred facts (the interesting case — their marginal
    // does not exist before inference runs), spread across the id space.
    let inferred: Vec<i64> = facts
        .rows()
        .iter()
        .filter(|row| row[tpi::W].is_null())
        .map(|row| row[tpi::I].as_int().expect("I"))
        .collect();
    assert!(!inferred.is_empty(), "workload derived nothing");
    let queries: Vec<i64> = [0, inferred.len() / 4, inferred.len() / 2, inferred.len() - 1]
        .into_iter()
        .map(|i| inferred[i])
        .collect();
    println!(
        "local bench: {} facts ({} inferred), {} factors, {} rules, {} queries, {} reps",
        facts.len(),
        inferred.len(),
        session.factors().len(),
        kb.rules.len(),
        queries.len(),
        reps
    );

    // ---------------- full expand: graph + whole-KB Gibbs ----------------
    let mut full = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let graph = from_phi(session.factors());
        let run = partitioned_marginals(&graph.graph, &gibbs());
        let v = graph.var_of(queries[0]).expect("query var");
        std::hint::black_box(run.marginals.p[v]);
        full = full.min(t.elapsed());
    }
    println!("full:  first marginal in {} (whole-KB sampling)", secs(full));

    // ------------- local: cold build + expand + subgraph inference -------------
    for budget in [LocalBudget::uniform(256), LocalBudget::UNLIMITED] {
        let mut cold = Duration::MAX;
        let mut warm = Duration::MAX;
        let mut hit = Duration::MAX;
        let mut nodes = 0u64;
        for _ in 0..reps {
            // The epoch snapshot already exists server-side; cloning it
            // here is bench scaffolding, not query-time cost.
            let snapshot = facts.clone();
            let t = Instant::now();
            let grounder = LocalGrounder::new(snapshot, &kb.rules).expect("grounder build");
            let mut local = LocalSession::new(grounder, gibbs(), 0);
            let answer = local.marginal(queries[0], Some(budget)).expect("answer");
            cold = cold.min(t.elapsed());
            nodes = answer.nodes;
            std::hint::black_box(answer.p);

            // Warm grounder, different queries: the per-query cost once
            // the indexes exist.
            let t = Instant::now();
            for &q in &queries[1..] {
                let a = local.marginal(q, Some(budget)).expect("answer");
                std::hint::black_box(a.p);
            }
            warm = warm.min(t.elapsed() / (queries.len() - 1) as u32);

            // Cache hit: repeat the first query.
            let t = Instant::now();
            let again = local.marginal(queries[0], Some(budget)).expect("answer");
            hit = hit.min(t.elapsed());
            assert!(matches!(
                again.cache,
                LocalCacheStatus::Hit | LocalCacheStatus::Carried
            ));
        }
        println!(
            "local ({:>9}): first {} ({} nodes) | warm query {} | cache hit {}  -> {:.0}x vs full",
            budget.render(),
            secs(cold),
            nodes,
            secs(warm),
            secs(hit),
            full.as_secs_f64() / cold.as_secs_f64()
        );
    }
}
