//! Criterion microbenchmarks for the relational substrate's operators:
//! the hash join, grouped aggregate, and distinct that grounding leans on.

use probkb_support::microbench::{BenchmarkId, Criterion};
use probkb_support::{criterion_group, criterion_main};

use probkb_relational::prelude::*;

fn table(rows: usize, keys: i64) -> Table {
    Table::from_rows_unchecked(
        Schema::ints(&["k", "v"]),
        (0..rows as i64)
            .map(|i| vec![Value::Int(i % keys), Value::Int(i)])
            .collect(),
    )
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational_operators");
    group.sample_size(20);

    for rows in [10_000usize, 100_000] {
        let cat = Catalog::new();
        cat.create_or_replace("t", table(rows, 500));
        cat.create_or_replace("dim", table(500, 500));
        let exec = Executor::new(&cat);

        group.bench_with_input(BenchmarkId::new("hash_join", rows), &rows, |b, _| {
            let plan = Plan::scan("t").hash_join(Plan::scan("dim"), vec![0], vec![0]);
            b.iter(|| std::hint::black_box(exec.execute_table(&plan).unwrap().len()));
        });

        group.bench_with_input(BenchmarkId::new("aggregate", rows), &rows, |b, _| {
            let plan = Plan::scan("t").aggregate(
                vec![0],
                vec![
                    AggExpr::new(AggFunc::CountStar, "n"),
                    AggExpr::new(AggFunc::Min(1), "mn"),
                ],
            );
            b.iter(|| std::hint::black_box(exec.execute_table(&plan).unwrap().len()));
        });

        group.bench_with_input(BenchmarkId::new("distinct", rows), &rows, |b, _| {
            let plan = Plan::scan("t").project_cols(&[0], &["k"]).distinct();
            b.iter(|| std::hint::black_box(exec.execute_table(&plan).unwrap().len()));
        });

        group.bench_with_input(BenchmarkId::new("filter", rows), &rows, |b, _| {
            let plan = Plan::scan("t").filter(Expr::col(0).lt(Expr::lit(100i64)));
            b.iter(|| std::hint::black_box(exec.execute_table(&plan).unwrap().len()));
        });
    }
    group.finish();
}

/// Thread-scaling sweep over the morsel-driven executor: the same join
/// and aggregate plans at 1/2/4/8 worker threads. On a multi-core host
/// the parallel runs should beat serial from ~4 threads; on a single
/// hardware thread they only measure the fork-join overhead.
fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_thread_scaling");
    group.sample_size(10);

    let cat = Catalog::new();
    cat.create_or_replace("t", table(200_000, 4_000));
    cat.create_or_replace("dim", table(4_000, 4_000));

    for threads in [1usize, 2, 4, 8] {
        let exec = Executor::new(&cat).with_threads(threads);

        group.bench_with_input(BenchmarkId::new("hash_join", threads), &threads, |b, _| {
            let plan = Plan::scan("t").hash_join(Plan::scan("dim"), vec![0], vec![0]);
            b.iter(|| std::hint::black_box(exec.execute_table(&plan).unwrap().len()));
        });

        group.bench_with_input(BenchmarkId::new("aggregate", threads), &threads, |b, _| {
            let plan = Plan::scan("t").aggregate(
                vec![0],
                vec![
                    AggExpr::new(AggFunc::CountStar, "n"),
                    AggExpr::new(AggFunc::Sum(1), "s"),
                    AggExpr::new(AggFunc::Max(1), "mx"),
                ],
            );
            b.iter(|| std::hint::black_box(exec.execute_table(&plan).unwrap().len()));
        });

        group.bench_with_input(
            BenchmarkId::new("join_aggregate", threads),
            &threads,
            |b, _| {
                let plan = Plan::scan("t")
                    .hash_join(Plan::scan("dim"), vec![0], vec![0])
                    .aggregate(vec![0], vec![AggExpr::new(AggFunc::CountStar, "n")]);
                b.iter(|| std::hint::black_box(exec.execute_table(&plan).unwrap().len()));
            },
        );
    }
    group.finish();
}

/// Out-of-core sweep: the same join/aggregate/scan plans over a fact
/// table spilled into buffer-managed pages, at pool sizes from "fits
/// entirely" down to a hard memory cap well below the table's resident
/// size. The in-memory numbers above are the baseline; the gap at each
/// pool size is the price of paging (decode + eviction churn), and the
/// results are byte-identical at every size by construction.
fn bench_out_of_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_out_of_core");
    group.sample_size(10);

    let rows = 200_000usize;
    // 64 pages = 512 KiB of buffer pool against a ~9 MiB table.
    for pool_pages in [64usize, 256, 4096] {
        let cat = Catalog::new();
        let ctx = StorageContext::in_temp(pool_pages).unwrap();
        cat.set_spill_policy(Some(SpillPolicy {
            ctx,
            threshold_rows: 4096,
        }));
        cat.create_or_replace("t", table(rows, 4_000));
        cat.create_or_replace("dim", table(4_000, 4_000));
        assert!(cat.get("t").unwrap().is_spilled());
        let exec = Executor::new(&cat);

        group.bench_with_input(
            BenchmarkId::new("hash_join", pool_pages),
            &pool_pages,
            |b, _| {
                let plan = Plan::scan("t").hash_join(Plan::scan("dim"), vec![0], vec![0]);
                b.iter(|| std::hint::black_box(exec.execute_table(&plan).unwrap().len()));
            },
        );

        group.bench_with_input(
            BenchmarkId::new("aggregate", pool_pages),
            &pool_pages,
            |b, _| {
                let plan = Plan::scan("t").aggregate(
                    vec![0],
                    vec![
                        AggExpr::new(AggFunc::CountStar, "n"),
                        AggExpr::new(AggFunc::Min(1), "mn"),
                    ],
                );
                b.iter(|| std::hint::black_box(exec.execute_table(&plan).unwrap().len()));
            },
        );

        group.bench_with_input(
            BenchmarkId::new("filter", pool_pages),
            &pool_pages,
            |b, _| {
                let plan = Plan::scan("t").filter(Expr::col(0).lt(Expr::lit(100i64)));
                b.iter(|| std::hint::black_box(exec.execute_table(&plan).unwrap().len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_operators, bench_thread_scaling, bench_out_of_core);
criterion_main!(benches);
