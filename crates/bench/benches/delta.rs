//! Incremental expansion benchmark: merging a 1% fact delta into a live
//! session vs re-running from scratch, for (a) grounding alone and
//! (b) time-to-updated-marginals (grounding + graph splice + blanket
//! resampling vs full re-ground + cold sampling).
//!
//! Manual harness (not the microbench shim): each side needs fresh
//! mutable state per repetition, built *outside* the timed region.
//! `MICROBENCH_SAMPLES=<n>` overrides the repetition count (CI smoke).

use std::time::{Duration, Instant};

use probkb::prelude::{IncrementalPipeline, PipelineDelta};
use probkb_core::prelude::*;
use probkb_datagen::prelude::*;
use probkb_inference::prelude::GibbsConfig;
use probkb_kb::prelude::ProbKb;

fn reps() -> usize {
    std::env::var("MICROBENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

fn workload() -> (ProbKb, KbDelta, ProbKb) {
    let seeded = generate(&ReverbConfig {
        entities: 8_000,
        classes: 10,
        relations: 200,
        facts: 20_000,
        rules: 150,
        functional_frac: 0.0,
        pseudo_frac: 0.0,
        zipf_s: 0.8,
        rule_zipf_s: 0.6,
        seed: 7,
    });
    let union = s1_with_rules(&seeded, 250, 3);
    let cut = union.facts.len() - union.facts.len() / 100;
    let mut base = union.clone();
    base.facts.truncate(cut);
    let delta = KbDelta {
        facts: union.facts[cut..].to_vec(),
        rules: vec![],
    };
    (base, delta, union)
}

fn config() -> GroundingConfig {
    GroundingConfig {
        apply_constraints: false,
        max_total_facts: Some(500_000),
        ..GroundingConfig::default()
    }
}

fn gibbs() -> GibbsConfig {
    GibbsConfig {
        burn_in: 50,
        samples: 300,
        seed: 9,
        chains: 2,
        workers: Some(1),
        ..GibbsConfig::default()
    }
}

fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

fn main() {
    let reps = reps();
    let (base, delta, union) = workload();
    let n_delta = delta.facts.len();
    println!(
        "delta bench: {} base facts, {} delta facts ({}%), {} rules, {} reps",
        base.facts.len(),
        n_delta,
        100 * n_delta / union.facts.len().max(1),
        union.rules.len(),
        reps
    );

    // ---------------- grounding only ----------------
    let mut full_ground = Duration::MAX;
    let mut oracle_fp = String::new();
    for _ in 0..reps {
        let mut engine = SemiNaiveEngine::new();
        let t = Instant::now();
        let out = ground(&union, &mut engine, &config()).expect("full ground");
        full_ground = full_ground.min(t.elapsed());
        oracle_fp = format!("{:?}{:?}", out.facts, out.factors);
    }

    let session0 = DeltaSession::new(base.clone(), config()).expect("base ground");
    let mut incr_ground = Duration::MAX;
    let mut incr_fp = String::new();
    let mut rounds = 0usize;
    for _ in 0..reps {
        let mut session = DeltaSession::from_parts(
            session0.kb().clone(),
            config(),
            session0.facts().clone(),
            session0.factors().clone(),
            session0.fact_iteration().clone(),
        );
        // A live session does this maintenance between deltas, off the
        // update critical path.
        session.prepare().expect("prepare");
        let t = Instant::now();
        let applied = session.apply_delta(&delta).expect("apply_delta");
        incr_ground = incr_ground.min(t.elapsed());
        rounds = applied.report.rounds.len();
        incr_fp = format!("{:?}{:?}", session.facts(), session.factors());
    }
    assert_eq!(incr_fp, oracle_fp, "incremental grounding diverged");

    println!(
        "grounding:  full {} vs delta {} ({} rounds)  -> {:.1}x",
        secs(full_ground),
        secs(incr_ground),
        rounds,
        full_ground.as_secs_f64() / incr_ground.as_secs_f64()
    );

    // ------------- time to updated marginals -------------
    let mut full_pipe = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let p = IncrementalPipeline::new(union.clone(), config(), gibbs()).expect("full pipeline");
        full_pipe = full_pipe.min(t.elapsed());
        std::hint::black_box(p.marginals().len());
    }

    let mut incr_pipe = Duration::MAX;
    let mut last: Option<PipelineDelta> = None;
    for _ in 0..reps {
        let mut p =
            IncrementalPipeline::new(base.clone(), config(), gibbs()).expect("base pipeline");
        let t = Instant::now();
        let out = p.apply_delta(&delta).expect("pipeline delta");
        incr_pipe = incr_pipe.min(t.elapsed());
        last = Some(out);
    }
    if let Some(out) = last {
        println!(
            "  blanket: resampled {}/{} vars across {} active/{} shards",
            out.inference.touched, out.inference.vars, out.inference.active_shards,
            out.inference.shards
        );
    }
    println!(
        "marginals:  full {} vs delta {}  -> {:.1}x",
        secs(full_pipe),
        secs(incr_pipe),
        full_pipe.as_secs_f64() / incr_pipe.as_secs_f64()
    );
}
