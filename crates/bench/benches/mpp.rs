//! Criterion microbenchmarks for MPP motion strategies: the ablation
//! behind Figure 4 and §4.4's redistributed materialized views.

use probkb_support::microbench::{BenchmarkId, Criterion};
use probkb_support::{criterion_group, criterion_main};

use probkb_mpp::prelude::*;
use probkb_relational::prelude::*;

fn table(rows: usize, keys: i64) -> Table {
    Table::from_rows_unchecked(
        Schema::ints(&["k", "v"]),
        (0..rows as i64)
            .map(|i| vec![Value::Int(i % keys), Value::Int(i)])
            .collect(),
    )
}

fn bench_motions(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpp_join_strategies");
    group.sample_size(10);
    let segments = 8;

    for rows in [50_000usize, 200_000] {
        // Collocated: both sides hash-distributed on the key.
        let collocated = Cluster::new(segments, NetworkModel::gigabit());
        collocated
            .create_table("t", table(rows, 1000), DistPolicy::Hash(vec![0]))
            .unwrap();
        collocated
            .create_table("dim", table(1000, 1000), DistPolicy::Hash(vec![0]))
            .unwrap();
        group.bench_with_input(BenchmarkId::new("collocated_join", rows), &rows, |b, _| {
            let plan = DPlan::scan("t").hash_join(DPlan::scan("dim"), vec![0], vec![0]);
            let exec = DExecutor::new(&collocated);
            b.iter(|| {
                let (parts, _) = exec.execute(&plan).unwrap();
                std::hint::black_box(parts.iter().map(|t| t.len()).sum::<usize>())
            });
        });

        // Views absent: broadcast the dimension side every time.
        let scattered = Cluster::new(segments, NetworkModel::gigabit());
        scattered
            .create_table("t", table(rows, 1000), DistPolicy::RoundRobin)
            .unwrap();
        scattered
            .create_table("dim", table(1000, 1000), DistPolicy::MasterOnly)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("broadcast_join", rows), &rows, |b, _| {
            let plan =
                DPlan::scan("t").hash_join(DPlan::scan("dim").broadcast(), vec![0], vec![0]);
            let exec = DExecutor::new(&scattered);
            b.iter(|| {
                let (parts, _) = exec.execute(&plan).unwrap();
                std::hint::black_box(parts.iter().map(|t| t.len()).sum::<usize>())
            });
        });

        // Redistribute the fact side (what ProbKB-pn pays per query).
        group.bench_with_input(
            BenchmarkId::new("redistribute_then_join", rows),
            &rows,
            |b, _| {
                let plan = DPlan::scan("t")
                    .redistribute(vec![0])
                    .hash_join(DPlan::scan("dim").redistribute(vec![0]), vec![0], vec![0]);
                let exec = DExecutor::new(&scattered);
                b.iter(|| {
                    let (parts, _) = exec.execute(&plan).unwrap();
                    std::hint::black_box(parts.iter().map(|t| t.len()).sum::<usize>())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_motions);
criterion_main!(benches);
