//! `probkb-server`: serve a knowledge base over TCP.
//!
//! ```sh
//! # Serve a KB-text file on an ephemeral port:
//! probkb-server --kb my_kb.txt --addr 127.0.0.1:0
//!
//! # Serve the Table-2 synthetic ReVerb-Sherlock KB at 0.2% scale:
//! probkb-server --reverb-scale 0.002 --addr 127.0.0.1:7421
//! ```
//!
//! Flags (each with a `PROBKB_SERVER_*` env-var fallback):
//! `--addr` / `PROBKB_SERVER_ADDR` (default `127.0.0.1:0`),
//! `--kb FILE` / `PROBKB_SERVER_KB`, `--reverb-scale S` /
//! `PROBKB_SERVER_REVERB_SCALE`, `--wal FILE` / `PROBKB_SERVER_WAL`,
//! `--threads N` / `PROBKB_THREADS`, `--idle-timeout-ms` /
//! `PROBKB_SERVER_IDLE_TIMEOUT_MS`, `--write-timeout-ms` /
//! `PROBKB_SERVER_WRITE_TIMEOUT_MS`, `--max-sessions` /
//! `PROBKB_SERVER_MAX_SESSIONS`, `--burn-in`, `--samples`, `--seed`,
//! `--max-iterations`.
//!
//! On success it prints `probkb-server listening on ADDR ...` and serves
//! until a client sends `SHUTDOWN` (or the process is killed).

use std::time::Duration;

use probkb_datagen::prelude::{generate, ReverbConfig};
use probkb_kb::prelude::{parse, ProbKb};
use probkb_server::{start, ServerConfig};

/// `--name value` / `--name=value`, falling back to `env`, then `default`.
fn flag<T: std::str::FromStr>(name: &str, env: &str, default: T) -> T {
    let key = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix(&format!("{key}=")) {
            return value
                .parse()
                .unwrap_or_else(|_| panic!("bad value for {key}"));
        }
        if arg == &key {
            if let Some(value) = args.get(i + 1) {
                return value
                    .parse()
                    .unwrap_or_else(|_| panic!("bad value for {key}"));
            }
        }
    }
    if let Ok(value) = std::env::var(env) {
        return value
            .parse()
            .unwrap_or_else(|_| panic!("bad value for {env}"));
    }
    default
}

fn opt_flag(name: &str, env: &str) -> Option<String> {
    let sentinel = String::new();
    let value: String = flag(name, env, sentinel);
    if value.is_empty() {
        None
    } else {
        Some(value)
    }
}

fn load_kb() -> ProbKb {
    if let Some(path) = opt_flag("kb", "PROBKB_SERVER_KB") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read --kb {path}: {e}"));
        return parse(&text)
            .unwrap_or_else(|e| panic!("cannot parse --kb {path}: {e}"))
            .build();
    }
    if let Some(scale) = opt_flag("reverb-scale", "PROBKB_SERVER_REVERB_SCALE") {
        let scale: f64 = scale.parse().expect("bad --reverb-scale");
        return generate(&ReverbConfig::scaled(scale));
    }
    eprintln!("probkb-server: need --kb FILE or --reverb-scale S");
    std::process::exit(2);
}

fn main() {
    let kb = load_kb();
    let stats = kb.stats();

    let mut config = ServerConfig {
        addr: flag("addr", "PROBKB_SERVER_ADDR", "127.0.0.1:0".to_string()),
        idle_timeout: Duration::from_millis(flag(
            "idle-timeout-ms",
            "PROBKB_SERVER_IDLE_TIMEOUT_MS",
            60_000u64,
        )),
        write_timeout: Duration::from_millis(flag(
            "write-timeout-ms",
            "PROBKB_SERVER_WRITE_TIMEOUT_MS",
            10_000u64,
        )),
        max_sessions: flag("max-sessions", "PROBKB_SERVER_MAX_SESSIONS", 256usize),
        wal_path: opt_flag("wal", "PROBKB_SERVER_WAL").map(Into::into),
        ..ServerConfig::default()
    };
    config.grounding.max_iterations = flag("max-iterations", "PROBKB_SERVER_MAX_ITER", 15usize);
    if let Some(threads) = opt_flag("threads", "PROBKB_SERVER_THREADS") {
        config.grounding.threads = Some(threads.parse().expect("bad --threads"));
    }
    config.gibbs.burn_in = flag("burn-in", "PROBKB_SERVER_BURN_IN", 50usize);
    config.gibbs.samples = flag("samples", "PROBKB_SERVER_SAMPLES", 500usize);
    config.gibbs.seed = flag("seed", "PROBKB_SERVER_SEED", 0x9e3779b9u64);

    eprintln!(
        "probkb-server: grounding {} facts / {} rules / {} constraints ...",
        stats.facts, stats.rules, stats.constraints
    );
    let handle = match start(kb, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("probkb-server: {e}");
            std::process::exit(1);
        }
    };
    let state = handle.shared().current.load();
    // The parseable line tooling waits for (ci.sh greps the port off it).
    println!(
        "probkb-server listening on {} (epoch={} facts={} inferred={} factors={})",
        handle.addr(),
        state.epoch,
        state.num_facts(),
        state.num_inferred(),
        state.num_factors()
    );
    handle.join();
    println!("probkb-server: graceful shutdown complete");
}
