//! Per-connection session loop.
//!
//! Each accepted connection gets its own thread, a session id, and
//! read/write deadlines on the socket — a client that stops reading or
//! writing mid-frame times out and only its own session dies; it cannot
//! wedge the listener, the writer, or other sessions. Malformed bytes
//! (bad magic, bad CRC, oversized length prefix, unknown opcode) get a
//! best-effort protocol error response and the session is dropped; the
//! server itself is never poisoned.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

use probkb_client::protocol::{
    decode_request, encode_response, Request, Response, PROTOCOL_VERSION,
};
use probkb_storage::frame::{is_clean_eof, read_frame, read_magic, write_frame, FrameKind};
use probkb_storage::StorageError;

use crate::epoch::serve_read;
use crate::writer::WriteOp;
use crate::Shared;

fn send(stream: &mut TcpStream, response: &Response) -> bool {
    let body = encode_response(response);
    write_frame(stream, FrameKind::Response, &body).is_ok() && stream.flush().is_ok()
}

fn proto_error(message: impl Into<String>) -> Response {
    Response::Error {
        code: "protocol".into(),
        message: message.into(),
    }
}

/// Handle one request. Reads resolve against a single `load` of the
/// published epoch; writes are forwarded to the writer thread.
fn handle(shared: &Shared, session: u64, request: &Request) -> Response {
    if let Some(response) = serve_read(&shared.current.load(), request) {
        return response;
    }
    match request {
        // Not in serve_read: the local-answer cache memoizes across
        // requests, so this path is deliberately outside the pure
        // read function (see `EpochState::serve_local`). Still served
        // from a single epoch load, never from the writer thread.
        Request::MarginalLocal { fact, budget } => {
            shared.current.load().serve_local(fact, *budget)
        }
        Request::Ping => Response::Pong {
            epoch: shared.current.load().epoch,
            protocol: PROTOCOL_VERSION,
            session,
        },
        Request::Stats => {
            let state = shared.current.load();
            Response::Stats(probkb_client::protocol::ServerStats {
                protocol: PROTOCOL_VERSION,
                facts: state.num_facts(),
                inferred: state.num_inferred(),
                factors: state.num_factors(),
                epoch: state.epoch,
                sessions_active: shared.sessions_active.load(Ordering::SeqCst),
                sessions_total: shared.sessions_total.load(Ordering::SeqCst),
            })
        }
        Request::ApplyDelta { text } => {
            let sender = shared.writer.lock().clone();
            let Some(tx) = sender else {
                return Response::Error {
                    code: "shutting-down".into(),
                    message: "server is shutting down; writes are closed".into(),
                };
            };
            let (reply_tx, reply_rx) = sync_channel(1);
            if tx
                .send(WriteOp {
                    text: text.clone(),
                    reply: reply_tx,
                })
                .is_err()
            {
                return Response::Error {
                    code: "shutting-down".into(),
                    message: "writer stopped".into(),
                };
            }
            match reply_rx.recv() {
                Ok(response) => response,
                Err(_) => Response::Error {
                    code: "internal".into(),
                    message: "writer dropped the request".into(),
                },
            }
        }
        Request::Shutdown => {
            crate::initiate_shutdown(shared);
            Response::ShuttingDown {
                epoch: shared.current.load().epoch,
            }
        }
        // serve_read covered Fact/Marginal/Lineage above.
        _ => proto_error("request not servable"),
    }
}

/// Run one session to completion. The caller has already bumped
/// `sessions_total`; this decrements `sessions_active` on every exit
/// path.
pub fn run_session(mut stream: TcpStream, shared: Arc<Shared>, session: u64) {
    let _guard = ActiveGuard(&shared);
    if stream
        .set_read_timeout(Some(shared.config.idle_timeout))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.config.write_timeout))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }

    // A peer that is not speaking the protocol is dropped immediately.
    if let Err(e) = read_magic(&mut stream) {
        if !is_clean_eof(&e) {
            let _ = send(&mut stream, &proto_error(format!("bad handshake: {e}")));
        }
        return;
    }

    loop {
        let (kind, body) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(e) if is_clean_eof(&e) => return, // polite hang-up
            Err(StorageError::Corrupt(msg)) | Err(StorageError::Format(msg)) => {
                // Bad CRC, oversized length, unknown kind: tell the peer
                // (best-effort) and drop the session — resynchronizing a
                // corrupt stream is not worth the ambiguity.
                let _ = send(&mut stream, &proto_error(msg));
                return;
            }
            Err(_) => return, // timeout or transport failure
        };
        if kind != FrameKind::Request {
            let _ = send(&mut stream, &proto_error("expected a request frame"));
            return;
        }
        let request = match decode_request(&body) {
            Ok(request) => request,
            Err(e) => {
                // The frame was intact (CRC passed) but the body is
                // malformed: answer with an error and keep the session —
                // the stream itself is still synchronized.
                if !send(&mut stream, &proto_error(e.to_string())) {
                    return;
                }
                continue;
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        let response = handle(&shared, session, &request);
        if !send(&mut stream, &response) || shutdown {
            return;
        }
    }
}

/// Decrements `sessions_active` on drop, so panics and early returns
/// cannot leak the counter.
struct ActiveGuard<'a>(&'a Shared);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.sessions_active.fetch_sub(1, Ordering::SeqCst);
    }
}
