//! The ProbKB query-serving server (DESIGN.md, "Client/server
//! architecture").
//!
//! Turns the run-once library into a long-lived service: a threaded TCP
//! listener speaking the `probkb-client` wire protocol, serving
//! `FACT`/`MARGINAL`/`LINEAGE`/`STATS` reads from immutable published
//! [`EpochState`] snapshots while a single writer thread applies
//! `APPLY_DELTA` batches to the live [`IncrementalPipeline`] in the
//! background.
//!
//! Snapshot isolation, concretely:
//!
//! 1. the writer grounds + resamples a delta on state only it can touch;
//! 2. it appends the delta to the WAL and fsyncs (when durability is
//!    configured) — the commit point;
//! 3. it builds a fresh immutable [`EpochState`] and publishes it with
//!    one atomic `Arc` swap.
//!
//! Readers `load` the published `Arc` once per request and answer
//! entirely from it, so every response is consistent with exactly one
//! committed epoch — proven end-to-end by the concurrent differential
//! suite in `tests/concurrent_isolation.rs`.
//!
//! [`EpochState`]: epoch::EpochState
//! [`IncrementalPipeline`]: probkb::pipeline::IncrementalPipeline

#![warn(missing_docs)]

pub mod epoch;
pub mod session;
pub mod writer;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use probkb::pipeline::IncrementalPipeline;
use probkb_client::protocol::{encode_response, Response};
use probkb_core::prelude::GroundingConfig;
use probkb_inference::prelude::GibbsConfig;
use probkb_kb::prelude::ProbKb;
use probkb_storage::frame::{write_frame, FrameKind};
use probkb_storage::wal::{scan_wal, WalWriter};
use probkb_support::sync::{ArcCell, Mutex};

use epoch::EpochState;
use writer::WriteOp;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (the bound address
    /// is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Per-session idle deadline: a connection that sends nothing for
    /// this long is dropped.
    pub idle_timeout: Duration,
    /// Per-response write deadline: a client that stops reading cannot
    /// wedge a session thread past this.
    pub write_timeout: Duration,
    /// Connection cap; excess connections get a `busy` error response
    /// and are closed without a session thread.
    pub max_sessions: usize,
    /// When set, every committed delta is appended (as its KB-text) to
    /// this WAL and fsynced before publication; on startup an existing
    /// WAL is replayed through the same parse → apply path.
    pub wal_path: Option<PathBuf>,
    /// Grounding configuration for the initial run and every delta.
    pub grounding: GroundingConfig,
    /// Sampler schedule for the initial inference pass and the
    /// per-delta blanket resampling.
    pub gibbs: GibbsConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            idle_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            max_sessions: 256,
            wal_path: None,
            grounding: GroundingConfig::default(),
            gibbs: GibbsConfig::default(),
        }
    }
}

/// State shared between the listener, sessions, and the writer.
pub struct Shared {
    /// The published epoch; readers `load`, the writer `store`s.
    pub current: ArcCell<EpochState>,
    /// Sender side of the writer channel. Taken (set to `None`) at
    /// shutdown so the writer loop drains and exits.
    pub writer: Mutex<Option<Sender<WriteOp>>>,
    /// Set once by [`initiate_shutdown`].
    pub shutdown: AtomicBool,
    /// Sessions currently running.
    pub sessions_active: AtomicU64,
    /// Sessions accepted since startup.
    pub sessions_total: AtomicU64,
    /// Deadlines and caps, visible to session threads.
    pub config: ServerConfig,
    /// The bound listen address (for the self-connect shutdown wake).
    pub addr: SocketAddr,
}

/// Flip the server into shutdown: close the write channel (the writer
/// drains and exits), mark the flag, and wake the accept loop with a
/// self-connection so it notices without waiting for a real client.
pub fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.writer.lock().take();
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}

/// A started server: its address and the threads to join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared state (tests reach the published epoch through this).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Ask the server to stop (idempotent, non-blocking).
    pub fn initiate_shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Block until the listener and writer have exited.
    pub fn join(mut self) {
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

/// Errors surfaced while starting the server.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or configuring the listener failed.
    Io(String),
    /// The initial grounding/inference run failed.
    Pipeline(String),
    /// WAL replay failed.
    Wal(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(detail) => write!(f, "server io error: {detail}"),
            ServerError::Pipeline(detail) => write!(f, "pipeline error: {detail}"),
            ServerError::Wal(detail) => write!(f, "wal error: {detail}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Ground `kb`, run the cold-start inference pass, replay any WAL, bind
/// the listener, publish epoch 0 (or the replayed epoch), and start
/// serving. Returns once the server is accepting connections.
pub fn start(kb: ProbKb, config: ServerConfig) -> Result<ServerHandle, ServerError> {
    let mut pipeline =
        IncrementalPipeline::new(kb, config.grounding.clone(), config.gibbs.clone())
            .map_err(|e| ServerError::Pipeline(e.to_string()))?;

    // Replay committed deltas from a previous run, in commit order,
    // through the same path live deltas take.
    let mut replayed: u64 = 0;
    let wal = match &config.wal_path {
        Some(path) => {
            let scan = scan_wal(path).map_err(|e| ServerError::Wal(e.to_string()))?;
            for frame in &scan.frames {
                let text = String::from_utf8(frame.clone())
                    .map_err(|_| ServerError::Wal("non-utf8 delta frame".into()))?;
                let delta = pipeline
                    .parse_delta(&text)
                    .map_err(|e| ServerError::Wal(e.to_string()))?;
                pipeline
                    .apply_delta(&delta)
                    .map_err(|e| ServerError::Wal(e.to_string()))?;
                replayed += 1;
            }
            Some(
                WalWriter::open_at(path, scan.valid_len)
                    .map_err(|e| ServerError::Wal(e.to_string()))?,
            )
        }
        None => None,
    };

    let listener =
        TcpListener::bind(&config.addr).map_err(|e| ServerError::Io(e.to_string()))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ServerError::Io(e.to_string()))?;

    let state = EpochState::from_pipeline(&pipeline, replayed);
    let (tx, rx) = channel();
    let shared = Arc::new(Shared {
        current: ArcCell::new(Arc::new(state)),
        writer: Mutex::new(Some(tx)),
        shutdown: AtomicBool::new(false),
        sessions_active: AtomicU64::new(0),
        sessions_total: AtomicU64::new(0),
        config,
        addr,
    });

    let writer_shared = Arc::clone(&shared);
    let writer_handle = thread::Builder::new()
        .name("probkb-writer".into())
        .spawn(move || writer::run_writer(pipeline, wal, writer_shared, rx))
        .map_err(|e| ServerError::Io(e.to_string()))?;

    let accept_shared = Arc::clone(&shared);
    let listener_handle = thread::Builder::new()
        .name("probkb-listener".into())
        .spawn(move || accept_loop(listener, accept_shared))
        .map_err(|e| ServerError::Io(e.to_string()))?;

    Ok(ServerHandle {
        shared,
        listener: Some(listener_handle),
        writer: Some(writer_handle),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_session: u64 = 1;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client) lands here.
            drop(stream);
            break;
        }
        let active = shared.sessions_active.load(Ordering::SeqCst);
        if active >= shared.config.max_sessions as u64 {
            reject_busy(stream);
            continue;
        }
        shared.sessions_active.fetch_add(1, Ordering::SeqCst);
        shared.sessions_total.fetch_add(1, Ordering::SeqCst);
        let session = next_session;
        next_session += 1;
        let session_shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name(format!("probkb-session-{session}"))
            .spawn(move || session::run_session(stream, session_shared, session));
        if spawned.is_err() {
            shared.sessions_active.fetch_sub(1, Ordering::SeqCst);
        }
    }
    // Drain: give running sessions a moment to finish their in-flight
    // request before the process exits.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while shared.sessions_active.load(Ordering::SeqCst) > 0
        && std::time::Instant::now() < deadline
    {
        thread::sleep(Duration::from_millis(10));
    }
}

fn reject_busy(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let response = Response::Error {
        code: "busy".into(),
        message: "session limit reached; retry later".into(),
    };
    let _ = write_frame(&mut stream, FrameKind::Response, &encode_response(&response));
}

/// Everything a server embedder needs.
pub mod prelude {
    pub use crate::epoch::{serve_read, EpochState};
    pub use crate::{initiate_shutdown, start, ServerConfig, ServerError, ServerHandle, Shared};
}
