//! The single writer thread: every mutation is serialized here.
//!
//! Sessions never touch the [`IncrementalPipeline`]; they enqueue a
//! [`WriteOp`] and block on its reply channel. The writer applies one
//! delta at a time — parse against the live id space, ground
//! incrementally, blanket-resample — then makes it durable (WAL frame +
//! fsync commit when a WAL is configured) and only *then* publishes the
//! new [`EpochState`] with one atomic swap. A reader can therefore
//! observe the pre-delta epoch or the post-delta epoch, never an
//! intermediate, and a crash after commit replays the delta on restart.
//!
//! Retractions (`retract `-prefixed statements) ride the same channel
//! and currently answer with the structured `unsupported` error from
//! [`DeltaSession::retract`] — atomically: a batch containing any
//! retraction fails whole, before any of its additions apply.
//!
//! [`DeltaSession::retract`]: probkb_core::delta::DeltaSession::retract

use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

use probkb::pipeline::IncrementalPipeline;
use probkb_client::protocol::{DeltaOutcome, Response};
use probkb_relational::prelude::Error as RelError;
use probkb_storage::wal::WalWriter;

use crate::epoch::EpochState;
use crate::Shared;

/// A mutation enqueued by a session.
pub struct WriteOp {
    /// KB-text statements (additions and/or `retract` lines).
    pub text: String,
    /// Where the session waits for the outcome.
    pub reply: SyncSender<Response>,
}

/// Split a delta batch into addition statements and retraction
/// statements (lines whose first token is `retract`, prefix stripped).
fn split_batch(text: &str) -> (String, String) {
    let mut additions = String::new();
    let mut retractions = String::new();
    for line in text.lines() {
        match line.trim_start().strip_prefix("retract ") {
            Some(rest) => {
                retractions.push_str(rest);
                retractions.push('\n');
            }
            None => {
                additions.push_str(line);
                additions.push('\n');
            }
        }
    }
    (additions, retractions)
}

fn error(code: &str, message: impl Into<String>) -> Response {
    Response::Error {
        code: code.into(),
        message: message.into(),
    }
}

fn apply_one(
    pipeline: &mut IncrementalPipeline,
    wal: &mut Option<WalWriter>,
    shared: &Shared,
    text: &str,
) -> Response {
    let (additions, retractions) = split_batch(text);

    // Retractions fail the whole batch before any addition applies.
    if !retractions.is_empty() {
        let retraction = match pipeline.parse_retraction(&retractions) {
            Ok(delta) => delta,
            Err(e) => return error("parse", e.to_string()),
        };
        return match pipeline.retract(&retraction) {
            Ok(()) => error("internal", "retract unexpectedly succeeded"),
            Err(RelError::Unsupported { feature, reason }) => error(
                "unsupported",
                format!("{feature} is not supported: {reason}"),
            ),
            Err(other) => error("internal", other.to_string()),
        };
    }

    let delta = match pipeline.parse_delta(&additions) {
        Ok(delta) => delta,
        Err(e) => return error("parse", e.to_string()),
    };
    let applied = match pipeline.apply_delta(&delta) {
        Ok(applied) => applied,
        Err(e) => return error("internal", e.to_string()),
    };

    // Durability point: the delta text is the WAL record (replayed
    // through the same parse → apply path on restart), committed before
    // the epoch becomes visible.
    if let Some(w) = wal {
        if let Err(e) = w.append(text.as_bytes()).and_then(|()| w.commit()) {
            return error("internal", format!("wal commit failed: {e}"));
        }
    }

    let epoch = shared.current.load().epoch + 1;
    let state = EpochState::from_pipeline(pipeline, epoch);
    // Carry the local-answer cache across the epoch: entries whose
    // support the delta's touched blanket provably missed survive; the
    // still-published previous epoch keeps its own copy.
    state.carry_local_cache(
        &shared.current.load(),
        &applied.touched_facts,
        &applied.remap,
        applied.grounding.full_fallback,
    );
    shared.current.store(Arc::new(state));

    // Off the commit critical path: precompute the next delta's
    // delta-independent grounding state while no write is in flight.
    let _ = pipeline.prepare();

    Response::DeltaApplied(DeltaOutcome {
        new_facts: applied.grounding.new_facts as u64,
        reused_facts: applied.grounding.reused_facts as u64,
        new_factors: applied.grounding.new_factors as u64,
        full_fallback: applied.grounding.full_fallback,
        epoch,
        annotate: applied.grounding.annotate(),
    })
}

/// The writer loop: drain ops until every sender is gone (shutdown drops
/// the sending side), then exit.
pub fn run_writer(
    mut pipeline: IncrementalPipeline,
    mut wal: Option<WalWriter>,
    shared: Arc<Shared>,
    rx: Receiver<WriteOp>,
) {
    while let Ok(op) = rx.recv() {
        let response = apply_one(&mut pipeline, &mut wal, &shared, &op.text);
        // A session that gave up waiting is fine — the delta (if any)
        // is already committed and published.
        let _ = op.reply.send(response);
    }
}
