//! Immutable published epochs and the pure read path.
//!
//! An [`EpochState`] is a self-contained, immutable snapshot of
//! everything the read path needs: the expanded fact table with stored
//! probabilities, name dictionaries, lookup indexes, and the `TΦ`
//! lineage. The writer thread builds one after every committed delta and
//! publishes it with a single atomic `Arc` swap
//! ([`probkb_support::sync::ArcCell`]); sessions `load` the cell once
//! per request and answer entirely from that snapshot — so a query can
//! observe epoch `k` or epoch `k+1`, but never a half-applied delta.
//!
//! [`serve_read`] is deliberately a *pure function* of
//! `(EpochState, Request)`: the concurrent differential test replays the
//! same requests against single-threaded oracle epochs and requires
//! byte-identical responses, which only holds if nothing ambient (time,
//! counters, RNG) leaks into the read path.

use std::collections::HashMap;

use probkb::pipeline::IncrementalPipeline;
use probkb_client::protocol::{
    CacheStatus, FactInfo, FactRef, LineageInfo, LocalMarginalInfo, MarginalInfo, MarginalSource,
    Request, Response,
};
use probkb_core::local::{LocalBudget, LocalCache, LocalCacheStatus, LocalGrounder};
use probkb_core::relmodel::tpi;
use probkb_factorgraph::prelude::Lineage;
use probkb_inference::prelude::{GibbsConfig, LocalSession};
use probkb_kb::prelude::{Dictionary, HornRule};
use probkb_relational::prelude::Table;
use probkb_support::hash::FxHashSet;
use probkb_support::sync::Mutex;

/// One fact of the snapshot, fully resolved.
#[derive(Debug, Clone)]
struct FactRecord {
    id: i64,
    rel: i64,
    x: i64,
    y: i64,
    /// Stored probability: extraction weight for base facts, estimated
    /// marginal for inferred ones, `None` when the fact never entered a
    /// factor (no evidence either way beyond its own weight).
    p: Option<f64>,
    inferred: bool,
}

/// Query-time local-grounding state attached to an epoch. The
/// [`LocalSession`] (B-tree probe indexes + answer cache) is built
/// lazily on the first `MARGINAL_LOCAL` request, so epochs that never
/// see one pay nothing; `seed` is the answer cache carried over from
/// the previous epoch by [`EpochState::carry_local_cache`].
///
/// This is the one deliberately *impure* corner of the read path: the
/// cache memoizes across requests. It lives behind its own mutex so
/// [`serve_read`] stays a pure function of `(EpochState, Request)` —
/// the `MARGINAL_LOCAL` opcode is dispatched through
/// [`EpochState::serve_local`] instead, and the answer bytes are still
/// deterministic (a hit returns the bit-identical `p` the miss
/// computed; only the `cache=` flag differs).
#[derive(Debug, Default)]
struct LocalServing {
    session: Option<LocalSession>,
    seed: LocalCache,
}

/// An immutable snapshot served to readers.
#[derive(Debug)]
pub struct EpochState {
    /// Number of committed deltas this snapshot includes (epoch 0 is the
    /// initial grounding). Responses carry this as staleness metadata.
    pub epoch: u64,
    facts: Vec<FactRecord>,
    by_id: HashMap<i64, usize>,
    by_key: HashMap<(i64, i64, i64), usize>,
    relations: Dictionary,
    entities: Dictionary,
    lineage: Lineage,
    factors: u64,
    /// `TΠ` snapshot + rules: what a lazily-built [`LocalSession`]
    /// grounds against.
    facts_table: Table,
    rules: Vec<HornRule>,
    gibbs: GibbsConfig,
    local: Mutex<LocalServing>,
}

impl EpochState {
    /// Snapshot the live pipeline as epoch `epoch`. Called by the writer
    /// thread between WAL commit and publication; readers never see the
    /// pipeline itself.
    pub fn from_pipeline(pipeline: &IncrementalPipeline, epoch: u64) -> EpochState {
        let session = pipeline.session();
        let facts_table = session.facts();
        let mut facts = Vec::with_capacity(facts_table.len());
        let mut by_id = HashMap::with_capacity(facts_table.len());
        let mut by_key = HashMap::with_capacity(facts_table.len());
        for row in facts_table.rows() {
            let id = row[tpi::I].as_int().expect("fact id");
            let stored = row[tpi::W].as_float();
            let inferred = row[tpi::W].is_null();
            let p = if inferred {
                pipeline.marginal_of_fact(id)
            } else {
                stored
            };
            let record = FactRecord {
                id,
                rel: row[tpi::R].as_int().expect("R"),
                x: row[tpi::X].as_int().expect("x"),
                y: row[tpi::Y].as_int().expect("y"),
                p,
                inferred,
            };
            let idx = facts.len();
            by_id.insert(id, idx);
            by_key.entry((record.rel, record.x, record.y)).or_insert(idx);
            facts.push(record);
        }
        let kb = session.kb();
        EpochState {
            epoch,
            facts,
            by_id,
            by_key,
            relations: kb.relations.clone(),
            entities: kb.entities.clone(),
            lineage: Lineage::from_phi(session.factors()),
            factors: session.factors().len() as u64,
            facts_table: facts_table.clone(),
            rules: kb.rules.clone(),
            gibbs: *pipeline.gibbs(),
            local: Mutex::new(LocalServing::default()),
        }
    }

    /// Facts in the snapshot.
    pub fn num_facts(&self) -> u64 {
        self.facts.len() as u64
    }

    /// Inferred facts in the snapshot.
    pub fn num_inferred(&self) -> u64 {
        self.facts.iter().filter(|f| f.inferred).count() as u64
    }

    /// Factors in the snapshot.
    pub fn num_factors(&self) -> u64 {
        self.factors
    }

    fn resolve(&self, fr: &FactRef) -> Option<&FactRecord> {
        match fr {
            FactRef::Id(id) => self.by_id.get(id).map(|&i| &self.facts[i]),
            FactRef::Names { rel, x, y } => {
                let rel = self.relations.get(rel)? as i64;
                let x = self.entities.get(x)? as i64;
                let y = self.entities.get(y)? as i64;
                self.by_key.get(&(rel, x, y)).map(|&i| &self.facts[i])
            }
        }
    }

    fn fact_name(&self, record: &FactRecord) -> String {
        let rel = self.relations.resolve(record.rel as u32).unwrap_or("?");
        let x = self.entities.resolve(record.x as u32).unwrap_or("?");
        let y = self.entities.resolve(record.y as u32).unwrap_or("?");
        format!("{rel}({x}, {y})")
    }

    fn name_of_id(&self, id: i64) -> String {
        match self.by_id.get(&id) {
            Some(&i) => self.fact_name(&self.facts[i]),
            None => format!("f{id}"),
        }
    }

    fn fact_info(&self, record: &FactRecord) -> FactInfo {
        FactInfo {
            id: record.id,
            rel: self
                .relations
                .resolve(record.rel as u32)
                .unwrap_or("?")
                .to_string(),
            x: self
                .entities
                .resolve(record.x as u32)
                .unwrap_or("?")
                .to_string(),
            y: self
                .entities
                .resolve(record.y as u32)
                .unwrap_or("?")
                .to_string(),
            p: record.p,
            inferred: record.inferred,
        }
    }

    /// Serve one `MARGINAL_LOCAL` request: ground only the fact's proof
    /// neighborhood under `budget` (`None` → the server's
    /// `PROBKB_LOCAL_BUDGET` default) and run exact/Gibbs inference on
    /// that subgraph. Runs entirely on the read side — the writer
    /// thread is never involved. The per-epoch [`LocalSession`] is
    /// built on first use.
    pub fn serve_local(&self, fact: &FactRef, budget: Option<(u64, u64)>) -> Response {
        let id = match self.resolve(fact) {
            Some(record) => record.id,
            None => {
                return Response::MarginalLocal {
                    epoch: self.epoch,
                    marginal: None,
                }
            }
        };
        let budget = budget.map(|(nodes, factors)| LocalBudget { nodes, factors });
        let mut serving = self.local.lock();
        if serving.session.is_none() {
            let grounder = match LocalGrounder::new(self.facts_table.clone(), &self.rules) {
                Ok(grounder) => grounder,
                Err(e) => {
                    return Response::Error {
                        code: "internal".into(),
                        message: format!("local grounder: {e}"),
                    }
                }
            };
            let seed = std::mem::take(&mut serving.seed);
            serving.session = Some(LocalSession::with_cache(
                grounder, self.gibbs, self.epoch, seed,
            ));
        }
        let session = serving.session.as_mut().expect("just built");
        let marginal = session.marginal(id, budget).map(|answer| LocalMarginalInfo {
            id: answer.id,
            p: answer.p,
            nodes: answer.nodes,
            factors: answer.factors,
            frontier_stops: answer.frontier_stops,
            budget_nodes: answer.budget.nodes,
            budget_factors: answer.budget.factors,
            exact: answer.exact,
            cache: match answer.cache {
                LocalCacheStatus::Miss => CacheStatus::Miss,
                LocalCacheStatus::Hit => CacheStatus::Hit,
                LocalCacheStatus::Carried => CacheStatus::Carried,
            },
            annotate: answer.annotate(),
        });
        Response::MarginalLocal {
            epoch: self.epoch,
            marginal,
        }
    }

    /// Carry the previous epoch's local-answer cache into this (not yet
    /// published) epoch. Entries survive only when the delta's
    /// touched-blanket set missed their support and the id remap is the
    /// identity on it ([`LocalCache::advance`]); a full-fallback delta
    /// drops everything. Called by the writer between
    /// [`EpochState::from_pipeline`] and publication — the previous
    /// epoch keeps serving from its own (cloned) cache meanwhile.
    pub fn carry_local_cache(
        &self,
        prev: &EpochState,
        touched_facts: &[i64],
        remap: &[i64],
        full_fallback: bool,
    ) {
        let prev_serving = prev.local.lock();
        let mut cache = match &prev_serving.session {
            Some(session) => session.cache_snapshot(),
            None => prev_serving.seed.clone(),
        };
        drop(prev_serving);
        let touched: FxHashSet<i64> = touched_facts.iter().copied().collect();
        cache.advance(self.epoch, &touched, remap, full_fallback);
        self.local.lock().seed = cache;
    }

    fn render_proof(&self, id: i64, depth: u32, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        out.push_str(&pad);
        out.push_str(&self.name_of_id(id));
        if self.lineage.is_base(id) {
            out.push_str("  [base]");
        }
        out.push('\n');
        if depth == 0 {
            if !self.lineage.is_base(id) && !self.lineage.derivations(id).is_empty() {
                out.push_str(&pad);
                out.push_str("  ...\n");
            }
            return;
        }
        for d in self.lineage.derivations(id) {
            out.push_str(&pad);
            out.push_str(&format!("  <-[w={:.2}]-\n", d.weight));
            for &body in &d.body {
                self.render_proof(body, depth - 1, indent + 2, out);
            }
        }
    }
}

/// Serve one read-only request from a snapshot. Pure: the same
/// `(state, request)` pair always yields the same response, which is
/// what lets the differential suite compare live responses byte-for-byte
/// against single-threaded oracles. Returns `None` for requests that are
/// not snapshot reads (`PING`, `APPLY_DELTA`, `STATS`, `SHUTDOWN`).
pub fn serve_read(state: &EpochState, request: &Request) -> Option<Response> {
    match request {
        Request::Fact(fr) => Some(Response::Fact {
            epoch: state.epoch,
            fact: state.resolve(fr).map(|r| state.fact_info(r)),
        }),
        Request::Marginal(fr) => Some(Response::Marginal {
            epoch: state.epoch,
            marginal: state.resolve(fr).and_then(|r| {
                let p = r.p?;
                Some(MarginalInfo {
                    id: r.id,
                    p,
                    source: if r.inferred {
                        MarginalSource::Inferred
                    } else {
                        MarginalSource::Stored
                    },
                })
            }),
        }),
        Request::Lineage { fact, max_depth } => Some(Response::Lineage {
            epoch: state.epoch,
            lineage: state.resolve(fact).map(|r| {
                let derivations = state
                    .lineage
                    .derivations(r.id)
                    .iter()
                    .map(|d| (d.weight, d.body.clone()))
                    .collect();
                let mut rendered = String::new();
                state.render_proof(r.id, *max_depth, 0, &mut rendered);
                LineageInfo {
                    id: r.id,
                    is_base: state.lineage.is_base(r.id),
                    derivations,
                    rendered,
                }
            }),
        }),
        _ => None,
    }
}
