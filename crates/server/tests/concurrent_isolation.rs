//! Snapshot isolation, proven differentially: 8 reader connections
//! hammer `FACT`/`MARGINAL`/`LINEAGE` over the wire while a writer
//! commits three deltas. Every response must be *byte-identical* to what
//! a single-threaded oracle — a second `IncrementalPipeline` applying
//! the same deltas in the same order — produces for one of the committed
//! epochs. A torn read (half-applied delta) would produce bytes matching
//! no oracle epoch and fail the membership check; a stale-then-fresh
//! flip-flop would fail the per-connection epoch monotonicity check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use probkb::pipeline::IncrementalPipeline;
use probkb::prelude::{parse, GibbsConfig, GroundingConfig, ProbKb};
use probkb_client::prelude::{Client, FactRef};
use probkb_client::protocol::{
    decode_response, encode_request, encode_response, LocalMarginalInfo, Request, Response,
};
use probkb_server::prelude::{serve_read, start, EpochState, ServerConfig};
use probkb_storage::frame::{read_frame, write_frame, FrameKind};

const BASE: &str = r#"
    fact 0.90 qa(a1:A, b1:B)
    fact 0.80 qa(a2:A, b2:B)
    rule 1.20 pa(x:A, y:B) :- qa(x, y)
"#;

const DELTAS: [&str; 3] = [
    "fact 0.85 qa(a3:A, b3:B)",
    "fact 0.75 qa(a4:A, b4:B)\nfact 0.60 qb(c1:C, d1:D)",
    "fact 0.65 qa(a5:A, b5:B)",
];

fn base_kb() -> ProbKb {
    parse(BASE).unwrap().build()
}

fn grounding() -> GroundingConfig {
    GroundingConfig {
        apply_constraints: false,
        threads: Some(1),
        ..GroundingConfig::default()
    }
}

fn gibbs() -> GibbsConfig {
    GibbsConfig {
        burn_in: 100,
        samples: 500,
        seed: 7,
        chains: 2,
        workers: Some(1),
        ..GibbsConfig::default()
    }
}

fn by_name(rel: &str, x: &str, y: &str) -> FactRef {
    FactRef::Names {
        rel: rel.into(),
        x: x.into(),
        y: y.into(),
    }
}

/// The fixed request mix every reader cycles through. Mixes ids that
/// exist from epoch 0, ids/names that only appear after a delta, names
/// that never exist, and lineage walks over inferred facts.
fn requests() -> Vec<Request> {
    let mut reqs = Vec::new();
    for id in 0..12 {
        reqs.push(Request::Fact(FactRef::Id(id)));
        reqs.push(Request::Marginal(FactRef::Id(id)));
    }
    reqs.push(Request::Fact(by_name("qa", "a1", "b1")));
    reqs.push(Request::Fact(by_name("qa", "a3", "b3"))); // appears at epoch 1
    reqs.push(Request::Fact(by_name("qb", "c1", "d1"))); // appears at epoch 2
    reqs.push(Request::Fact(by_name("qa", "a5", "b5"))); // appears at epoch 3
    reqs.push(Request::Fact(by_name("nope", "a1", "b1"))); // never
    reqs.push(Request::Marginal(by_name("pa", "a1", "b1")));
    reqs.push(Request::Marginal(by_name("pa", "a4", "b4")));
    reqs.push(Request::Lineage {
        fact: by_name("pa", "a1", "b1"),
        max_depth: 4,
    });
    reqs.push(Request::Lineage {
        fact: by_name("pa", "a5", "b5"),
        max_depth: 2,
    });
    reqs
}

/// Epoch carried by a read response (all three read kinds have one).
fn epoch_of(response: &Response) -> u64 {
    match response {
        Response::Fact { epoch, .. }
        | Response::Marginal { epoch, .. }
        | Response::Lineage { epoch, .. } => *epoch,
        other => panic!("unexpected response kind: {other:?}"),
    }
}

#[test]
fn readers_only_ever_observe_committed_epochs() {
    let reqs = requests();

    // Single-threaded oracle: replay the exact delta sequence the server
    // will see and snapshot the state after each commit. The pipeline is
    // deterministic given (seed, delta sequence), so oracle epoch k and
    // the server's published epoch k are the same state.
    let mut oracle = IncrementalPipeline::new(base_kb(), grounding(), gibbs()).unwrap();
    let mut states = vec![EpochState::from_pipeline(&oracle, 0)];
    for (k, text) in DELTAS.iter().enumerate() {
        let delta = oracle.parse_delta(text).unwrap();
        oracle.apply_delta(&delta).unwrap();
        states.push(EpochState::from_pipeline(&oracle, (k + 1) as u64));
    }
    // expected[k][i] = exact wire bytes of request i served at epoch k.
    let expected: Vec<Vec<Vec<u8>>> = states
        .iter()
        .map(|s| {
            reqs.iter()
                .map(|r| encode_response(&serve_read(s, r).unwrap()))
                .collect()
        })
        .collect();

    let handle = start(
        base_kb(),
        ServerConfig {
            grounding: grounding(),
            gibbs: gibbs(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..8)
        .map(|reader| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let reqs = reqs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let stream = client.stream_mut();
                let mut last_epoch = 0u64;
                let mut served = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for (i, req) in reqs.iter().enumerate() {
                        write_frame(stream, FrameKind::Request, &encode_request(req)).unwrap();
                        let (kind, body) = read_frame(stream).unwrap();
                        assert_eq!(kind, FrameKind::Response);
                        let epoch_hits: Vec<u64> = (0..expected.len() as u64)
                            .filter(|&k| expected[k as usize][i] == body)
                            .collect();
                        assert!(
                            !epoch_hits.is_empty(),
                            "reader {reader} request {i}: response matches no committed epoch"
                        );
                        // Sessions read the published Arc per request, so
                        // observed epochs can only move forward.
                        let epoch = epoch_of(&decode_response(&body).unwrap());
                        assert!(epoch_hits.contains(&epoch));
                        assert!(
                            epoch >= last_epoch,
                            "reader {reader}: epoch went backwards ({last_epoch} -> {epoch})"
                        );
                        last_epoch = epoch;
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    // Writer: commit the three deltas while the readers hammer.
    let mut writer = Client::connect(&addr).unwrap();
    for (k, text) in DELTAS.iter().enumerate() {
        std::thread::sleep(Duration::from_millis(60));
        let outcome = writer.apply_delta(text).unwrap();
        assert_eq!(outcome.epoch, (k + 1) as u64);
    }
    std::thread::sleep(Duration::from_millis(60));

    stop.store(true, Ordering::Relaxed);
    let mut total = 0usize;
    for reader in readers {
        total += reader.join().expect("reader panicked");
    }
    assert!(total > 0, "readers served no requests");

    // The server's final epoch is exactly the number of committed deltas.
    assert_eq!(handle.shared().current.load().epoch, DELTAS.len() as u64);

    writer.shutdown().unwrap();
    handle.join();
}

/// The answer-defining fields of a `MARGINAL_LOCAL` response, with `p`
/// compared bit-for-bit. Cache status and the annotation are deliberately
/// excluded: a hit/carried answer is *allowed* — what it is not allowed to
/// do is differ from a cold recompute at the same epoch.
fn local_key(marginal: &Option<LocalMarginalInfo>) -> Option<(i64, u64, u64, u64, u64)> {
    marginal
        .as_ref()
        .map(|m| (m.id, m.p.to_bits(), m.nodes, m.factors, m.frontier_stops))
}

/// Stale-cache oracle for `MARGINAL_LOCAL`: readers hammer local
/// marginals over the wire while the writer commits the three deltas.
/// Every response claims an epoch; it must be answer-identical to a
/// *fresh* (never-cached) local session over that epoch's oracle state.
/// A carried cache entry whose support actually intersected a delta's
/// touched blanket — or whose fact id was renumbered without eviction —
/// would disagree with the cold oracle and fail here.
#[test]
fn marginal_local_never_serves_stale_cache_entries() {
    // One explicit covering budget everywhere, so an ambient
    // PROBKB_LOCAL_BUDGET cannot skew server vs oracle.
    const BUDGET: Option<(u64, u64)> = Some((1_000_000, 1_000_000));

    let mut refs: Vec<FactRef> = (0..12).map(FactRef::Id).collect();
    refs.push(by_name("qa", "a1", "b1"));
    refs.push(by_name("pa", "a1", "b1"));
    refs.push(by_name("pa", "a2", "b2"));
    refs.push(by_name("pa", "a3", "b3")); // enters the KB at epoch 1
    refs.push(by_name("qb", "c1", "d1")); // enters the KB at epoch 2
    refs.push(by_name("pa", "a5", "b5")); // enters the KB at epoch 3
    refs.push(by_name("nope", "a1", "b1")); // never exists

    // Cold oracle answers per (epoch, ref). Each EpochState starts with
    // an empty local cache, so these are all fresh computations.
    let mut oracle = IncrementalPipeline::new(base_kb(), grounding(), gibbs()).unwrap();
    let mut states = vec![EpochState::from_pipeline(&oracle, 0)];
    for (k, text) in DELTAS.iter().enumerate() {
        let delta = oracle.parse_delta(text).unwrap();
        oracle.apply_delta(&delta).unwrap();
        states.push(EpochState::from_pipeline(&oracle, (k + 1) as u64));
    }
    let expected: Vec<Vec<Option<(i64, u64, u64, u64, u64)>>> = states
        .iter()
        .map(|s| {
            refs.iter()
                .map(|fr| match s.serve_local(fr, BUDGET) {
                    Response::MarginalLocal { marginal, .. } => local_key(&marginal),
                    other => panic!("oracle returned {other:?}"),
                })
                .collect()
        })
        .collect();

    let handle = start(
        base_kb(),
        ServerConfig {
            grounding: grounding(),
            gibbs: gibbs(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|reader| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let refs = refs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut served = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for (i, fr) in refs.iter().enumerate() {
                        let (epoch, marginal) =
                            client.marginal_local(fr.clone(), BUDGET).unwrap();
                        let got = local_key(&marginal);
                        assert!(
                            (epoch as usize) < expected.len(),
                            "reader {reader}: uncommitted epoch {epoch}"
                        );
                        assert_eq!(
                            got, expected[epoch as usize][i],
                            "reader {reader} ref {i}: local answer at claimed epoch \
                             {epoch} differs from a cold recompute (stale cache?)"
                        );
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    let mut writer = Client::connect(&addr).unwrap();
    for (k, text) in DELTAS.iter().enumerate() {
        std::thread::sleep(Duration::from_millis(60));
        let outcome = writer.apply_delta(text).unwrap();
        assert_eq!(outcome.epoch, (k + 1) as u64);
    }
    std::thread::sleep(Duration::from_millis(60));

    stop.store(true, Ordering::Relaxed);
    let mut total = 0usize;
    for reader in readers {
        total += reader.join().expect("reader panicked");
    }
    assert!(total > 0, "readers served no local marginals");

    writer.shutdown().unwrap();
    handle.join();
}
