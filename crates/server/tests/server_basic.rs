//! End-to-end coverage of every request type over the wire, the
//! structured `unsupported` error for retractions, session limits, and
//! WAL-backed restart (a restarted server resumes at the replayed epoch
//! with the delta's facts queryable).

use std::path::PathBuf;

use probkb::prelude::{parse, GibbsConfig, GroundingConfig, ProbKb};
use probkb_client::prelude::{Client, ClientError, FactRef};
use probkb_client::protocol::MarginalSource;
use probkb_server::prelude::{start, ServerConfig, ServerHandle};

fn kb() -> ProbKb {
    parse(
        r#"
        fact 0.90 qa(a1:A, b1:B)
        fact 0.80 qa(a2:A, b2:B)
        rule 1.20 pa(x:A, y:B) :- qa(x, y)
    "#,
    )
    .unwrap()
    .build()
}

fn config() -> ServerConfig {
    ServerConfig {
        grounding: GroundingConfig {
            apply_constraints: false,
            threads: Some(1),
            ..GroundingConfig::default()
        },
        gibbs: GibbsConfig {
            burn_in: 50,
            samples: 300,
            workers: Some(1),
            ..GibbsConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn server(config: ServerConfig) -> (ServerHandle, Client) {
    let handle = start(kb(), config).unwrap();
    let client = Client::connect(&handle.addr().to_string()).unwrap();
    (handle, client)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "probkb-server-basic-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn every_request_type_roundtrips() {
    let (handle, mut client) = server(config());

    let (epoch, protocol, session) = client.ping().unwrap();
    assert_eq!((epoch, protocol), (0, 1));
    assert!(session >= 1);

    // FACT by name and by id agree.
    let (_, by_name) = client
        .fact(FactRef::Names {
            rel: "qa".into(),
            x: "a1".into(),
            y: "b1".into(),
        })
        .unwrap();
    let by_name = by_name.expect("base fact resolvable by name");
    assert_eq!((by_name.rel.as_str(), by_name.inferred), ("qa", false));
    let (_, by_id) = client.fact(FactRef::Id(by_name.id)).unwrap();
    assert_eq!(by_id.unwrap().x, by_name.x);

    // MARGINAL: a base fact reports its stored weight; the rule head is
    // inferred with an estimated marginal.
    let (_, m) = client.marginal(FactRef::Id(by_name.id)).unwrap();
    let m = m.unwrap();
    assert!(matches!(m.source, MarginalSource::Stored));
    assert!((m.p - 0.90).abs() < 1e-12);
    let head = FactRef::Names {
        rel: "pa".into(),
        x: "a1".into(),
        y: "b1".into(),
    };
    let (_, m) = client.marginal(head.clone()).unwrap();
    let m = m.unwrap();
    assert!(matches!(m.source, MarginalSource::Inferred));
    assert!(m.p > 0.0 && m.p < 1.0);

    // LINEAGE: the inferred head derives from the base fact.
    let (_, lineage) = client.lineage(head, 4).unwrap();
    let lineage = lineage.unwrap();
    assert!(!lineage.is_base);
    assert_eq!(lineage.derivations.len(), 1);
    assert!(lineage.rendered.contains("pa(a1, b1)"));
    assert!(lineage.rendered.contains("qa(a1, b1)  [base]"));

    // Missing facts answer None, not an error.
    let (_, missing) = client.fact(FactRef::Id(9_999)).unwrap();
    assert!(missing.is_none());

    // APPLY_DELTA advances the epoch and makes the new fact queryable.
    let outcome = client.apply_delta("fact 0.85 qa(a3:A, b3:B)").unwrap();
    assert_eq!(outcome.epoch, 1);
    assert!(outcome.new_facts >= 1);
    let (epoch, added) = client
        .fact(FactRef::Names {
            rel: "qa".into(),
            x: "a3".into(),
            y: "b3".into(),
        })
        .unwrap();
    assert_eq!(epoch, 1);
    assert!(added.is_some());

    // A parse error in a delta is a structured error, session survives.
    let err = client.apply_delta("fact banana").unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "parse"),
        other => panic!("expected parse error, got {other:?}"),
    }

    // STATS reflects the new epoch and this session.
    let stats = client.stats().unwrap();
    assert_eq!(stats.epoch, 1);
    assert!(stats.facts >= 4); // 3 base + 1 delta (+ inferred heads)
    assert!(stats.inferred >= 1);
    assert!(stats.sessions_total >= 1);

    // SHUTDOWN is acknowledged, then the server exits.
    let epoch = client.shutdown().unwrap();
    assert_eq!(epoch, 1);
    handle.join();
}

#[test]
fn retract_reports_structured_unsupported_error() {
    let (handle, mut client) = server(config());

    // Warm a local marginal first: the failed retract below must leave
    // MARGINAL_LOCAL serving (including its cache) exactly as it was.
    let budget = Some((1_000_000u64, 1_000_000u64));
    let inferred = FactRef::Names {
        rel: "pa".into(),
        x: "a1".into(),
        y: "b1".into(),
    };
    let (epoch_before, local_before) = client.marginal_local(inferred.clone(), budget).unwrap();
    assert_eq!(epoch_before, 0);
    let local_before = local_before.expect("pa(a1, b1) is inferred at epoch 0");

    // A batch mixing an addition with a retraction fails whole: the
    // retraction error comes back and the addition must NOT have been
    // applied.
    let err = client
        .apply_delta("fact 0.85 qa(a9:A, b9:B)\nretract fact 0.90 qa(a1:A, b1:B)")
        .unwrap_err();
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, "unsupported");
            assert!(
                message.contains("retract is not supported"),
                "unexpected message: {message}"
            );
            assert!(message.contains("1 fact(s)"), "unexpected message: {message}");
        }
        other => panic!("expected unsupported error, got {other:?}"),
    }
    let (epoch, leaked) = client
        .fact(FactRef::Names {
            rel: "qa".into(),
            x: "a9".into(),
            y: "b9".into(),
        })
        .unwrap();
    assert_eq!(epoch, 0, "failed batch must not advance the epoch");
    assert!(leaked.is_none(), "failed batch leaked its additions");

    // MARGINAL_LOCAL after the failed retract: same epoch, answer fields
    // bit-identical to the pre-retract answer (served as a cache hit —
    // the epoch never advanced, so the entry was never invalidated).
    let (epoch_after, local_after) = client.marginal_local(inferred, budget).unwrap();
    assert_eq!(epoch_after, 0);
    let local_after = local_after.expect("pa(a1, b1) still inferred");
    assert_eq!(local_after.id, local_before.id);
    assert_eq!(local_after.p.to_bits(), local_before.p.to_bits());
    assert_eq!(local_after.nodes, local_before.nodes);
    assert_eq!(local_after.factors, local_before.factors);
    assert_eq!(local_after.frontier_stops, local_before.frontier_stops);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn session_limit_rejects_with_busy() {
    let mut cfg = config();
    cfg.max_sessions = 1;
    let (handle, mut first) = server(cfg);
    first.ping().unwrap(); // session thread is definitely up

    // The second connection is rejected before a session spawns.
    let err = Client::connect(&handle.addr().to_string())
        .and_then(|mut c| c.ping().map(|_| ()))
        .unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "busy"),
        // The rejection races the magic write; a transport error is also
        // an acceptable observation of "not served".
        ClientError::Io(_) | ClientError::Protocol(_) => {}
        other => panic!("expected busy/io, got {other:?}"),
    }

    first.shutdown().unwrap();
    handle.join();
}

#[test]
fn idle_sessions_time_out() {
    use std::io::{Read, Write};
    let mut cfg = config();
    cfg.idle_timeout = std::time::Duration::from_millis(150);
    let handle = start(kb(), cfg).unwrap();
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(&probkb_storage::frame::WIRE_MAGIC)
        .unwrap();
    // Say nothing past the handshake: the server's idle deadline fires
    // and it closes the session.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);
    handle.initiate_shutdown();
    handle.join();
}

#[test]
fn wal_replay_restores_committed_epochs() {
    let dir = tmp_dir("wal");
    let wal = dir.join("server.wal");

    let mut cfg = config();
    cfg.wal_path = Some(wal.clone());
    let (handle, mut client) = server(cfg.clone());
    let outcome = client.apply_delta("fact 0.85 qa(a3:A, b3:B)").unwrap();
    assert_eq!(outcome.epoch, 1);
    let outcome = client.apply_delta("fact 0.75 qa(a4:A, b4:B)").unwrap();
    assert_eq!(outcome.epoch, 2);
    client.shutdown().unwrap();
    handle.join();

    // Restart from the same WAL: both committed deltas replay before the
    // listener binds, so the first client already sees epoch 2.
    let (handle, mut client) = server(cfg);
    let (epoch, _, _) = client.ping().unwrap();
    assert_eq!(epoch, 2);
    for (x, y) in [("a3", "b3"), ("a4", "b4")] {
        let (_, fact) = client
            .fact(FactRef::Names {
                rel: "qa".into(),
                x: x.into(),
                y: y.into(),
            })
            .unwrap();
        assert!(fact.is_some(), "replayed fact qa({x}, {y}) missing");
    }
    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
