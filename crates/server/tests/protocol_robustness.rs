//! Wire-protocol robustness: a hostile or broken peer can kill its own
//! session, never the server. Each scenario throws malformed bytes at a
//! live server, then proves the listener still accepts and serves a
//! well-formed `PING` on a fresh connection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use probkb::prelude::{parse, GibbsConfig, GroundingConfig};
use probkb_client::prelude::Client;
use probkb_client::protocol::{decode_response, encode_request, Request, Response};
use probkb_server::prelude::{start, ServerConfig, ServerHandle};
use probkb_storage::frame::{
    read_frame, write_frame, FrameKind, MAX_WIRE_FRAME_LEN, WIRE_MAGIC,
};

fn tiny_server() -> ServerHandle {
    let kb = parse(
        r#"
        fact 0.90 qa(a1:A, b1:B)
        rule 1.20 pa(x:A, y:B) :- qa(x, y)
    "#,
    )
    .unwrap()
    .build();
    start(
        kb,
        ServerConfig {
            // Short deadlines so deadbeat-peer scenarios resolve quickly.
            idle_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            grounding: GroundingConfig {
                apply_constraints: false,
                threads: Some(1),
                ..GroundingConfig::default()
            },
            gibbs: GibbsConfig {
                burn_in: 50,
                samples: 200,
                workers: Some(1),
                ..GibbsConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// A raw socket that has completed the magic handshake.
fn raw_conn(handle: &ServerHandle) -> TcpStream {
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(&WIRE_MAGIC).unwrap();
    stream
}

/// The server must still serve a clean connection.
fn assert_still_alive(handle: &ServerHandle) {
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let (_, protocol, _) = client.ping().unwrap();
    assert_eq!(protocol, 1);
}

/// Expect one `Error{code:"protocol"}` response frame, then EOF.
fn expect_protocol_error_then_eof(stream: &mut TcpStream) {
    let (kind, body) = read_frame(stream).unwrap();
    assert_eq!(kind, FrameKind::Response);
    match decode_response(&body).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "protocol"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0, "expected EOF");
}

#[test]
fn bad_magic_is_rejected() {
    let handle = tiny_server();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    expect_protocol_error_then_eof(&mut stream);
    assert_still_alive(&handle);
    handle.initiate_shutdown();
    handle.join();
}

#[test]
fn bad_crc_drops_only_that_session() {
    let handle = tiny_server();
    let mut stream = raw_conn(&handle);
    let body = encode_request(&Request::Ping);
    let mut framed = Vec::new();
    write_frame(&mut framed, FrameKind::Request, &body).unwrap();
    *framed.last_mut().unwrap() ^= 0xff; // corrupt the payload, CRC now wrong
    stream.write_all(&framed).unwrap();
    expect_protocol_error_then_eof(&mut stream);
    assert_still_alive(&handle);
    handle.initiate_shutdown();
    handle.join();
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocating() {
    let handle = tiny_server();
    let mut stream = raw_conn(&handle);
    let huge = (MAX_WIRE_FRAME_LEN + 1).to_le_bytes();
    stream.write_all(&huge).unwrap();
    stream.write_all(&[0u8; 8]).unwrap(); // fake crc + start of "payload"
    expect_protocol_error_then_eof(&mut stream);
    assert_still_alive(&handle);
    handle.initiate_shutdown();
    handle.join();
}

#[test]
fn mid_frame_disconnect_is_harmless() {
    let handle = tiny_server();
    {
        let mut stream = raw_conn(&handle);
        let body = encode_request(&Request::Stats);
        let mut framed = Vec::new();
        write_frame(&mut framed, FrameKind::Request, &body).unwrap();
        // Send the length prefix, the CRC, and half the payload, then
        // vanish.
        stream.write_all(&framed[..framed.len() / 2]).unwrap();
    } // drop = RST/FIN mid-frame
    assert_still_alive(&handle);
    handle.initiate_shutdown();
    handle.join();
}

#[test]
fn truncated_frame_then_clean_close_is_harmless() {
    let handle = tiny_server();
    {
        let mut stream = raw_conn(&handle);
        // A length prefix promising 100 bytes, then a clean shutdown
        // after only the CRC: "unexpected eof mid-frame" on the server.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&0u32.to_le_bytes()).unwrap();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
    }
    assert_still_alive(&handle);
    handle.initiate_shutdown();
    handle.join();
}

#[test]
fn response_frame_from_client_is_rejected() {
    let handle = tiny_server();
    let mut stream = raw_conn(&handle);
    // A syntactically valid frame of the wrong kind.
    write_frame(&mut stream, FrameKind::Response, b"\x00").unwrap();
    expect_protocol_error_then_eof(&mut stream);
    assert_still_alive(&handle);
    handle.initiate_shutdown();
    handle.join();
}

#[test]
fn malformed_body_in_valid_frame_keeps_session() {
    let handle = tiny_server();
    let mut stream = raw_conn(&handle);
    // CRC-valid frame whose body is not a decodable request: the stream
    // is still synchronized, so the session survives with an error
    // response...
    write_frame(&mut stream, FrameKind::Request, &[0xfe, 0xfe, 0xfe]).unwrap();
    let (kind, body) = read_frame(&mut stream).unwrap();
    assert_eq!(kind, FrameKind::Response);
    match decode_response(&body).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "protocol"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // ...and a well-formed request on the SAME connection still works.
    write_frame(&mut stream, FrameKind::Request, &encode_request(&Request::Ping)).unwrap();
    let (kind, body) = read_frame(&mut stream).unwrap();
    assert_eq!(kind, FrameKind::Response);
    assert!(matches!(
        decode_response(&body).unwrap(),
        Response::Pong { .. }
    ));
    handle.initiate_shutdown();
    handle.join();
}
