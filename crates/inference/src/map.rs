//! MAP (maximum a posteriori) inference — §2.2's "other inference type".
//!
//! ProbKB ships marginal inference so results can live in the KB, but MAP
//! is the standard alternative: find the single most likely world. Two
//! standard local-search solvers are provided, both exact on small graphs
//! when cross-checked against enumeration in the tests:
//!
//! * **ICM** (iterated conditional modes): deterministically flip each
//!   variable to its conditionally-better value until a fixpoint — fast,
//!   may stop in a local optimum.
//! * **Simulated annealing**: Gibbs-style sweeps with a temperature
//!   schedule cooling toward greedy; escapes local optima with high
//!   probability given enough sweeps.

use probkb_factorgraph::prelude::FactorGraph;
use probkb_support::rng::{Rng, SeedableRng, StdRng};

use crate::gibbs::sigmoid;

/// A MAP solution: an assignment and its unnormalized log score.
#[derive(Debug, Clone, PartialEq)]
pub struct MapSolution {
    /// The assignment.
    pub assignment: Vec<bool>,
    /// `Σᵢ Wᵢ nᵢ(x)` for the assignment.
    pub log_score: f64,
}

/// Iterated conditional modes from the all-false state. Returns the local
/// optimum and the number of sweeps to convergence.
pub fn icm(graph: &FactorGraph) -> (MapSolution, usize) {
    icm_from(graph, vec![false; graph.num_vars()])
}

/// ICM from a caller-provided start state.
pub fn icm_from(graph: &FactorGraph, mut assignment: Vec<bool>) -> (MapSolution, usize) {
    assert_eq!(assignment.len(), graph.num_vars());
    let mut sweeps = 0;
    loop {
        sweeps += 1;
        let mut changed = false;
        for v in 0..graph.num_vars() {
            let better = graph.flip_delta_ro(v, &assignment) > 0.0;
            if assignment[v] != better {
                assignment[v] = better;
                changed = true;
            }
        }
        if !changed || sweeps > graph.num_vars() + 8 {
            break;
        }
    }
    let log_score = graph.log_score(&assignment);
    (
        MapSolution {
            assignment,
            log_score,
        },
        sweeps,
    )
}

/// Simulated-annealing configuration.
#[derive(Debug, Clone, Copy)]
pub struct AnnealConfig {
    /// Number of sweeps.
    pub sweeps: usize,
    /// Starting temperature (1.0 = plain Gibbs).
    pub t_start: f64,
    /// Final temperature (→ 0 = greedy).
    pub t_end: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            sweeps: 300,
            t_start: 2.0,
            t_end: 0.05,
            seed: 0xC0FFEE,
        }
    }
}

/// Simulated annealing; returns the best assignment seen across the whole
/// run (not merely the final state), finished with an ICM polish.
pub fn anneal(graph: &FactorGraph, config: &AnnealConfig) -> MapSolution {
    let n = graph.num_vars();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut state = vec![false; n];
    let mut best = MapSolution {
        assignment: state.clone(),
        log_score: graph.log_score(&state),
    };
    let sweeps = config.sweeps.max(1);
    for sweep in 0..sweeps {
        // Geometric cooling.
        let progress = sweep as f64 / sweeps as f64;
        let temperature = config.t_start * (config.t_end / config.t_start).powf(progress);
        for v in 0..n {
            let delta = graph.flip_delta_ro(v, &state);
            let p_true = sigmoid(delta / temperature.max(1e-9));
            state[v] = rng.random::<f64>() < p_true;
        }
        let score = graph.log_score(&state);
        if score > best.log_score {
            best = MapSolution {
                assignment: state.clone(),
                log_score: score,
            };
        }
    }
    // Polish the best state to a local optimum (ICM never lowers the
    // score, so the polished solution is returned unconditionally).
    let (polished, _) = icm_from(graph, best.assignment.clone());
    debug_assert!(polished.log_score >= best.log_score - 1e-12);
    polished
}

/// Exact MAP by enumeration (≤ 24 variables) — the test oracle.
pub fn exact_map(graph: &FactorGraph) -> MapSolution {
    let n = graph.num_vars();
    assert!(n <= 24, "exact MAP limited to 24 variables, got {n}");
    let mut best_mask = 0u64;
    let mut best_score = f64::NEG_INFINITY;
    let mut assignment = vec![false; n];
    for mask in 0u64..(1u64 << n) {
        for (v, slot) in assignment.iter_mut().enumerate() {
            *slot = (mask >> v) & 1 == 1;
        }
        let score = graph.log_score(&assignment);
        if score > best_score {
            best_score = score;
            best_mask = mask;
        }
    }
    for (v, slot) in assignment.iter_mut().enumerate() {
        *slot = (best_mask >> v) & 1 == 1;
    }
    MapSolution {
        assignment,
        log_score: best_score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_factorgraph::prelude::Factor;

    fn chain(n: usize) -> FactorGraph {
        let mut factors = vec![Factor::singleton(0, 2.0)];
        for v in 1..n {
            factors.push(Factor::rule(v, vec![v - 1], 1.5));
        }
        // One contrarian singleton pulling the middle down.
        factors.push(Factor::singleton(n / 2, -0.4));
        FactorGraph::new(n, factors)
    }

    #[test]
    fn icm_exact_on_independent_variables() {
        // Independent singletons of mixed sign: greedy per-variable
        // choices are globally optimal.
        let weights = [2.0, -1.0, 0.5, -3.0, 4.0, -0.2];
        let factors = weights
            .iter()
            .enumerate()
            .map(|(v, &w)| Factor::singleton(v, w))
            .collect();
        let g = FactorGraph::new(weights.len(), factors);
        let oracle = exact_map(&g);
        let (sol, sweeps) = icm(&g);
        assert!(sweeps <= 2);
        assert_eq!(sol.log_score, oracle.log_score);
        for (v, &w) in weights.iter().enumerate() {
            assert_eq!(sol.assignment[v], w > 0.0, "var {v}");
        }
    }

    #[test]
    fn icm_from_map_stays_at_map() {
        // ICM started at the exact MAP must not move off it.
        let g = chain(10);
        let oracle = exact_map(&g);
        let (sol, _) = icm_from(&g, oracle.assignment.clone());
        assert_eq!(sol.log_score, oracle.log_score);
    }

    #[test]
    fn icm_reaches_a_local_optimum() {
        // With contrarian evidence ICM may miss the global MAP, but the
        // result must be 1-flip optimal, and annealing must do at least
        // as well.
        let g = chain(10);
        let (sol, _) = icm(&g);
        for v in 0..g.num_vars() {
            let delta = g.flip_delta_ro(v, &sol.assignment);
            let improvable = if sol.assignment[v] { delta < 0.0 } else { delta > 0.0 };
            assert!(!improvable, "var {v} still improvable");
        }
        let annealed = anneal(&g, &AnnealConfig::default());
        assert!(annealed.log_score >= sol.log_score - 1e-12);
    }

    #[test]
    fn annealing_matches_exact_map() {
        for seed in [1u64, 2, 3] {
            let g = chain(12);
            let oracle = exact_map(&g);
            let sol = anneal(
                &g,
                &AnnealConfig {
                    sweeps: 200,
                    seed,
                    ..AnnealConfig::default()
                },
            );
            assert!(
                (sol.log_score - oracle.log_score).abs() < 1e-9,
                "seed {seed}: anneal {} vs exact {}",
                sol.log_score,
                oracle.log_score
            );
        }
    }

    #[test]
    fn map_prefers_satisfying_worlds() {
        // strong fact + strong implication: MAP sets both true.
        let g = FactorGraph::new(
            2,
            vec![Factor::singleton(0, 3.0), Factor::rule(1, vec![0], 2.0)],
        );
        let (sol, _) = icm(&g);
        assert_eq!(sol.assignment, vec![true, true]);
    }

    #[test]
    fn negative_evidence_flips_map() {
        let g = FactorGraph::new(1, vec![Factor::singleton(0, -5.0)]);
        let (sol, _) = icm(&g);
        assert_eq!(sol.assignment, vec![false]);
        assert_eq!(sol.log_score, 0.0);
    }

    #[test]
    fn anneal_reports_best_not_last() {
        // With an absurdly hot schedule the final state is random, but the
        // best-seen must still be optimal for this trivial graph.
        let g = FactorGraph::new(1, vec![Factor::singleton(0, 4.0)]);
        let sol = anneal(
            &g,
            &AnnealConfig {
                sweeps: 50,
                t_start: 50.0,
                t_end: 50.0,
                seed: 9,
            },
        );
        assert_eq!(sol.assignment, vec![true]);
    }

    #[test]
    fn empty_graph_map_is_trivial() {
        let g = FactorGraph::new(3, vec![]);
        let (sol, _) = icm(&g);
        assert_eq!(sol.log_score, 0.0);
        let oracle = exact_map(&g);
        assert_eq!(oracle.log_score, 0.0);
    }
}
