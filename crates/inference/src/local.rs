//! Query-time local inference: marginals over budgeted proof
//! neighborhoods (ROADMAP item 4).
//!
//! [`LocalSession`] glues a [`LocalGrounder`] (the budgeted
//! backward/forward chaining expander in `probkb_core::local`) to this
//! crate's samplers: the canonical local `TΦ` slice becomes a
//! [`FactorGraph`] via [`from_phi`], tiny subgraphs
//! (≤ [`LOCAL_EXACT_MAX_VARS`] variables) are answered by brute-force
//! [`exact_marginals`] enumeration, larger ones by the production
//! partitioned Gibbs sampler under the same `(seed, chain, sweep,
//! shard)` determinism contract as the global path — so a local answer
//! is byte-reproducible for a fixed `(epoch, query, budget)` triple.
//!
//! Answers are memoized in a [`LocalCache`]; the serving layer carries
//! the cache across `apply_delta` epochs with
//! [`LocalCache::advance`], which keeps exactly the entries whose
//! support the delta's touched-blanket set provably missed.
//!
//! [`FactorGraph`]: probkb_factorgraph::graph::FactorGraph

use probkb_core::local::{
    LocalBudget, LocalCache, LocalCacheEntry, LocalCacheStatus, LocalGrounder,
};
use probkb_core::prelude::annotate;
use probkb_factorgraph::prelude::from_phi;

use crate::exact::exact_marginals;
use crate::gibbs::GibbsConfig;
use crate::partitioned::partitioned_marginals;

/// Largest local subgraph answered by exact enumeration. Kept below the
/// `exact_marginals` hard limit (24) so local queries never panic, with
/// headroom because enumeration is `O(2^n)`.
pub const LOCAL_EXACT_MAX_VARS: usize = 20;

/// One served local marginal, with the observability fields the
/// EXPLAIN-style annotation and the wire protocol expose.
#[derive(Debug, Clone)]
pub struct LocalAnswer {
    /// The query's fact id.
    pub id: i64,
    /// Estimated `P(fact = true)`.
    pub p: f64,
    /// Variables in the local subgraph.
    pub nodes: u64,
    /// Factors materialized.
    pub factors: u64,
    /// Factor admissions the budget refused (0 ⇒ the subgraph is the
    /// query's whole connected component ⇒ `p` matches the global
    /// sampler within sampler tolerance).
    pub frontier_stops: u64,
    /// The budget the answer was computed under.
    pub budget: LocalBudget,
    /// True when exact enumeration produced `p` (≤ 20 variables).
    pub exact: bool,
    /// How the cache participated.
    pub cache: LocalCacheStatus,
}

impl LocalAnswer {
    /// EXPLAIN-style annotation:
    /// `LocalGround  (nodes=…, factors=…, budget=…, frontier_stops=…, cache=…, method=…)`.
    pub fn annotate(&self) -> String {
        annotate(
            "LocalGround",
            &[
                ("nodes", self.nodes.to_string()),
                ("factors", self.factors.to_string()),
                ("budget", self.budget.render()),
                ("frontier_stops", self.frontier_stops.to_string()),
                ("cache", self.cache.as_str().to_string()),
                (
                    "method",
                    if self.exact { "exact" } else { "gibbs" }.to_string(),
                ),
            ],
        )
    }
}

/// A query-time local inference session over one epoch's `TΠ` snapshot.
#[derive(Debug)]
pub struct LocalSession {
    grounder: LocalGrounder,
    cache: LocalCache,
    gibbs: GibbsConfig,
    default_budget: LocalBudget,
    epoch: u64,
}

impl LocalSession {
    /// Build a session with an empty cache and the process default
    /// budget (`PROBKB_LOCAL_BUDGET`).
    pub fn new(grounder: LocalGrounder, gibbs: GibbsConfig, epoch: u64) -> Self {
        Self::with_cache(grounder, gibbs, epoch, LocalCache::new())
    }

    /// Build a session seeded with a cache carried from a previous
    /// epoch (entries must already be advanced to `epoch`).
    pub fn with_cache(
        grounder: LocalGrounder,
        gibbs: GibbsConfig,
        epoch: u64,
        cache: LocalCache,
    ) -> Self {
        LocalSession {
            grounder,
            cache,
            gibbs,
            default_budget: LocalBudget::from_env(),
            epoch,
        }
    }

    /// The epoch this session serves.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying grounder.
    pub fn grounder(&self) -> &LocalGrounder {
        &self.grounder
    }

    /// The memoized answers.
    pub fn cache(&self) -> &LocalCache {
        &self.cache
    }

    /// Clone the cache out (the writer carries it to the next epoch).
    pub fn cache_snapshot(&self) -> LocalCache {
        self.cache.clone()
    }

    /// The budget used when a request does not carry one.
    pub fn default_budget(&self) -> LocalBudget {
        self.default_budget
    }

    /// Override the default budget (tests; the server passes explicit
    /// budgets through from the wire).
    pub fn set_default_budget(&mut self, budget: LocalBudget) {
        self.default_budget = budget;
    }

    /// Local marginal of fact `id` under `budget` (default budget when
    /// `None`). Returns `None` for a fact id the snapshot doesn't hold.
    pub fn marginal(&mut self, id: i64, budget: Option<LocalBudget>) -> Option<LocalAnswer> {
        let budget = budget.unwrap_or(self.default_budget);
        let key = self.grounder.key_of(id)?;
        if let Some(entry) = self.cache.get(&key, budget, self.epoch) {
            return Some(LocalAnswer {
                id,
                p: entry.p,
                nodes: entry.nodes,
                factors: entry.factors,
                frontier_stops: entry.frontier_stops,
                budget,
                exact: entry.exact,
                cache: if entry.carried {
                    LocalCacheStatus::Carried
                } else {
                    LocalCacheStatus::Hit
                },
            });
        }

        let ground = self.grounder.expand(id, budget)?;
        let graph = from_phi(&ground.factors);
        let n = graph.graph.num_vars();
        let exact = n <= LOCAL_EXACT_MAX_VARS;
        let p = if n == 0 {
            // No factor touches the subgraph: a fact with no prior and
            // no derivations is uniform.
            0.5
        } else {
            let marginals = if exact {
                exact_marginals(&graph.graph)
            } else {
                partitioned_marginals(&graph.graph, &self.gibbs).marginals.p
            };
            match graph.var_of(id) {
                Some(v) => marginals[v],
                None => 0.5,
            }
        };

        self.cache.put(
            key,
            budget,
            LocalCacheEntry {
                epoch: self.epoch,
                p,
                nodes: ground.fact_ids.len() as u64,
                factors: ground.factors.len() as u64,
                frontier_stops: ground.frontier_stops,
                exact,
                support: ground.fact_ids.clone(),
                carried: false,
            },
        );
        Some(LocalAnswer {
            id,
            p,
            nodes: ground.fact_ids.len() as u64,
            factors: ground.factors.len() as u64,
            frontier_stops: ground.frontier_stops,
            budget,
            exact,
            cache: LocalCacheStatus::Miss,
        })
    }

    /// Local marginal by `(R, x, C1, y, C2)` key instead of fact id.
    pub fn marginal_by_key(
        &mut self,
        key: &[i64; 5],
        budget: Option<LocalBudget>,
    ) -> Option<LocalAnswer> {
        let id = self.grounder.id_of(key)?;
        self.marginal(id, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::sigmoid;
    use probkb_core::prelude::{expand, ExpandOptions};
    use probkb_kb::prelude::parse;

    fn session(text: &str) -> LocalSession {
        let kb = parse(text).unwrap().build();
        let expansion = expand(&kb, &ExpandOptions::default()).unwrap();
        let grounder = LocalGrounder::new(expansion.outcome.facts, &kb.rules).unwrap();
        LocalSession::new(grounder, GibbsConfig::default(), 0)
    }

    #[test]
    fn isolated_weighted_fact_is_sigmoid_of_weight() {
        let mut s = session("fact 0.9 q(a:A, b:B)");
        let ans = s.marginal(0, Some(LocalBudget::UNLIMITED)).unwrap();
        assert!(ans.exact);
        assert!((ans.p - sigmoid(0.9)).abs() < 1e-12, "p={}", ans.p);
        assert_eq!(ans.cache, LocalCacheStatus::Miss);
        // Second ask is a hit with the same bits.
        let again = s.marginal(0, Some(LocalBudget::UNLIMITED)).unwrap();
        assert_eq!(again.cache, LocalCacheStatus::Hit);
        assert_eq!(again.p.to_bits(), ans.p.to_bits());
    }

    #[test]
    fn chained_fact_matches_exact_two_var_enumeration() {
        let mut s = session(
            r#"
            fact 0.9 q(a:A, b:B)
            rule 1.5 p(x:A, y:B) :- q(x, y)
            "#,
        );
        // TΠ: id 0 = q(a,b) weighted, id 1 = p(a,b) inferred.
        let ans = s.marginal(1, Some(LocalBudget::UNLIMITED)).unwrap();
        assert!(ans.exact);
        assert_eq!(ans.nodes, 2);
        assert_eq!(ans.factors, 2); // singleton + rule factor
        assert_eq!(ans.frontier_stops, 0);
        // Exact 2-var enumeration: states (q,p) with φ_q = e^{0.9·q},
        // φ_r = e^{1.5·[q→p]} (violated only at q=1,p=0).
        let wq = 0.9f64;
        let wr = 1.5f64;
        let z00 = 1.0 * wr.exp(); // q=0,p=0: rule satisfied
        let z01 = 1.0 * wr.exp(); // q=0,p=1
        let z10 = wq.exp() * 1.0; // q=1,p=0: rule violated
        let z11 = wq.exp() * wr.exp();
        let expect = (z01 + z11) / (z00 + z01 + z10 + z11);
        assert!((ans.p - expect).abs() < 1e-9, "p={} expect={expect}", ans.p);
    }

    #[test]
    fn unknown_fact_is_none_and_budget_zero_is_uniform() {
        let mut s = session(
            r#"
            fact 0.9 q(a:A, b:B)
            rule 1.5 p(x:A, y:B) :- q(x, y)
            "#,
        );
        assert!(s.marginal(77, None).is_none());
        let ans = s.marginal(1, Some(LocalBudget::uniform(0))).unwrap();
        assert_eq!(ans.nodes, 1);
        assert_eq!(ans.factors, 0);
        assert!(ans.frontier_stops > 0);
        assert!((ans.p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn annotation_carries_all_fields() {
        let mut s = session("fact 0.9 q(a:A, b:B)");
        let ans = s.marginal(0, Some(LocalBudget::uniform(8))).unwrap();
        let a = ans.annotate();
        for needle in [
            "LocalGround",
            "nodes=1",
            "factors=1",
            "budget=8/8",
            "frontier_stops=",
            "cache=miss",
            "method=exact",
        ] {
            assert!(a.contains(needle), "missing {needle} in {a}");
        }
    }
}
