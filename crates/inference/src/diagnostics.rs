//! Online convergence diagnostics for multi-chain MCMC.
//!
//! Two families of estimators live here:
//!
//! * **Sequence-based** ([`split_rhat`], [`ess`]) — textbook split-R̂
//!   (Gelman–Rubin) and autocorrelation-based effective sample size over
//!   explicit per-chain draw sequences. Used by tests and by anyone
//!   holding raw chains.
//! * **Incremental** ([`ChainStats`]) — the sampler-facing accumulator.
//!   Chains push one *block* of per-variable true-counts every
//!   `check_interval` sweeps; split-R̂ is then **exact** with respect to
//!   the underlying 0/1 draws (for a binary variable `Σx² = Σx`, so half
//!   means and variances reconstruct losslessly from block counts), and
//!   ESS falls back to a batch-means estimate. Memory is one `u32` per
//!   (chain, variable, block) instead of one bit per draw.
//!
//! Degenerate-input semantics (documented because samplers hit them on
//! real graphs): a variable whose chains are all constant *and equal*
//! carries no residual uncertainty — its R̂ is defined as 1.0 and its ESS
//! as the total draw count, so near-deterministic marginals (p ≈ 0 or 1,
//! ubiquitous after grounding) never block convergence. Constant chains
//! stuck at *different* values are maximally unconverged: R̂ = ∞.

/// Split-R̂ (potential scale reduction) over explicit chains.
///
/// Each chain is split in half (the middle draw is dropped when a chain
/// has odd length) and the classic `sqrt(var⁺ / W)` statistic is computed
/// over the resulting half-chains. Values near 1.0 indicate the chains
/// have mixed; > 1.1 is the conventional "keep sampling" threshold.
///
/// Returns 1.0 when every half-chain is constant and equal, `f64::INFINITY`
/// when within-half variance is zero but the halves disagree, and `f64::NAN`
/// when there are fewer than two halves with at least two draws each.
pub fn split_rhat(chains: &[Vec<f64>]) -> f64 {
    let mut halves: Vec<&[f64]> = Vec::with_capacity(chains.len() * 2);
    for chain in chains {
        let n = chain.len() / 2;
        if n >= 2 {
            halves.push(&chain[..n]);
            halves.push(&chain[chain.len() - n..]);
        }
    }
    rhat_of_halves(&halves)
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (n−1 divisor).
fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// R̂ from equal-length half-chains: `sqrt(var⁺ / W)` with
/// `var⁺ = (n−1)/n·W + B/n`.
fn rhat_of_halves(halves: &[&[f64]]) -> f64 {
    if halves.len() < 2 {
        return f64::NAN;
    }
    let n = halves[0].len();
    let means: Vec<f64> = halves.iter().map(|h| mean(h)).collect();
    let w = halves.iter().map(|h| variance(h)).sum::<f64>() / halves.len() as f64;
    let b = n as f64 * variance(&means);
    if w == 0.0 {
        return if b == 0.0 { 1.0 } else { f64::INFINITY };
    }
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    (var_plus / w).sqrt()
}

/// Multi-chain effective sample size via Geyer's initial-monotone-positive
/// autocorrelation sum (the Stan estimator, without rank normalization).
///
/// Chains are truncated to the shortest length `n`; with `m` chains the
/// result is `m·n / τ` where `τ = 1 + 2·Σρ_t`, clamped to `m·n`.
/// Degenerate inputs return the total draw count `m·n`: chains shorter
/// than 2 draws carry no autocorrelation information, and constant equal
/// chains are treated as fully efficient (see the module docs).
pub fn ess(chains: &[Vec<f64>]) -> f64 {
    let m = chains.len();
    if m == 0 {
        return 0.0;
    }
    let n = chains.iter().map(Vec::len).min().unwrap_or(0);
    let total = (m * n) as f64;
    if n < 2 {
        return total;
    }
    let means: Vec<f64> = chains.iter().map(|c| mean(&c[..n])).collect();
    let vars: Vec<f64> = chains.iter().map(|c| variance(&c[..n])).collect();
    let w = vars.iter().sum::<f64>() / m as f64;
    let b = if m >= 2 {
        n as f64 * variance(&means)
    } else {
        0.0
    };
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    if var_plus == 0.0 {
        return total;
    }

    // Autocovariance at lag t, averaged across chains (biased 1/n divisor,
    // which regularizes the large-lag estimates).
    let acov = |t: usize| -> f64 {
        chains
            .iter()
            .zip(means.iter())
            .map(|(c, &mu)| {
                c[..n - t]
                    .iter()
                    .zip(c[t..n].iter())
                    .map(|(a, b)| (a - mu) * (b - mu))
                    .sum::<f64>()
                    / n as f64
            })
            .sum::<f64>()
            / m as f64
    };

    // ρ_t = 1 − (W − mean-acov_t) / var⁺; sum consecutive pairs while they
    // stay positive, enforcing monotone decrease (Geyer initial monotone).
    let rho = |t: usize| 1.0 - (w - acov(t)) / var_plus;
    let mut tau = -1.0;
    let mut prev_pair = f64::INFINITY;
    let mut t = 0usize;
    while t + 1 < n {
        let pair = rho(t) + rho(t + 1);
        if pair <= 0.0 {
            break;
        }
        let pair = pair.min(prev_pair);
        prev_pair = pair;
        tau += 2.0 * pair;
        t += 2;
    }
    let tau = tau.max(1.0 / total.max(1.0));
    (total / tau).min(total)
}

/// Incremental cross-chain statistics over binary draws, batched in
/// fixed-size blocks — the accumulator behind the partitioned sampler's
/// online convergence control.
///
/// Every chain appends one block (per-variable counts of `true` draws over
/// `block_sweeps` consecutive sweeps) per check interval. All statistics
/// are pure functions of the integer counts, so any two runs that produce
/// the same draws — regardless of worker count — reach byte-identical
/// stopping decisions.
#[derive(Debug, Clone)]
pub struct ChainStats {
    chains: usize,
    vars: usize,
    block_sweeps: usize,
    /// `blocks[chain][block][var]` = number of `true` draws.
    blocks: Vec<Vec<Vec<u32>>>,
}

impl ChainStats {
    /// An empty accumulator for `chains` chains over `vars` variables,
    /// with `block_sweeps` draws per block.
    pub fn new(chains: usize, vars: usize, block_sweeps: usize) -> Self {
        ChainStats {
            chains,
            vars,
            block_sweeps: block_sweeps.max(1),
            blocks: vec![Vec::new(); chains],
        }
    }

    /// Append one completed block of per-variable true counts for `chain`.
    ///
    /// # Panics
    /// Panics if `counts` has the wrong arity or a count exceeds the
    /// block's sweep budget.
    pub fn push_block(&mut self, chain: usize, counts: Vec<u32>) {
        assert_eq!(counts.len(), self.vars, "block arity mismatch");
        debug_assert!(counts.iter().all(|&c| c as usize <= self.block_sweeps));
        self.blocks[chain].push(counts);
    }

    /// Completed blocks per chain (the minimum across chains).
    pub fn num_blocks(&self) -> usize {
        self.blocks.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Draws per chain covered by the completed blocks.
    pub fn draws_per_chain(&self) -> usize {
        self.num_blocks() * self.block_sweeps
    }

    /// Split-R̂ of one variable, exact over the underlying binary draws.
    ///
    /// Each chain's most recent even number of blocks is split into two
    /// halves (the oldest block is dropped when the count is odd — the
    /// stalest draws are the least informative). Returns `None` until every
    /// chain has at least two blocks.
    pub fn split_rhat(&self, var: usize) -> Option<f64> {
        let usable = self.num_blocks() & !1usize;
        if usable < 2 || self.chains * 2 < 2 {
            return None;
        }
        let half_blocks = usable / 2;
        let n = half_blocks * self.block_sweeps;
        // (mean, variance) of one half reconstructed from true counts:
        // for 0/1 draws Σx² = Σx = T, so s² = (T − T²/n)/(n−1).
        let mut means = Vec::with_capacity(self.chains * 2);
        let mut vars_ = Vec::with_capacity(self.chains * 2);
        for chain in &self.blocks {
            let recent = &chain[chain.len() - usable..];
            for half in [&recent[..half_blocks], &recent[half_blocks..]] {
                let t: u64 = half.iter().map(|b| b[var] as u64).sum();
                let t = t as f64;
                let m = t / n as f64;
                means.push(m);
                vars_.push((t - t * m) / (n as f64 - 1.0));
            }
        }
        let w = vars_.iter().sum::<f64>() / vars_.len() as f64;
        let b = n as f64 * variance(&means);
        if w == 0.0 {
            return Some(if b == 0.0 { 1.0 } else { f64::INFINITY });
        }
        let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
        Some((var_plus / w).sqrt())
    }

    /// The worst (largest) split-R̂ across all variables — the statistic
    /// the stopping rule compares against `target_rhat`.
    pub fn max_split_rhat(&self) -> Option<f64> {
        (0..self.vars)
            .map(|v| self.split_rhat(v))
            .try_fold(f64::NEG_INFINITY, |acc, r| r.map(|r| acc.max(r)))
            .filter(|r| r.is_finite() || *r == f64::INFINITY)
    }

    /// Batch-means effective sample size of one variable, summed over
    /// chains: per chain `n·s² / (block_sweeps · var(block means))`,
    /// clamped to the chain's draw count. Constant chains (and chains too
    /// short to estimate) count as fully efficient — see the module docs.
    pub fn batch_ess(&self, var: usize) -> Option<f64> {
        let blocks = self.num_blocks();
        if blocks == 0 {
            return None;
        }
        let s = self.block_sweeps as f64;
        let n = (blocks * self.block_sweeps) as f64;
        let mut total = 0.0;
        for chain in &self.blocks {
            let recent = &chain[chain.len() - blocks..];
            let t: u64 = recent.iter().map(|b| b[var] as u64).sum();
            let t = t as f64;
            let m = t / n;
            let sample_var = (t - t * m) / (n - 1.0).max(1.0);
            if blocks < 2 || sample_var == 0.0 {
                total += n;
                continue;
            }
            let block_means: Vec<f64> = recent.iter().map(|b| b[var] as f64 / s).collect();
            let vb = variance(&block_means);
            if vb == 0.0 {
                total += n;
            } else {
                total += (n * sample_var / (s * vb)).min(n);
            }
        }
        Some(total)
    }

    /// The smallest per-variable batch-means ESS — reported alongside R̂.
    pub fn min_batch_ess(&self) -> Option<f64> {
        (0..self.vars)
            .map(|v| self.batch_ess(v))
            .try_fold(f64::INFINITY, |acc, e| e.map(|e| acc.min(e)))
            .filter(|e| e.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_support::rng::{Rng, SeedableRng, StdRng};

    fn iid_chain(seed: u64, n: usize, p: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| if rng.random::<f64>() < p { 1.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn converged_chains_give_rhat_near_one() {
        let chains: Vec<Vec<f64>> = (0..4).map(|c| iid_chain(c, 2000, 0.3)).collect();
        let r = split_rhat(&chains);
        assert!((r - 1.0).abs() < 0.02, "iid chains R̂ = {r}");
    }

    #[test]
    fn offset_chains_give_rhat_above_threshold() {
        // Two chains stuck in different modes: classic non-convergence.
        let a = iid_chain(1, 1000, 0.2);
        let b = iid_chain(2, 1000, 0.8);
        let r = split_rhat(&[a, b]);
        assert!(r > 1.1, "offset chains R̂ = {r}");
    }

    #[test]
    fn within_chain_drift_is_caught_by_the_split() {
        // One chain whose first half differs from its second half: plain
        // (unsplit) R̂ would miss this; split-R̂ must not.
        let mut drifting = iid_chain(3, 1000, 0.1);
        drifting.extend(iid_chain(4, 1000, 0.9));
        let stable = iid_chain(5, 2000, 0.5);
        let r = split_rhat(&[drifting, stable]);
        assert!(r > 1.1, "drifting chain R̂ = {r}");
    }

    #[test]
    fn rhat_degenerate_inputs() {
        // Constant equal chains: converged by definition.
        assert_eq!(split_rhat(&[vec![1.0; 10], vec![1.0; 10]]), 1.0);
        // Constant but different: infinitely far from mixed.
        assert_eq!(
            split_rhat(&[vec![0.0; 10], vec![1.0; 10]]),
            f64::INFINITY
        );
        // Too short to split: undefined.
        assert!(split_rhat(&[vec![1.0, 0.0], vec![0.0, 1.0]]).is_nan());
        assert!(split_rhat(&[]).is_nan());
    }

    #[test]
    fn ess_of_iid_chains_is_near_total() {
        let chains: Vec<Vec<f64>> = (0..2).map(|c| iid_chain(10 + c, 4000, 0.4)).collect();
        let e = ess(&chains);
        let total = 8000.0;
        assert!(e > 0.5 * total && e <= total, "iid ESS = {e}");
    }

    #[test]
    fn ess_shrinks_under_autocorrelation() {
        // A sticky two-state chain: flip with probability 0.05 → strong
        // positive autocorrelation → ESS far below the draw count.
        let mut rng = StdRng::seed_from_u64(42);
        let mut chains = Vec::new();
        for _ in 0..2 {
            let mut x = 0.0;
            let mut chain = Vec::with_capacity(4000);
            for _ in 0..4000 {
                if rng.random::<f64>() < 0.05 {
                    x = 1.0 - x;
                }
                chain.push(x);
            }
            chains.push(chain);
        }
        let e = ess(&chains);
        assert!(e < 2000.0, "sticky chain ESS = {e} should be ≪ 8000");
        assert!(e > 0.0);
    }

    #[test]
    fn ess_edge_cases() {
        // Constant chain: fully efficient by our convention.
        assert_eq!(ess(&[vec![0.5; 100]]), 100.0);
        // Single draw per chain: no autocorrelation estimable.
        assert_eq!(ess(&[vec![1.0]]), 1.0);
        // Two chains of length 1.
        assert_eq!(ess(&[vec![0.0], vec![1.0]]), 2.0);
        // No chains at all.
        assert_eq!(ess(&[]), 0.0);
    }

    #[test]
    fn chain_stats_split_rhat_matches_sequence_estimator() {
        // Push binary draws through both paths and compare: block-based
        // split-R̂ must equal the sequence one computed on the same split.
        let block = 50usize;
        let blocks = 8usize;
        let n = block * blocks;
        let mut stats = ChainStats::new(2, 1, block);
        let mut seqs: Vec<Vec<f64>> = Vec::new();
        for chain in 0..2 {
            let draws = iid_chain(100 + chain as u64, n, 0.25 + 0.5 * chain as f64);
            for b in 0..blocks {
                let trues = draws[b * block..(b + 1) * block]
                    .iter()
                    .filter(|&&x| x == 1.0)
                    .count() as u32;
                stats.push_block(chain, vec![trues]);
            }
            seqs.push(draws);
        }
        let from_blocks = stats.split_rhat(0).unwrap();
        let from_seq = split_rhat(&seqs);
        assert!(
            (from_blocks - from_seq).abs() < 1e-12,
            "block {from_blocks} vs sequence {from_seq}"
        );
        assert_eq!(stats.max_split_rhat(), Some(from_blocks));
        assert_eq!(stats.draws_per_chain(), n);
    }

    #[test]
    fn chain_stats_needs_two_blocks_and_drops_odd_oldest() {
        let mut stats = ChainStats::new(2, 1, 10);
        assert_eq!(stats.split_rhat(0), None);
        stats.push_block(0, vec![5]);
        stats.push_block(1, vec![5]);
        assert_eq!(stats.split_rhat(0), None, "one block cannot split");
        stats.push_block(0, vec![5]);
        stats.push_block(1, vec![5]);
        assert!(stats.split_rhat(0).is_some());
        // A third block leaves an odd count; the estimator uses the most
        // recent two and still answers.
        stats.push_block(0, vec![0]);
        stats.push_block(1, vec![10]);
        assert!(stats.split_rhat(0).unwrap() > 1.1);
    }

    #[test]
    fn chain_stats_constant_variables_do_not_block_stopping() {
        // Variable 0 always false, variable 1 always true, in every chain:
        // R̂ = 1.0 and ESS = total draws for both.
        let mut stats = ChainStats::new(2, 2, 20);
        for chain in 0..2 {
            for _ in 0..4 {
                stats.push_block(chain, vec![0, 20]);
            }
        }
        assert_eq!(stats.max_split_rhat(), Some(1.0));
        assert_eq!(stats.min_batch_ess(), Some(160.0));
    }

    #[test]
    fn batch_ess_shrinks_for_slowly_mixing_blocks() {
        // Chain A: block means all equal (well mixed). Chain B: first
        // half of blocks near 0, second half near full (slow drift) —
        // its batch ESS must be far below its draw count.
        let mut mixed = ChainStats::new(1, 1, 100);
        let mut drift = ChainStats::new(1, 1, 100);
        for b in 0..10 {
            mixed.push_block(0, vec![50]);
            drift.push_block(0, vec![if b < 5 { 2 } else { 98 }]);
        }
        let e_mixed = mixed.batch_ess(0).unwrap();
        let e_drift = drift.batch_ess(0).unwrap();
        assert_eq!(e_mixed, 1000.0, "identical block means → fully efficient");
        assert!(e_drift < 100.0, "drifting blocks ESS = {e_drift}");
    }
}
