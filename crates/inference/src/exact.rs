//! Exact marginal inference by enumeration — the test oracle that keeps
//! the samplers honest on small graphs.

use probkb_factorgraph::prelude::FactorGraph;

/// Exact marginals `P(X_v = 1)` by summing over all `2^n` assignments.
///
/// # Panics
/// Panics when the graph has more than 24 variables (enumeration would be
/// unreasonable; use the samplers).
pub fn exact_marginals(graph: &FactorGraph) -> Vec<f64> {
    let n = graph.num_vars();
    assert!(n <= 24, "exact inference limited to 24 variables, got {n}");
    let mut numerators = vec![0.0f64; n];
    let mut z = 0.0f64;
    let mut assignment = vec![false; n];
    // Stream assignments via binary counting; stabilize with the max
    // log-score to avoid overflow on large weights.
    let mut log_scores = Vec::with_capacity(1usize << n);
    for mask in 0u64..(1u64 << n) {
        for (v, slot) in assignment.iter_mut().enumerate() {
            *slot = (mask >> v) & 1 == 1;
        }
        log_scores.push(graph.log_score(&assignment));
    }
    let max_log = log_scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for (mask, log_score) in log_scores.iter().enumerate() {
        let w = (log_score - max_log).exp();
        z += w;
        for (v, numerator) in numerators.iter_mut().enumerate() {
            if (mask >> v) & 1 == 1 {
                *numerator += w;
            }
        }
    }
    numerators.iter().map(|&x| x / z).collect()
}

/// Exact log partition function `ln Z` (for diagnostics and tests).
pub fn log_partition(graph: &FactorGraph) -> f64 {
    let n = graph.num_vars();
    assert!(n <= 24, "exact inference limited to 24 variables, got {n}");
    let mut assignment = vec![false; n];
    let mut max_log = f64::NEG_INFINITY;
    let mut scores = Vec::with_capacity(1usize << n);
    for mask in 0u64..(1u64 << n) {
        for (v, slot) in assignment.iter_mut().enumerate() {
            *slot = (mask >> v) & 1 == 1;
        }
        let s = graph.log_score(&assignment);
        max_log = max_log.max(s);
        scores.push(s);
    }
    max_log + scores.iter().map(|s| (s - max_log).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::sigmoid;
    use probkb_factorgraph::prelude::Factor;

    #[test]
    fn single_singleton_matches_sigmoid() {
        for w in [-2.0, 0.0, 0.7, 3.5] {
            let g = FactorGraph::new(1, vec![Factor::singleton(0, w)]);
            let m = exact_marginals(&g);
            assert!((m[0] - sigmoid(w)).abs() < 1e-12, "w={w}");
        }
    }

    #[test]
    fn empty_graph_is_uniform() {
        let g = FactorGraph::new(3, vec![]);
        for p in exact_marginals(&g) {
            assert!((p - 0.5).abs() < 1e-12);
        }
        // ln Z = ln 2^3.
        assert!((log_partition(&g) - (8f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn implication_computed_by_hand() {
        // Vars (b, h); factors: singleton(b, w1), rule h <- b with w2.
        // Assignments (b,h): (0,0): w2 (vacuous); (0,1): w2; (1,0): w1;
        // (1,1): w1 + w2.
        let w1 = 1.0;
        let w2 = 0.5;
        let g = FactorGraph::new(
            2,
            vec![Factor::singleton(0, w1), Factor::rule(1, vec![0], w2)],
        );
        let e = |x: f64| x.exp();
        let z = e(w2) + e(w2) + e(w1) + e(w1 + w2);
        let p_b = (e(w1) + e(w1 + w2)) / z;
        let p_h = (e(w2) + e(w1 + w2)) / z;
        let m = exact_marginals(&g);
        assert!((m[0] - p_b).abs() < 1e-12);
        assert!((m[1] - p_h).abs() < 1e-12);
    }

    #[test]
    fn large_weights_do_not_overflow() {
        let g = FactorGraph::new(2, vec![Factor::rule(1, vec![0], 800.0)]);
        let m = exact_marginals(&g);
        assert!(m.iter().all(|p| p.is_finite()));
        // The one violating assignment (b=1, h=0) has ~zero mass; the
        // other three are uniform: P(b)=0.5 is wrong — P(b)= (01? ...)
        // assignments: (0,0),(0,1),(1,1) equal mass → P(b=1)=1/3, P(h=1)=2/3.
        assert!((m[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((m[1] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "limited to 24")]
    fn refuses_huge_graphs() {
        let g = FactorGraph::new(30, vec![]);
        let _ = exact_marginals(&g);
    }
}
