//! Loopy belief propagation — a deterministic alternative to sampling.
//!
//! The paper's related work (§7) cites residual/parallel BP among the
//! engines its factor graphs can feed; this module implements standard
//! sum-product message passing in log space. Exact on trees; a damped
//! fixed-point iteration on loopy graphs.

use probkb_factorgraph::prelude::{FactorGraph, VarId};

use crate::gibbs::Marginals;

/// BP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpConfig {
    /// Maximum message-passing rounds.
    pub max_iterations: usize,
    /// Convergence threshold on the max message change.
    pub tolerance: f64,
    /// Damping in [0, 1): new = (1-d)·update + d·old. Helps loopy graphs.
    pub damping: f64,
}

impl Default for BpConfig {
    fn default() -> Self {
        BpConfig {
            max_iterations: 200,
            tolerance: 1e-8,
            damping: 0.3,
        }
    }
}

/// The result of a BP run.
#[derive(Debug, Clone)]
pub struct BpResult {
    /// Estimated marginals.
    pub marginals: Marginals,
    /// Rounds executed.
    pub iterations: usize,
    /// True when the message updates fell below tolerance.
    pub converged: bool,
}

/// Run loopy sum-product BP and return per-variable marginals.
pub fn belief_propagation(graph: &FactorGraph, config: &BpConfig) -> BpResult {
    let n = graph.num_vars();
    let factors = graph.factors();

    // Message storage: for every (factor, var-slot) edge, one message in
    // each direction, parameterized as log-odds toward "true".
    // edges[f] lists the variables of factor f in slot order.
    let edges: Vec<Vec<VarId>> = factors.iter().map(|f| f.vars().collect()).collect();
    let mut var_to_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (fi, vars) in edges.iter().enumerate() {
        for (slot, &v) in vars.iter().enumerate() {
            var_to_edges[v].push((fi, slot));
        }
    }

    // msg_vf[f][slot]: variable → factor log-odds; msg_fv: factor → var.
    let mut msg_vf: Vec<Vec<f64>> = edges.iter().map(|vars| vec![0.0; vars.len()]).collect();
    let mut msg_fv: Vec<Vec<f64>> = msg_vf.clone();

    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        let mut max_delta = 0.0f64;

        // Variable → factor: sum of incoming factor messages except this
        // edge's own.
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            let total: f64 = var_to_edges[v]
                .iter()
                .map(|&(fi, slot)| msg_fv[fi][slot])
                .sum();
            for &(fi, slot) in &var_to_edges[v] {
                let update = total - msg_fv[fi][slot];
                let old = msg_vf[fi][slot];
                let new = config.damping * old + (1.0 - config.damping) * update;
                max_delta = max_delta.max((new - old).abs());
                msg_vf[fi][slot] = new;
            }
        }

        // Factor → variable: marginalize the factor table against the
        // incoming messages (factors have ≤ 3 variables, so enumerating
        // the ≤ 8 rows is cheap and exact).
        for (fi, factor) in factors.iter().enumerate() {
            let arity = edges[fi].len();
            for slot in 0..arity {
                // For target value b ∈ {0,1}: logsumexp over the other
                // variables' assignments of factor log-value + incoming
                // log-odds for the "true" sides.
                let mut score = [f64::NEG_INFINITY; 2];
                for mask in 0u8..(1 << arity) {
                    let mut assignment = [false; 3];
                    for (s, slot_value) in assignment.iter_mut().enumerate().take(arity) {
                        *slot_value = (mask >> s) & 1 == 1;
                    }
                    // Factor log value under this local assignment.
                    let satisfied = {
                        let read = |s: usize| assignment[s];
                        if factor.body.is_empty() {
                            read(0)
                        } else {
                            let body_true = (1..arity).all(read);
                            !body_true || read(0)
                        }
                    };
                    let mut logv = if satisfied { factor.weight } else { 0.0 };
                    for s in 0..arity {
                        if s != slot && assignment[s] {
                            logv += msg_vf[fi][s];
                        }
                    }
                    let b = assignment[slot] as usize;
                    score[b] = logsumexp2(score[b], logv);
                }
                let update = score[1] - score[0];
                let old = msg_fv[fi][slot];
                let new = config.damping * old + (1.0 - config.damping) * update;
                max_delta = max_delta.max((new - old).abs());
                msg_fv[fi][slot] = new;
            }
        }

        if max_delta < config.tolerance {
            converged = true;
            break;
        }
    }

    // Beliefs: product (sum in log space) of all incoming messages.
    let p = (0..n)
        .map(|v| {
            let logit: f64 = var_to_edges[v]
                .iter()
                .map(|&(fi, slot)| msg_fv[fi][slot])
                .sum();
            crate::gibbs::sigmoid(logit)
        })
        .collect();

    BpResult {
        marginals: Marginals {
            p,
            samples: iterations,
        },
        iterations,
        converged,
    }
}

fn logsumexp2(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let m = a.max(b);
    m + ((a - m).exp() + (b - m).exp()).ln()
}

/// Max-product BP: the MAP-seeking variant. Identical message flow to
/// [`belief_propagation`] but marginalization is replaced by
/// maximization, so beliefs score the best completion rather than the
/// probability mass. Exact on trees. Returns the decoded assignment,
/// iterations used, and whether messages converged.
pub fn max_product(graph: &FactorGraph, config: &BpConfig) -> (Vec<bool>, usize, bool) {
    let n = graph.num_vars();
    let factors = graph.factors();
    let edges: Vec<Vec<VarId>> = factors.iter().map(|f| f.vars().collect()).collect();
    let mut var_to_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (fi, vars) in edges.iter().enumerate() {
        for (slot, &v) in vars.iter().enumerate() {
            var_to_edges[v].push((fi, slot));
        }
    }
    let mut msg_vf: Vec<Vec<f64>> = edges.iter().map(|vars| vec![0.0; vars.len()]).collect();
    let mut msg_fv: Vec<Vec<f64>> = msg_vf.clone();

    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        let mut max_delta = 0.0f64;

        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            let total: f64 = var_to_edges[v]
                .iter()
                .map(|&(fi, slot)| msg_fv[fi][slot])
                .sum();
            for &(fi, slot) in &var_to_edges[v] {
                let update = total - msg_fv[fi][slot];
                let old = msg_vf[fi][slot];
                let new = config.damping * old + (1.0 - config.damping) * update;
                max_delta = max_delta.max((new - old).abs());
                msg_vf[fi][slot] = new;
            }
        }

        for (fi, factor) in factors.iter().enumerate() {
            let arity = edges[fi].len();
            for slot in 0..arity {
                let mut score = [f64::NEG_INFINITY; 2];
                for mask in 0u8..(1 << arity) {
                    let mut assignment = [false; 3];
                    for (s, slot_value) in assignment.iter_mut().enumerate().take(arity) {
                        *slot_value = (mask >> s) & 1 == 1;
                    }
                    let satisfied = {
                        let read = |s: usize| assignment[s];
                        if factor.body.is_empty() {
                            read(0)
                        } else {
                            let body_true = (1..arity).all(read);
                            !body_true || read(0)
                        }
                    };
                    let mut logv = if satisfied { factor.weight } else { 0.0 };
                    for s in 0..arity {
                        if s != slot && assignment[s] {
                            logv += msg_vf[fi][s];
                        }
                    }
                    let b = assignment[slot] as usize;
                    score[b] = score[b].max(logv); // max instead of logsumexp
                }
                let update = score[1] - score[0];
                let old = msg_fv[fi][slot];
                let new = config.damping * old + (1.0 - config.damping) * update;
                max_delta = max_delta.max((new - old).abs());
                msg_fv[fi][slot] = new;
            }
        }

        if max_delta < config.tolerance {
            converged = true;
            break;
        }
    }

    let assignment = (0..n)
        .map(|v| {
            var_to_edges[v]
                .iter()
                .map(|&(fi, slot)| msg_fv[fi][slot])
                .sum::<f64>()
                > 0.0
        })
        .collect();
    (assignment, iterations, converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_marginals;
    use crate::gibbs::sigmoid;
    use probkb_factorgraph::prelude::Factor;

    fn assert_close(got: &[f64], want: &[f64], tol: f64, what: &str) {
        for (v, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w).abs() < tol,
                "{what} var {v}: bp {g} vs exact {w}"
            );
        }
    }

    #[test]
    fn exact_on_single_variable() {
        let g = FactorGraph::new(1, vec![Factor::singleton(0, 1.3)]);
        let r = belief_propagation(&g, &BpConfig::default());
        assert!(r.converged);
        assert!((r.marginals.p[0] - sigmoid(1.3)).abs() < 1e-6);
    }

    #[test]
    fn exact_on_tree_structured_graphs() {
        // A chain (tree): BP is exact.
        let mut factors = vec![Factor::singleton(0, 1.0)];
        for v in 1..6 {
            factors.push(Factor::rule(v, vec![v - 1], 0.8));
        }
        let g = FactorGraph::new(6, factors);
        let r = belief_propagation(&g, &BpConfig::default());
        assert!(r.converged);
        assert_close(&r.marginals.p, &exact_marginals(&g), 1e-5, "chain");
    }

    #[test]
    fn exact_on_ternary_tree() {
        // One ternary factor + leaf evidence: still a tree.
        let g = FactorGraph::new(
            3,
            vec![
                Factor::singleton(0, 1.5),
                Factor::singleton(1, -0.5),
                Factor::rule(2, vec![0, 1], 1.0),
            ],
        );
        let r = belief_propagation(&g, &BpConfig::default());
        assert!(r.converged);
        assert_close(&r.marginals.p, &exact_marginals(&g), 1e-5, "ternary");
    }

    #[test]
    fn close_on_loopy_graphs() {
        // Two derivations of the same head (the Figure 3 located_in
        // situation) create a loop; damped BP stays close to exact.
        let g = FactorGraph::new(
            4,
            vec![
                Factor::singleton(0, 1.0),
                Factor::singleton(1, 0.7),
                Factor::rule(2, vec![0], 1.2),
                Factor::rule(3, vec![0, 1], 0.6),
                Factor::rule(3, vec![2], 0.4),
            ],
        );
        let r = belief_propagation(&g, &BpConfig::default());
        assert!(r.converged, "damped BP should converge here");
        assert_close(&r.marginals.p, &exact_marginals(&g), 0.05, "loopy");
    }

    #[test]
    fn max_product_matches_exact_map_on_trees() {
        use crate::map::exact_map;
        let mut factors = vec![Factor::singleton(0, 2.0), Factor::singleton(2, -0.5)];
        for v in 1..6 {
            factors.push(Factor::rule(v, vec![v - 1], 1.2));
        }
        let g = FactorGraph::new(6, factors);
        let (assignment, _, converged) = max_product(&g, &BpConfig::default());
        assert!(converged);
        let oracle = exact_map(&g);
        assert!(
            (g.log_score(&assignment) - oracle.log_score).abs() < 1e-9,
            "max-product {} vs exact {}",
            g.log_score(&assignment),
            oracle.log_score
        );
    }

    #[test]
    fn max_product_decodes_independent_signs() {
        let weights = [1.0, -2.0, 0.5];
        let factors = weights
            .iter()
            .enumerate()
            .map(|(v, &w)| Factor::singleton(v, w))
            .collect();
        let g = FactorGraph::new(3, factors);
        let (assignment, _, converged) = max_product(&g, &BpConfig::default());
        assert!(converged);
        assert_eq!(assignment, vec![true, false, true]);
    }

    #[test]
    fn respects_iteration_cap() {
        let g = FactorGraph::new(2, vec![Factor::rule(1, vec![0], 1.0)]);
        let r = belief_propagation(
            &g,
            &BpConfig {
                max_iterations: 1,
                tolerance: 0.0,
                damping: 0.0,
            },
        );
        assert_eq!(r.iterations, 1);
        assert!(!r.converged);
    }
}
