//! Chromatic parallel Gibbs sampling (Gonzalez et al. \[14\], the sampler
//! the paper runs on GraphLab for its inference stage).
//!
//! Variables are partitioned into color classes such that no two
//! same-color variables share a factor; all variables of one color are
//! conditionally independent given the rest, so an entire class can be
//! resampled concurrently from a shared snapshot of the assignment. Colors
//! are swept sequentially — the resulting chain has the same stationary
//! distribution as sequential Gibbs.

use probkb_factorgraph::prelude::{color, Coloring, FactorGraph};
use probkb_support::rng::{Rng, SeedableRng, StdRng};

use crate::gibbs::{sigmoid, GibbsConfig, Marginals};

/// Chromatic parallel Gibbs sampler.
pub struct ChromaticGibbs<'a> {
    graph: &'a FactorGraph,
    coloring: Coloring,
    state: Vec<bool>,
    threads: usize,
    seed: u64,
    sweep_no: u64,
}

impl<'a> ChromaticGibbs<'a> {
    /// Build a sampler with a freshly computed coloring.
    pub fn new(graph: &'a FactorGraph, threads: usize, seed: u64) -> Self {
        ChromaticGibbs {
            graph,
            coloring: color(graph),
            state: vec![false; graph.num_vars()],
            threads: threads.max(1),
            seed,
            sweep_no: 0,
        }
    }

    /// Number of colors in the schedule.
    pub fn num_colors(&self) -> usize {
        self.coloring.num_colors()
    }

    /// The current assignment.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// One sweep: resample every color class, classes in sequence,
    /// members in parallel.
    pub fn sweep(&mut self) {
        self.sweep_no += 1;
        let sweep_no = self.sweep_no;
        for (class_idx, class) in self.coloring.classes.iter().enumerate() {
            let graph = self.graph;
            let state: &[bool] = &self.state;
            let seed = self.seed;
            // Compute new values against the frozen snapshot (same-color
            // variables never share a factor, so this equals sequential
            // order within the class). Each chunk seeds its own RNG from
            // (sweep, class, chunk index), so the result is deterministic
            // regardless of scheduling.
            let updates = probkb_support::sync::map_chunks(class, self.threads, |tid, vars| {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (sweep_no << 24) ^ ((class_idx as u64) << 16) ^ tid as u64,
                );
                vars.iter()
                    .map(|&v| {
                        let delta = graph.flip_delta_ro(v, state);
                        (v, rng.random::<f64>() < sigmoid(delta))
                    })
                    .collect::<Vec<_>>()
            });
            for (v, value) in updates {
                self.state[v] = value;
            }
        }
    }

    /// Run burn-in plus sampling sweeps and estimate marginals.
    ///
    /// Unlike [`ChromaticGibbs::sweep`] (which spawns a scope per color
    /// class — convenient for stepping in tests), `run` keeps one
    /// persistent worker per thread for the whole schedule, synchronized
    /// by barriers between color classes. State lives in relaxed atomics;
    /// the barriers provide the ordering, and same-color variables never
    /// share a factor, so no worker ever reads a variable another worker
    /// is writing within a class.
    pub fn run(&mut self, config: &GibbsConfig) -> Marginals {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Barrier;

        let n = self.graph.num_vars();
        let threads = self.threads;
        let total_sweeps = config.burn_in + config.samples;
        let state: Vec<AtomicBool> = self.state.iter().map(|&b| AtomicBool::new(b)).collect();
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let barrier = Barrier::new(threads);
        let graph = self.graph;
        let seed = config.seed ^ self.seed;

        // Schedule: classes big enough to amortize a barrier run in
        // parallel; runs of small classes execute sequentially on worker 0
        // under a single barrier. Grounding graphs are heavily skewed (a
        // few huge classes, a long tail of tiny hub classes), so this
        // removes most synchronization.
        const PARALLEL_MIN: usize = 2048;
        enum Phase<'c> {
            Parallel(&'c [usize]),
            Sequential(Vec<&'c [usize]>),
        }
        let mut schedule: Vec<Phase> = Vec::new();
        for class in &self.coloring.classes {
            if class.len() >= PARALLEL_MIN {
                schedule.push(Phase::Parallel(class));
            } else if let Some(Phase::Sequential(run)) = schedule.last_mut() {
                run.push(class);
            } else {
                schedule.push(Phase::Sequential(vec![class]));
            }
        }
        let schedule = &schedule;

        std::thread::scope(|scope| {
            for tid in 0..threads {
                let state = &state;
                let counts = &counts;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut rng =
                        StdRng::seed_from_u64(seed ^ ((tid as u64) << 32) ^ 0x9E3779B9);
                    let read = |v: usize| state[v].load(Ordering::Relaxed);
                    let resample = |vars: &[usize], rng: &mut StdRng| {
                        for &v in vars {
                            let delta = graph.flip_delta_by(v, &read);
                            let value = rng.random::<f64>() < sigmoid(delta);
                            state[v].store(value, Ordering::Relaxed);
                        }
                    };
                    let count_chunk = n.div_ceil(threads).max(1);
                    for sweep in 0..total_sweeps {
                        for phase in schedule {
                            match phase {
                                Phase::Parallel(class) => {
                                    let chunk = class.len().div_ceil(threads).max(1);
                                    let start = tid * chunk;
                                    if start < class.len() {
                                        let end = (start + chunk).min(class.len());
                                        resample(&class[start..end], &mut rng);
                                    }
                                }
                                Phase::Sequential(run) => {
                                    if tid == 0 {
                                        for class in run {
                                            resample(class, &mut rng);
                                        }
                                    }
                                }
                            }
                            barrier.wait();
                        }
                        if sweep >= config.burn_in {
                            let start = tid * count_chunk;
                            if start < n {
                                let end = (start + count_chunk).min(n);
                                for (v, count) in
                                    counts.iter().enumerate().take(end).skip(start)
                                {
                                    if state[v].load(Ordering::Relaxed) {
                                        count.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        // Keep sweeps aligned so counting never races with
                        // the next sweep's first color class.
                        barrier.wait();
                    }
                });
            }
        });

        for (slot, bit) in self.state.iter_mut().zip(state.iter()) {
            *slot = bit.load(std::sync::atomic::Ordering::Relaxed);
        }
        Marginals {
            p: counts
                .iter()
                .map(|c| {
                    c.load(std::sync::atomic::Ordering::Relaxed) as f64
                        / config.samples.max(1) as f64
                })
                .collect(),
            samples: config.samples,
        }
    }
}

/// Run chromatic Gibbs with a config.
pub fn chromatic_marginals(
    graph: &FactorGraph,
    threads: usize,
    config: &GibbsConfig,
) -> Marginals {
    ChromaticGibbs::new(graph, threads, config.seed).run(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_marginals;
    use probkb_factorgraph::prelude::Factor;

    fn chain_graph(n: usize) -> FactorGraph {
        let mut factors = vec![Factor::singleton(0, 1.5)];
        for v in 1..n {
            factors.push(Factor::rule(v, vec![v - 1], 1.0));
        }
        FactorGraph::new(n, factors)
    }

    #[test]
    fn matches_exact_on_small_chain() {
        let g = chain_graph(6);
        let exact = exact_marginals(&g);
        let config = GibbsConfig {
            burn_in: 300,
            samples: 20000,
            seed: 3,
            ..GibbsConfig::default()
        };
        let m = chromatic_marginals(&g, 4, &config);
        for (v, (got, want)) in m.p.iter().zip(exact.iter()).enumerate() {
            assert!(
                (got - want).abs() < 0.03,
                "var {v}: chromatic {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn agrees_with_sequential_gibbs() {
        let g = chain_graph(8);
        let config = GibbsConfig {
            burn_in: 200,
            samples: 10000,
            seed: 11,
            ..GibbsConfig::default()
        };
        let seq = crate::gibbs::gibbs_marginals(&g, &config);
        let par = chromatic_marginals(&g, 3, &config);
        assert!(
            seq.max_diff(&par) < 0.05,
            "disagreement {}",
            seq.max_diff(&par)
        );
    }

    #[test]
    fn deterministic_given_seed_and_threads() {
        let g = chain_graph(5);
        let config = GibbsConfig {
            burn_in: 10,
            samples: 50,
            seed: 99,
            ..GibbsConfig::default()
        };
        let a = chromatic_marginals(&g, 2, &config);
        let b = chromatic_marginals(&g, 2, &config);
        assert_eq!(a.p, b.p);
    }

    #[test]
    fn colors_match_graph_structure() {
        let g = chain_graph(10);
        let sampler = ChromaticGibbs::new(&g, 2, 0);
        assert_eq!(sampler.num_colors(), 2); // a chain is 2-colorable
    }
}
