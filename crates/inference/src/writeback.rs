//! Write inferred marginals back into the knowledge base.
//!
//! ProbKB stores marginal probabilities in the KB "thereby avoiding
//! query-time computation and improving system responsivity" (§2.2): the
//! NULL weights grounding left in `TΠ` are replaced by each fact's
//! estimated marginal.

use probkb_core::relmodel::tpi;
use probkb_factorgraph::prelude::GroundGraph;
use probkb_relational::prelude::{Table, Value};

use crate::gibbs::Marginals;

/// Replace NULL weights in a `TΠ` snapshot with estimated marginals.
/// Facts that never appeared in any factor keep their NULL weight.
/// Returns the updated table and the number of weights written.
pub fn write_marginals(facts: &Table, gg: &GroundGraph, marginals: &Marginals) -> (Table, usize) {
    let mut rows = Vec::with_capacity(facts.len());
    let mut written = 0;
    for row in facts.rows() {
        let mut row = row.clone();
        if row[tpi::W].is_null() {
            let fact_id = row[tpi::I].as_int().expect("fact id");
            if let Some(var) = gg.var_of(fact_id) {
                row[tpi::W] = Value::Float(marginals.p[var]);
                written += 1;
            }
        }
        rows.push(row);
    }
    (
        Table::from_rows_unchecked(facts.schema().clone(), rows),
        written,
    )
}

/// The marginal of a specific fact id, if it was estimated.
pub fn marginal_of(gg: &GroundGraph, marginals: &Marginals, fact_id: i64) -> Option<f64> {
    gg.var_of(fact_id).map(|v| marginals.p[v])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::{gibbs_marginals, GibbsConfig};
    use probkb_core::prelude::*;
    use probkb_factorgraph::prelude::from_phi;
    use probkb_kb::prelude::parse;

    #[test]
    fn end_to_end_ground_infer_writeback() {
        let kb = parse(
            r#"
            fact 2.0 born_in(RG:Writer, NYC:City)
            rule 1.5 live_in(x:Writer, y:City) :- born_in(x, y)
            "#,
        )
        .unwrap()
        .build();
        let mut engine = SingleNodeEngine::new();
        let out = ground(&kb, &mut engine, &GroundingConfig::default()).unwrap();
        let gg = from_phi(&out.factors);
        let marginals = gibbs_marginals(
            &gg.graph,
            &GibbsConfig {
                burn_in: 200,
                samples: 5000,
                seed: 1,
                ..GibbsConfig::default()
            },
        );
        let (updated, written) = write_marginals(&out.facts, &gg, &marginals);
        assert_eq!(written, 1); // the inferred live_in fact
        // Every weight is now non-null...
        assert!(updated.rows().iter().all(|r| !r[tpi::W].is_null()));
        // ...the base fact keeps its extraction weight...
        assert_eq!(updated.rows()[0][tpi::W], Value::Float(2.0));
        // ...and the inferred fact's marginal is a sane probability,
        // raised above half by the strong body + rule.
        let w = updated.rows()[1][tpi::W].as_float().unwrap();
        assert!((0.5..1.0).contains(&w), "marginal {w}");
        assert_eq!(
            marginal_of(&gg, &marginals, 1),
            Some(w)
        );
        assert_eq!(marginal_of(&gg, &marginals, 999), None);
    }
}
