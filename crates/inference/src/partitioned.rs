//! Partition-sharded parallel Gibbs with online convergence control —
//! the production inference path (Wick et al.'s factor-graph/MCMC shape:
//! shard the graph across workers by independent sets, stop when the
//! marginals stabilize rather than after a fixed sample count).
//!
//! Three layers on top of the chromatic schedule:
//!
//! * **Multiple independent chains.** `GibbsConfig::chains` chains run on
//!   the `probkb-support` fork-join pool (`PROBKB_GIBBS_WORKERS` /
//!   `GibbsConfig::workers`), each from its own seed stream. Marginals
//!   average over all chains; the cross-chain disagreement feeds split-R̂.
//! * **Fixed sharding as the unit of randomness.** Every color class is
//!   cut into shards of [`SHARD_SIZE`] variables; one RNG stream is seeded
//!   per `(seed, chain, sweep, shard)`. Workers pick up shards in any
//!   interleaving, but the draws — and therefore the marginals, the
//!   diagnostics, and the early-stop sweep — are a pure function of
//!   `(seed, chains)` at **any** worker count, mirroring the guarantee
//!   the grounding layer gives per thread count.
//! * **Shape-batched factor evaluation.** Factors are compiled into
//!   per-shape CSR arrays (singletons fold into a constant, unary/binary
//!   head and body positions each get a tight loop), replacing the
//!   per-factor dispatch of [`FactorGraph::flip_delta_ro`] inside the hot
//!   resampling loop.
//!
//! Convergence control runs sampling in blocks of
//! `GibbsConfig::check_interval` sweeps, feeding per-block true counts to
//! [`ChainStats`]; when the worst per-variable split-R̂ reaches
//! `GibbsConfig::target_rhat` the run stops (capped by `max_sweeps`).

use std::time::{Duration, Instant};

use probkb_factorgraph::prelude::{color, Coloring, FactorGraph, Sharding};
use probkb_support::rng::{Rng, SeedableRng, StdRng};
use probkb_support::sync::{for_each_chunk_mut, map_chunks};

use crate::diagnostics::ChainStats;
use crate::gibbs::{sigmoid, GibbsConfig, Marginals};

/// Variables per shard — the fixed work/randomness granule. Chosen so a
/// shard amortizes its RNG setup but a big color class still splits into
/// enough shards to feed every worker.
pub const SHARD_SIZE: usize = 1024;

/// A factor graph compiled into per-shape evaluation arrays.
///
/// For a flip of variable `v` the conditional logit decomposes by the
/// position `v` takes in each factor shape (`w` if the clause is satisfied,
/// `0` otherwise, Equation 4):
///
/// | shape | position | contribution |
/// |---|---|---|
/// | singleton `v` | head | `+w` (constant) |
/// | `v ← u` | head | `+w` if `u` |
/// | `v ← u₁,u₂` | head | `+w` if `u₁ ∧ u₂` |
/// | `h ← v` | body | `−w` if `¬h` |
/// | `h ← v,u` | body | `−w` if `u ∧ ¬h` |
///
/// Factors with repeated variables or arity beyond the paper's shapes fall
/// back to the generic [`FactorGraph`] evaluation.
#[derive(Debug, Clone)]
pub struct BatchedPlan {
    /// Constant logit per variable (sum of its singleton weights).
    base: Vec<f64>,
    head1_off: Vec<usize>,
    head1: Vec<(u32, f64)>,
    head2_off: Vec<usize>,
    head2: Vec<(u32, u32, f64)>,
    body1_off: Vec<usize>,
    body1: Vec<(u32, f64)>,
    body2_off: Vec<usize>,
    body2: Vec<(u32, u32, f64)>,
    general_off: Vec<usize>,
    general: Vec<u32>,
}

fn flatten<T: Copy>(per_var: Vec<Vec<T>>) -> (Vec<usize>, Vec<T>) {
    let mut off = Vec::with_capacity(per_var.len() + 1);
    let mut flat = Vec::new();
    off.push(0);
    for items in per_var {
        flat.extend(items);
        off.push(flat.len());
    }
    (off, flat)
}

impl BatchedPlan {
    /// Compile a graph's factors into shape-batched arrays.
    pub fn build(graph: &FactorGraph) -> Self {
        let n = graph.num_vars();
        let mut base = vec![0.0f64; n];
        let mut head1 = vec![Vec::new(); n];
        let mut head2 = vec![Vec::new(); n];
        let mut body1 = vec![Vec::new(); n];
        let mut body2 = vec![Vec::new(); n];
        let mut general = vec![Vec::new(); n];
        for (fi, f) in graph.factors().iter().enumerate() {
            let mut vars: Vec<usize> = f.vars().collect();
            vars.sort_unstable();
            let duplicated = vars.windows(2).any(|w| w[0] == w[1]);
            if duplicated || f.body.len() > 2 {
                vars.dedup();
                for v in vars {
                    general[v].push(fi as u32);
                }
                continue;
            }
            match f.body.as_slice() {
                [] => base[f.head] += f.weight,
                [u] => {
                    head1[f.head].push((*u as u32, f.weight));
                    body1[*u].push((f.head as u32, f.weight));
                }
                [u1, u2] => {
                    head2[f.head].push((*u1 as u32, *u2 as u32, f.weight));
                    body2[*u1].push((f.head as u32, *u2 as u32, f.weight));
                    body2[*u2].push((f.head as u32, *u1 as u32, f.weight));
                }
                _ => unreachable!("arity > 2 handled above"),
            }
        }
        let (head1_off, head1) = flatten(head1);
        let (head2_off, head2) = flatten(head2);
        let (body1_off, body1) = flatten(body1);
        let (body2_off, body2) = flatten(body2);
        let (general_off, general) = flatten(general);
        BatchedPlan {
            base,
            head1_off,
            head1,
            head2_off,
            head2,
            body1_off,
            body1,
            body2_off,
            body2,
            general_off,
            general,
        }
    }

    /// The Gibbs conditional logit for flipping `v`, evaluated against a
    /// frozen assignment. Same value as [`FactorGraph::flip_delta_ro`] up
    /// to floating-point summation order.
    #[inline]
    pub fn delta(&self, graph: &FactorGraph, v: usize, state: &[bool]) -> f64 {
        let mut delta = self.base[v];
        for &(u, w) in &self.head1[self.head1_off[v]..self.head1_off[v + 1]] {
            if state[u as usize] {
                delta += w;
            }
        }
        for &(u1, u2, w) in &self.head2[self.head2_off[v]..self.head2_off[v + 1]] {
            if state[u1 as usize] && state[u2 as usize] {
                delta += w;
            }
        }
        for &(h, w) in &self.body1[self.body1_off[v]..self.body1_off[v + 1]] {
            if !state[h as usize] {
                delta -= w;
            }
        }
        for &(h, u, w) in &self.body2[self.body2_off[v]..self.body2_off[v + 1]] {
            if state[u as usize] && !state[h as usize] {
                delta -= w;
            }
        }
        for &fi in &self.general[self.general_off[v]..self.general_off[v + 1]] {
            let f = &graph.factors()[fi as usize];
            delta += f.log_value_with(state, v, true) - f.log_value_with(state, v, false);
        }
        delta
    }
}

/// What an inference run did — the sampler-side mirror of the grounding
/// layer's `EXPLAIN ANALYZE` annotations.
#[derive(Debug, Clone)]
pub struct GibbsReport {
    /// Independent chains run.
    pub chains: usize,
    /// Fork-join workers used (never affects results).
    pub workers: usize,
    /// Color classes in the chromatic schedule.
    pub colors: usize,
    /// Fixed shards the classes were cut into.
    pub shards: usize,
    /// Variables sampled.
    pub vars: usize,
    /// Burn-in sweeps per chain.
    pub burn_in: usize,
    /// Sampling sweeps per chain actually run.
    pub sweeps: usize,
    /// True when the run stopped because split-R̂ reached the target
    /// (always false for fixed-schedule runs).
    pub converged: bool,
    /// Worst per-variable split-R̂ at the end of the run, when ≥ 2 chains
    /// completed ≥ 2 diagnostic blocks.
    pub rhat: Option<f64>,
    /// Smallest per-variable batch-means effective sample size.
    pub ess: Option<f64>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl GibbsReport {
    /// Total variable draws taken (burn-in included, all chains).
    pub fn total_samples(&self) -> u64 {
        self.vars as u64 * self.chains as u64 * (self.sweeps + self.burn_in) as u64
    }

    /// Sampling throughput normalized by the worker count — the number
    /// the `gibbs` bench reports so multi-core hosts show real scaling.
    pub fn samples_per_sec_per_worker(&self) -> f64 {
        self.total_samples() as f64 / self.elapsed.as_secs_f64().max(1e-9) / self.workers as f64
    }

    /// One-line `EXPLAIN ANALYZE`-style annotation.
    pub fn annotate(&self) -> String {
        let fmt_opt = |x: Option<f64>, digits: usize| {
            x.map(|x| format!("{x:.digits$}")).unwrap_or_else(|| "-".into())
        };
        probkb_core::explain::annotate(
            "PartitionedGibbs",
            &[
                ("chains", self.chains.to_string()),
                ("workers", self.workers.to_string()),
                ("colors", self.colors.to_string()),
                ("shards", self.shards.to_string()),
                ("vars", self.vars.to_string()),
                ("sweeps", format!("{}+{}", self.burn_in, self.sweeps)),
                (
                    "stop",
                    if self.converged { "rhat" } else { "schedule" }.to_string(),
                ),
                ("rhat", fmt_opt(self.rhat, 4)),
                ("ess", fmt_opt(self.ess, 1)),
                (
                    "time",
                    probkb_relational::explain::fmt_duration(self.elapsed),
                ),
            ],
        )
    }
}

/// Marginals plus the run report.
#[derive(Debug, Clone)]
pub struct GibbsRun {
    /// Estimated marginals (averaged over all chains).
    pub marginals: Marginals,
    /// Execution report.
    pub report: GibbsReport,
}

struct ChainState {
    id: usize,
    state: Vec<bool>,
    /// True counts over all sampling sweeps (drives the marginals).
    counts: Vec<u64>,
    /// True counts within the current diagnostic block.
    block: Vec<u32>,
}

/// The partitioned multi-chain sampler.
pub struct PartitionedGibbs<'a> {
    graph: &'a FactorGraph,
    coloring: Coloring,
    partitioning: Sharding,
    plan: BatchedPlan,
    config: GibbsConfig,
}

impl<'a> PartitionedGibbs<'a> {
    /// Compile the schedule (coloring, sharding, shape batching) for a
    /// graph. The schedule depends only on the graph, never on workers.
    pub fn new(graph: &'a FactorGraph, config: &GibbsConfig) -> Self {
        let coloring = color(graph);
        let partitioning = coloring.partition(SHARD_SIZE);
        PartitionedGibbs {
            graph,
            coloring,
            partitioning,
            plan: BatchedPlan::build(graph),
            config: *config,
        }
    }

    /// Number of color classes.
    pub fn num_colors(&self) -> usize {
        self.coloring.num_colors()
    }

    /// Number of fixed shards.
    pub fn num_shards(&self) -> usize {
        self.partitioning.num_shards()
    }

    /// One chromatic sweep of one chain: classes in sequence, shards of a
    /// class resampled against the frozen pre-class snapshot, shard
    /// results applied in shard order.
    fn chain_sweep(&self, chain: &mut ChainState, sweep: u64, inner_workers: usize) {
        for class in 0..self.coloring.num_colors() {
            let shards = self.partitioning.shards_of(class);
            let state: &[bool] = &chain.state;
            let chain_id = chain.id as u64;
            let updates = map_chunks(shards, inner_workers, |_, part| {
                let mut out = Vec::new();
                for shard in part {
                    let mut rng = StdRng::seed_from_u64(shard_seed(
                        self.config.seed,
                        chain_id,
                        sweep,
                        shard.index as u64,
                    ));
                    for &v in self.coloring.shard_vars(shard) {
                        let delta = self.plan.delta(self.graph, v, state);
                        out.push((v, rng.random::<f64>() < sigmoid(delta)));
                    }
                }
                out
            });
            for (v, value) in updates {
                chain.state[v] = value;
            }
        }
    }

    /// Advance every chain by `sweeps` sweeps starting at global sweep
    /// number `base`, fanning chains over the outer workers. During
    /// sampling (`sampling = true`) per-sweep true counts accumulate into
    /// each chain's marginal and block counters.
    fn advance(
        &self,
        states: &mut [ChainState],
        base: u64,
        sweeps: usize,
        sampling: bool,
        outer: usize,
        inner: usize,
    ) {
        if sweeps == 0 {
            return;
        }
        for_each_chunk_mut(states, outer, |_, part| {
            for chain in part {
                for s in 0..sweeps {
                    self.chain_sweep(chain, base + s as u64, inner);
                    if sampling {
                        for (v, &bit) in chain.state.iter().enumerate() {
                            chain.counts[v] += bit as u64;
                            chain.block[v] += bit as u32;
                        }
                    }
                }
            }
        });
    }

    /// Run the full schedule: burn-in, then either the fixed `samples`
    /// sweeps or convergence-controlled blocks until split-R̂ reaches
    /// `target_rhat` (or `max_sweeps`).
    pub fn run(&self) -> GibbsRun {
        let start = Instant::now();
        let n = self.graph.num_vars();
        let config = &self.config;
        let chains = config.chains.max(1);
        let workers = config.resolved_workers();
        // Chains are the coarse parallelism; leftover workers split each
        // chain's shard lists. Both levels are result-invariant.
        let outer = workers.min(chains).max(1);
        let inner = (workers / outer).max(1);
        let check = config.check_interval.max(1);

        let mut report = GibbsReport {
            chains,
            workers,
            colors: self.num_colors(),
            shards: self.num_shards(),
            vars: n,
            burn_in: config.burn_in,
            sweeps: 0,
            converged: false,
            rhat: None,
            ess: None,
            elapsed: Duration::ZERO,
        };
        if n == 0 {
            report.converged = config.target_rhat.is_some();
            report.elapsed = start.elapsed();
            return GibbsRun {
                marginals: Marginals {
                    p: Vec::new(),
                    samples: 0,
                },
                report,
            };
        }

        let mut states: Vec<ChainState> = (0..chains)
            .map(|id| ChainState {
                id,
                state: vec![false; n],
                counts: vec![0u64; n],
                block: vec![0u32; n],
            })
            .collect();

        self.advance(&mut states, 0, config.burn_in, false, outer, inner);
        let mut sweep_no = config.burn_in as u64;
        let mut stats = ChainStats::new(chains, n, check);
        let mut done = 0usize;
        let budget = match config.target_rhat {
            Some(_) => config.max_sweeps,
            None => config.samples,
        };
        while done < budget {
            let step = check.min(budget - done);
            self.advance(&mut states, sweep_no, step, true, outer, inner);
            sweep_no += step as u64;
            done += step;
            for chain in &mut states {
                let block = std::mem::replace(&mut chain.block, vec![0u32; n]);
                if step == check {
                    stats.push_block(chain.id, block);
                }
                // Partial trailing blocks still count toward marginals but
                // carry no diagnostic weight.
            }
            if let Some(target) = config.target_rhat {
                if let Some(rhat) = stats.max_split_rhat() {
                    if rhat <= target {
                        report.converged = true;
                        break;
                    }
                }
            }
        }

        report.sweeps = done;
        report.rhat = stats.max_split_rhat();
        report.ess = stats.min_batch_ess();
        let denom = (chains * done.max(1)) as f64;
        let mut p = vec![0.0f64; n];
        for chain in &states {
            for (slot, &c) in p.iter_mut().zip(chain.counts.iter()) {
                *slot += c as f64;
            }
        }
        for slot in &mut p {
            *slot /= denom;
        }
        report.elapsed = start.elapsed();
        GibbsRun {
            marginals: Marginals { p, samples: done },
            report,
        }
    }
}

/// Mix a shard's RNG seed from the run seed and the shard coordinates.
/// SplitMix64-style finalization keeps nearby coordinates uncorrelated.
pub(crate) fn shard_seed(seed: u64, chain: u64, sweep: u64, shard: u64) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for x in [chain, sweep, shard] {
        h = (h ^ x).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

/// Run the partitioned sampler with a config and return marginals plus
/// the execution report.
pub fn partitioned_marginals(graph: &FactorGraph, config: &GibbsConfig) -> GibbsRun {
    PartitionedGibbs::new(graph, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_marginals;
    use probkb_factorgraph::prelude::Factor;
    use probkb_support::rng::{Rng, SeedableRng, StdRng};

    fn chain_graph(n: usize) -> FactorGraph {
        let mut factors = vec![Factor::singleton(0, 1.5)];
        for v in 1..n {
            factors.push(Factor::rule(v, vec![v - 1], 1.0));
        }
        FactorGraph::new(n, factors)
    }

    fn random_graph(seed: u64, n: usize, m: usize) -> FactorGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut factors = Vec::new();
        for _ in 0..m {
            let head = (rng.random::<u64>() as usize) % n;
            let arity = (rng.random::<u64>() as usize) % 3;
            let mut body = Vec::new();
            while body.len() < arity {
                let u = (rng.random::<u64>() as usize) % n;
                if u != head && !body.contains(&u) {
                    body.push(u);
                }
            }
            let weight = rng.random::<f64>() * 4.0 - 2.0;
            factors.push(Factor { head, body, weight });
        }
        FactorGraph::new(n, factors)
    }

    #[test]
    fn batched_plan_matches_flip_delta_ro() {
        let g = random_graph(7, 9, 30);
        let plan = BatchedPlan::build(&g);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let state: Vec<bool> = (0..9).map(|_| rng.random::<f64>() < 0.5).collect();
            for v in 0..9 {
                let batched = plan.delta(&g, v, &state);
                let reference = g.flip_delta_ro(v, &state);
                assert!(
                    (batched - reference).abs() < 1e-9,
                    "var {v}: batched {batched} vs reference {reference}"
                );
            }
        }
    }

    #[test]
    fn batched_plan_handles_degenerate_factors() {
        // Head repeated in the body and a 3-atom body: both must route
        // through the general fallback and still match the reference.
        let g = FactorGraph::new(
            4,
            vec![
                Factor::rule(0, vec![0], 1.3),
                Factor::rule(1, vec![2, 3, 0], 0.7),
                Factor::rule(2, vec![3, 3], 0.9),
            ],
        );
        let plan = BatchedPlan::build(&g);
        for mask in 0u8..16 {
            let state: Vec<bool> = (0..4).map(|v| (mask >> v) & 1 == 1).collect();
            for v in 0..4 {
                let batched = plan.delta(&g, v, &state);
                let reference = g.flip_delta_ro(v, &state);
                assert!(
                    (batched - reference).abs() < 1e-9,
                    "mask {mask} var {v}: {batched} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn matches_exact_on_small_chain() {
        let g = chain_graph(6);
        let exact = exact_marginals(&g);
        let run = partitioned_marginals(
            &g,
            &GibbsConfig {
                burn_in: 300,
                samples: 10_000,
                seed: 3,
                chains: 2,
                workers: Some(2),
                ..GibbsConfig::default()
            },
        );
        for (v, (got, want)) in run.marginals.p.iter().zip(exact.iter()).enumerate() {
            assert!(
                (got - want).abs() < 0.03,
                "var {v}: partitioned {got} vs exact {want}"
            );
        }
        assert_eq!(run.report.sweeps, 10_000);
        assert!(!run.report.converged);
        assert!(run.report.rhat.is_some());
    }

    #[test]
    fn convergence_control_stops_early_on_well_mixed_graph() {
        let g = chain_graph(6);
        let exact = exact_marginals(&g);
        let run = partitioned_marginals(
            &g,
            &GibbsConfig {
                burn_in: 100,
                seed: 5,
                chains: 4,
                workers: Some(1),
                target_rhat: Some(1.02),
                max_sweeps: 50_000,
                check_interval: 500,
                ..GibbsConfig::default()
            },
        );
        assert!(run.report.converged, "R̂ never reached 1.02: {:?}", run.report.rhat);
        assert!(
            run.report.sweeps < 50_000,
            "early stop did not fire (ran {} sweeps)",
            run.report.sweeps
        );
        assert!(run.report.rhat.unwrap() <= 1.02);
        // Equal marginal accuracy: the stopped run still tracks the oracle.
        for (v, (got, want)) in run.marginals.p.iter().zip(exact.iter()).enumerate() {
            assert!(
                (got - want).abs() < 0.05,
                "var {v}: converged run {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn annotation_contains_the_explain_fields() {
        let g = chain_graph(4);
        let run = partitioned_marginals(
            &g,
            &GibbsConfig {
                burn_in: 20,
                samples: 200,
                seed: 9,
                chains: 2,
                workers: Some(3),
                ..GibbsConfig::default()
            },
        );
        let line = run.report.annotate();
        assert!(line.starts_with("PartitionedGibbs  ("), "{line}");
        for key in ["chains=2", "workers=3", "sweeps=20+200", "rhat=", "time="] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert!(run.report.samples_per_sec_per_worker() > 0.0);
    }
}
