//! Sequential Gibbs sampling for marginal inference (§2.2).
//!
//! ProbKB performs *marginal* inference so results can be stored back in
//! the knowledge base. The sampler sweeps all variables, resampling each
//! from its conditional given its Markov blanket; the conditional logit is
//! exactly [`FactorGraph::flip_delta`].

use probkb_factorgraph::prelude::FactorGraph;
use probkb_support::rng::{Rng, SeedableRng, StdRng};

/// Sampler configuration.
///
/// The sequential [`GibbsSampler`] and the chromatic sampler read only
/// `burn_in`/`samples`/`seed`; the partitioned multi-chain sampler
/// (`crate::partitioned`) additionally honours `chains`, `workers`, and
/// the convergence-control fields.
#[derive(Debug, Clone, Copy)]
pub struct GibbsConfig {
    /// Sweeps discarded before estimation starts.
    pub burn_in: usize,
    /// Sweeps used for estimation (per chain, when `target_rhat` is
    /// `None`; ignored under convergence control, where `max_sweeps`
    /// caps the run instead).
    pub samples: usize,
    /// RNG seed (runs are deterministic given the seed and chain count,
    /// independent of the worker count).
    pub seed: u64,
    /// Independent chains run by the partitioned sampler. Marginals
    /// average over all chains; split-R̂ needs at least 2.
    pub chains: usize,
    /// Fork-join worker cap for the partitioned sampler. `None` reads
    /// `PROBKB_GIBBS_WORKERS` once per process (unset/zero → 1). The
    /// worker count never changes results, only wall-clock time.
    pub workers: Option<usize>,
    /// Online convergence control: when `Some(target)`, sampling stops as
    /// soon as the worst per-variable split-R̂ across chains drops to
    /// `target` or below (checked every `check_interval` sweeps), instead
    /// of running a fixed `samples` schedule.
    pub target_rhat: Option<f64>,
    /// Hard cap on sampling sweeps per chain under convergence control.
    pub max_sweeps: usize,
    /// Sweeps per convergence-check block (also the batch size for the
    /// incremental R̂/ESS accumulators).
    pub check_interval: usize,
}

impl Default for GibbsConfig {
    fn default() -> Self {
        GibbsConfig {
            burn_in: 200,
            samples: 2000,
            seed: 0x9e3779b9,
            chains: 2,
            workers: None,
            target_rhat: None,
            max_sweeps: 20_000,
            check_interval: 100,
        }
    }
}

impl GibbsConfig {
    /// The worker budget this config resolves to: the explicit override,
    /// or the process-wide [`default_gibbs_workers`].
    pub fn resolved_workers(&self) -> usize {
        self.workers.unwrap_or_else(default_gibbs_workers).max(1)
    }
}

/// The process-wide default inference worker budget, read **once** from
/// `PROBKB_GIBBS_WORKERS` and cached (the same contract as the grounding
/// layer's `PROBKB_THREADS`). Unset, unparsable, or zero all mean 1 —
/// parallel inference is opt-in. Tests comparing worker counts should set
/// [`GibbsConfig::workers`] explicitly instead of re-reading the
/// environment.
pub fn default_gibbs_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| probkb_support::sync::env_workers("PROBKB_GIBBS_WORKERS").unwrap_or(1))
}

/// Estimated marginals: `p[v]` ≈ `P(X_v = 1)`.
#[derive(Debug, Clone)]
pub struct Marginals {
    /// Per-variable probability estimates.
    pub p: Vec<f64>,
    /// Number of samples averaged.
    pub samples: usize,
}

impl Marginals {
    /// Largest absolute difference to another estimate (convergence
    /// diagnostics between chains).
    pub fn max_diff(&self, other: &Marginals) -> f64 {
        self.p
            .iter()
            .zip(other.p.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// A sequential Gibbs sampler over a factor graph.
pub struct GibbsSampler<'a> {
    graph: &'a FactorGraph,
    state: Vec<bool>,
    rng: StdRng,
}

impl<'a> GibbsSampler<'a> {
    /// Initialize with every variable false and the given seed.
    pub fn new(graph: &'a FactorGraph, seed: u64) -> Self {
        GibbsSampler {
            graph,
            state: vec![false; graph.num_vars()],
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The current assignment.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Resample one variable from its conditional.
    pub fn resample(&mut self, v: usize) {
        let delta = self.graph.flip_delta(v, &mut self.state);
        let p_true = sigmoid(delta);
        self.state[v] = self.rng.random::<f64>() < p_true;
    }

    /// One full sweep over all variables.
    pub fn sweep(&mut self) {
        for v in 0..self.graph.num_vars() {
            self.resample(v);
        }
    }

    /// Run burn-in plus sampling sweeps and estimate marginals.
    pub fn run(&mut self, config: &GibbsConfig) -> Marginals {
        for _ in 0..config.burn_in {
            self.sweep();
        }
        let mut counts = vec![0u64; self.graph.num_vars()];
        for _ in 0..config.samples {
            self.sweep();
            for (count, &bit) in counts.iter_mut().zip(self.state.iter()) {
                *count += bit as u64;
            }
        }
        Marginals {
            p: counts
                .iter()
                .map(|&c| c as f64 / config.samples.max(1) as f64)
                .collect(),
            samples: config.samples,
        }
    }
}

/// Run a fresh sampler with a config.
pub fn gibbs_marginals(graph: &FactorGraph, config: &GibbsConfig) -> Marginals {
    GibbsSampler::new(graph, config.seed).run(config)
}

/// Numerically stable logistic function.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_factorgraph::prelude::Factor;

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(30.0) > 0.999999);
        assert!(sigmoid(-30.0) < 1e-6);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_variable_marginal_matches_closed_form() {
        // One var, singleton weight w: P(x=1) = e^w / (1 + e^w).
        let w = 1.2;
        let g = FactorGraph::new(1, vec![Factor::singleton(0, w)]);
        let m = gibbs_marginals(
            &g,
            &GibbsConfig {
                burn_in: 100,
                samples: 20000,
                seed: 7,
                ..GibbsConfig::default()
            },
        );
        let expected = sigmoid(w);
        assert!(
            (m.p[0] - expected).abs() < 0.02,
            "got {}, want {expected}",
            m.p[0]
        );
    }

    #[test]
    fn implication_raises_head_probability() {
        // Strong body, strong rule: head should be likely even with no
        // direct evidence.
        let g = FactorGraph::new(
            2,
            vec![
                Factor::singleton(0, 3.0),
                Factor::rule(1, vec![0], 2.0),
            ],
        );
        let m = gibbs_marginals(&g, &GibbsConfig::default());
        assert!(m.p[0] > 0.9);
        assert!(m.p[1] > 0.7, "head marginal {}", m.p[1]);
        // An isolated variable with no factors sits near 0.5.
        let free = FactorGraph::new(1, vec![]);
        let mf = gibbs_marginals(&free, &GibbsConfig::default());
        assert!((mf.p[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = FactorGraph::new(
            2,
            vec![Factor::singleton(0, 0.5), Factor::rule(1, vec![0], 1.0)],
        );
        let config = GibbsConfig {
            burn_in: 10,
            samples: 100,
            seed: 42,
            ..GibbsConfig::default()
        };
        let a = gibbs_marginals(&g, &config);
        let b = gibbs_marginals(&g, &config);
        assert_eq!(a.p, b.p);
    }

    #[test]
    fn max_diff_measures_chain_disagreement() {
        let a = Marginals {
            p: vec![0.1, 0.9],
            samples: 10,
        };
        let b = Marginals {
            p: vec![0.2, 0.85],
            samples: 10,
        };
        assert!((a.max_diff(&b) - 0.1).abs() < 1e-12);
    }
}
