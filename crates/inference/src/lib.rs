//! # probkb-inference
//!
//! Marginal inference over ProbKB's ground factor graphs — the stand-in
//! for the external engine (GraphLab + parallel Gibbs) the paper hands
//! its grounding output to (Figure 1, §2.2).
//!
//! * [`gibbs`] — sequential Gibbs sampling with burn-in/sample phases.
//! * [`parallel`] — chromatic parallel Gibbs: color classes resampled
//!   concurrently from a shared snapshot (Gonzalez et al. \[14\]).
//! * [`partitioned`] — the production path: partition-sharded multi-chain
//!   Gibbs on the fork-join pool (`PROBKB_GIBBS_WORKERS`) with
//!   shape-batched factor evaluation and online convergence control.
//! * [`blanket`] — Markov-blanket-scoped resampling with warm-started
//!   chains for incremental expansion (`apply_delta`).
//! * [`diagnostics`] — split-R̂ (Gelman–Rubin) and effective-sample-size
//!   estimators, incremental across chains.
//! * [`exact`] — brute-force enumeration oracle (≤ 24 variables) used by
//!   the test suite to validate the samplers.
//! * [`writeback`] — store estimated marginals back into `TΠ` weights so
//!   queries need no inference at run time.

#![warn(missing_docs)]

pub mod blanket;
pub mod bp;
pub mod diagnostics;
pub mod exact;
pub mod gibbs;
pub mod local;
pub mod map;
pub mod parallel;
pub mod partitioned;
pub mod writeback;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::blanket::{
        blanket_of, blanket_resample, blanket_resample_with, BlanketReport, BlanketRun,
    };
    pub use crate::bp::{belief_propagation, max_product, BpConfig, BpResult};
    pub use crate::diagnostics::{ess, split_rhat, ChainStats};
    pub use crate::exact::{exact_marginals, log_partition};
    pub use crate::gibbs::{
        default_gibbs_workers, gibbs_marginals, sigmoid, GibbsConfig, GibbsSampler, Marginals,
    };
    pub use crate::local::{LocalAnswer, LocalSession, LOCAL_EXACT_MAX_VARS};
    pub use crate::map::{anneal, exact_map, icm, icm_from, AnnealConfig, MapSolution};
    pub use crate::parallel::{chromatic_marginals, ChromaticGibbs};
    pub use crate::partitioned::{
        partitioned_marginals, BatchedPlan, GibbsReport, GibbsRun, PartitionedGibbs, SHARD_SIZE,
    };
    pub use crate::writeback::{marginal_of, write_marginals};
}
