//! Markov-blanket-scoped re-sampling for incremental expansion.
//!
//! When a delta is applied to a live KB, only the variables the new
//! factors touch — and their Markov blanket — have changed conditionals;
//! everything else's marginal estimate is still valid. This sampler
//! resamples exactly that touched set with warm-started chains, keeping
//! the partitioned sampler's determinism contract: one RNG stream per
//! `(seed, chain, sweep, shard)`, untouched variables draw nothing, so
//! results are a pure function of `(graph, coloring, touched, warm
//! states, config)` at **any** worker count.
//!
//! With `touched` = all variables and cold (all-false) chains, a run is
//! draw-for-draw identical to the fixed-schedule
//! [`crate::partitioned::PartitionedGibbs`] run — the incremental path
//! degrades gracefully to the full restart it replaces.

use std::time::{Duration, Instant};

use probkb_factorgraph::prelude::{color, Coloring, FactorGraph, VarId};
use probkb_support::rng::{Rng, SeedableRng, StdRng};
use probkb_support::sync::{for_each_chunk_mut, map_chunks};

use crate::gibbs::{sigmoid, GibbsConfig, Marginals};
use crate::partitioned::{shard_seed, BatchedPlan, SHARD_SIZE};

/// The seed variables of a delta plus their Markov blanket: every
/// variable whose conditional distribution an update to `seeds` can have
/// changed. Sorted and deduplicated.
pub fn blanket_of(graph: &FactorGraph, seeds: &[VarId]) -> Vec<VarId> {
    let mut out: Vec<VarId> = seeds.to_vec();
    for &v in seeds {
        out.extend(graph.neighbors(v));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// What a blanket-scoped re-sampling run did.
#[derive(Debug, Clone)]
pub struct BlanketReport {
    /// Variables actually resampled (the touched set).
    pub touched: usize,
    /// Total variables in the graph.
    pub vars: usize,
    /// Color classes in the schedule.
    pub colors: usize,
    /// Shards containing at least one touched variable (the only shards
    /// that do any work or consume randomness).
    pub active_shards: usize,
    /// Total shards in the schedule.
    pub shards: usize,
    /// Chains advanced.
    pub chains: usize,
    /// Fork-join workers used (never affects results).
    pub workers: usize,
    /// Burn-in sweeps per chain.
    pub burn_in: usize,
    /// Sampling sweeps per chain.
    pub sweeps: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl BlanketReport {
    /// One-line `EXPLAIN ANALYZE`-style annotation.
    pub fn annotate(&self) -> String {
        probkb_core::explain::annotate(
            "BlanketGibbs",
            &[
                ("touched", format!("{}/{}", self.touched, self.vars)),
                ("chains", self.chains.to_string()),
                ("workers", self.workers.to_string()),
                ("colors", self.colors.to_string()),
                (
                    "shards",
                    format!("{}/{}", self.active_shards, self.shards),
                ),
                ("sweeps", format!("{}+{}", self.burn_in, self.sweeps)),
                (
                    "time",
                    probkb_relational::explain::fmt_duration(self.elapsed),
                ),
            ],
        )
    }
}

/// Marginals, final chain states (for the next warm start), and report.
#[derive(Debug, Clone)]
pub struct BlanketRun {
    /// Updated marginals: fresh estimates for touched variables, the
    /// prior estimate carried through for everything else.
    pub marginals: Marginals,
    /// Final per-chain states, one `Vec<bool>` per chain — feed these
    /// back as `warm` on the next delta.
    pub states: Vec<Vec<bool>>,
    /// Execution report.
    pub report: BlanketReport,
}

/// Resample `touched` with warm-started chains, coloring the graph from
/// scratch. See [`blanket_resample_with`] for the full contract.
pub fn blanket_resample(
    graph: &FactorGraph,
    touched: &[VarId],
    warm: &[Vec<bool>],
    prior: &[f64],
    config: &GibbsConfig,
) -> BlanketRun {
    blanket_resample_with(graph, &color(graph), touched, warm, prior, config)
}

/// Resample exactly the `touched` variables of `graph` under `coloring`
/// (any proper coloring works; incremental callers pass the one they
/// maintain with `extend_color`).
///
/// * Chains warm-start from `warm` (per-chain states, padded with `false`
///   for variables beyond each state's length; missing chains start cold).
/// * `prior[v]` supplies the marginal reported for untouched variables
///   (missing entries default to 0.0 — new variables are always in the
///   touched set, so this only pads degenerate inputs).
/// * The schedule is the fixed `burn_in` + `samples` sweep budget of
///   [`GibbsConfig`]; convergence control does not apply to the scoped
///   pass.
pub fn blanket_resample_with(
    graph: &FactorGraph,
    coloring: &Coloring,
    touched: &[VarId],
    warm: &[Vec<bool>],
    prior: &[f64],
    config: &GibbsConfig,
) -> BlanketRun {
    let start = Instant::now();
    let n = graph.num_vars();
    let chains = config.chains.max(1);
    let workers = config.resolved_workers();
    let outer = workers.min(chains).max(1);
    let inner = (workers / outer).max(1);

    let mut mask = vec![false; n];
    for &v in touched {
        mask[v] = true;
    }
    let touched_count = mask.iter().filter(|&&m| m).count();

    let partitioning = coloring.partition(SHARD_SIZE);
    // Per-shard lists of touched variables, in shard order. Sweeps visit
    // exactly these — cost scales with the blanket, not the graph — and
    // the lists are a pure function of (coloring, touched), not workers.
    let shard_touched: Vec<Vec<VarId>> = partitioning
        .shards
        .iter()
        .map(|s| {
            coloring
                .shard_vars(s)
                .iter()
                .copied()
                .filter(|&v| mask[v])
                .collect()
        })
        .collect();
    let active_shards = shard_touched.iter().filter(|t| !t.is_empty()).count();
    // Touched variables in ascending order, for O(touched) count updates.
    let touched_list: Vec<VarId> = mask
        .iter()
        .enumerate()
        .filter_map(|(v, &m)| m.then_some(v))
        .collect();
    // Per color class, the indices of shards that hold a touched variable
    // — the only shards that do work or consume randomness. Computed once;
    // the sweep loop below runs hundreds of times.
    let class_shards: Vec<Vec<usize>> = (0..coloring.num_colors())
        .map(|class| {
            partitioning
                .shards_of(class)
                .iter()
                .filter(|s| !shard_touched[s.index].is_empty())
                .map(|s| s.index)
                .collect()
        })
        .collect();

    let mut states: Vec<Vec<bool>> = (0..chains)
        .map(|c| {
            let mut s = warm.get(c).cloned().unwrap_or_default();
            s.resize(n, false);
            s
        })
        .collect();

    let mut report = BlanketReport {
        touched: touched_count,
        vars: n,
        colors: coloring.num_colors(),
        active_shards,
        shards: partitioning.num_shards(),
        chains,
        workers,
        burn_in: config.burn_in,
        sweeps: config.samples,
        elapsed: Duration::ZERO,
    };

    if touched_count == 0 || n == 0 {
        report.burn_in = 0;
        report.sweeps = 0;
        report.elapsed = start.elapsed();
        let mut p = vec![0.0f64; n];
        for (v, slot) in p.iter_mut().enumerate() {
            *slot = prior.get(v).copied().unwrap_or(0.0);
        }
        return BlanketRun {
            marginals: Marginals { p, samples: 0 },
            states,
            report,
        };
    }

    let plan = BatchedPlan::build(graph);

    let sweep_chain = |chain_id: u64, state: &mut [bool], sweep: u64| {
        for shards in &class_shards {
            if shards.is_empty() {
                continue;
            }
            let frozen: &[bool] = state;
            let updates = map_chunks(shards, inner, |_, part| {
                let mut out = Vec::new();
                for &idx in part {
                    let mut rng =
                        StdRng::seed_from_u64(shard_seed(config.seed, chain_id, sweep, idx as u64));
                    for &v in &shard_touched[idx] {
                        let delta = plan.delta(graph, v, frozen);
                        out.push((v, rng.random::<f64>() < sigmoid(delta)));
                    }
                }
                out
            });
            for (v, value) in updates {
                state[v] = value;
            }
        }
    };

    struct Chain {
        id: usize,
        state: Vec<bool>,
        counts: Vec<u64>,
    }
    let mut units: Vec<Chain> = states
        .drain(..)
        .enumerate()
        .map(|(id, state)| Chain {
            id,
            state,
            counts: vec![0u64; n],
        })
        .collect();
    for_each_chunk_mut(&mut units, outer, |_, part| {
        for chain in part {
            let chain_id = chain.id as u64;
            for sweep in 0..config.burn_in as u64 {
                sweep_chain(chain_id, &mut chain.state, sweep);
            }
            for s in 0..config.samples as u64 {
                sweep_chain(chain_id, &mut chain.state, config.burn_in as u64 + s);
                // Only touched variables change; accumulating the whole
                // state would cost O(vars) per sweep for nothing.
                for &v in &touched_list {
                    chain.counts[v] += chain.state[v] as u64;
                }
            }
        }
    });

    let denom = (chains * config.samples.max(1)) as f64;
    let mut p = vec![0.0f64; n];
    for (v, slot) in p.iter_mut().enumerate() {
        if mask[v] {
            let total: u64 = units.iter().map(|c| c.counts[v]).sum();
            *slot = total as f64 / denom;
        } else {
            *slot = prior.get(v).copied().unwrap_or(0.0);
        }
    }
    let states: Vec<Vec<bool>> = units.into_iter().map(|c| c.state).collect();
    report.elapsed = start.elapsed();
    BlanketRun {
        marginals: Marginals {
            p,
            samples: config.samples,
        },
        states,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_marginals;
    use crate::partitioned::partitioned_marginals;
    use probkb_factorgraph::prelude::Factor;

    fn chain_graph(n: usize) -> FactorGraph {
        let mut factors = vec![Factor::singleton(0, 1.5)];
        for v in 1..n {
            factors.push(Factor::rule(v, vec![v - 1], 1.0));
        }
        FactorGraph::new(n, factors)
    }

    fn config(samples: usize) -> GibbsConfig {
        GibbsConfig {
            burn_in: 100,
            samples,
            chains: 2,
            workers: Some(1),
            target_rhat: None,
            ..GibbsConfig::default()
        }
    }

    #[test]
    fn all_touched_cold_start_matches_partitioned_fixed_schedule() {
        let g = chain_graph(9);
        let cfg = config(400);
        let full = partitioned_marginals(&g, &cfg);
        let all: Vec<VarId> = (0..g.num_vars()).collect();
        let scoped = blanket_resample(&g, &all, &[], &[], &cfg);
        // Same draws in the same order: byte-identical marginals.
        assert_eq!(scoped.marginals.p, full.marginals.p);
    }

    #[test]
    fn untouched_vars_keep_prior_and_state() {
        let g = chain_graph(6);
        let cfg = config(50);
        let prior = vec![0.11, 0.22, 0.33, 0.44, 0.55, 0.66];
        let warm = vec![vec![true; 6], vec![false; 6]];
        let run = blanket_resample(&g, &[4, 5], &warm, &prior, &cfg);
        for v in 0..4 {
            assert_eq!(run.marginals.p[v], prior[v], "var {v}");
            // Untouched variables never flip.
            assert!(run.states[0][v]);
            assert!(!run.states[1][v]);
        }
    }

    #[test]
    fn empty_touched_set_is_a_no_op() {
        let g = chain_graph(4);
        let prior = vec![0.1, 0.2, 0.3, 0.4];
        let warm = vec![vec![true, false, true, false]];
        let run = blanket_resample(&g, &[], &warm, &prior, &config(100));
        assert_eq!(run.marginals.p, prior);
        assert_eq!(run.report.sweeps, 0);
        assert_eq!(run.states[0], warm[0]);
    }

    #[test]
    fn worker_count_never_changes_results() {
        let g = chain_graph(40);
        let touched: Vec<VarId> = (20..40).collect();
        let warm = vec![vec![false; 40]; 2];
        let prior = vec![0.5; 40];
        let mut baseline: Option<Vec<f64>> = None;
        for workers in [1usize, 2, 4] {
            let cfg = GibbsConfig {
                workers: Some(workers),
                ..config(200)
            };
            let run = blanket_resample(&g, &touched, &warm, &prior, &cfg);
            match &baseline {
                None => baseline = Some(run.marginals.p),
                Some(b) => assert_eq!(&run.marginals.p, b, "workers={workers}"),
            }
        }
    }

    #[test]
    fn blanket_estimates_agree_with_exact_on_touched_vars() {
        // Small graph where the oracle is cheap: resample the right half
        // only, with the left half frozen at its prior.
        let g = chain_graph(5);
        let exact = exact_marginals(&g);
        let cfg = GibbsConfig {
            burn_in: 300,
            samples: 6000,
            chains: 2,
            workers: Some(1),
            target_rhat: None,
            ..GibbsConfig::default()
        };
        let all: Vec<VarId> = (0..5).collect();
        let run = blanket_resample(&g, &all, &[], &[], &cfg);
        for v in 0..5 {
            assert!(
                (run.marginals.p[v] - exact[v]).abs() < 0.05,
                "var {v}: {} vs {}",
                run.marginals.p[v],
                exact[v]
            );
        }
    }

    #[test]
    fn report_annotation_shape() {
        let g = chain_graph(3);
        let run = blanket_resample(&g, &[2], &[], &[0.5; 3], &config(10));
        let line = run.report.annotate();
        assert!(line.starts_with("BlanketGibbs"), "{line}");
        assert!(line.contains("touched=1/3"), "{line}");
        assert!(line.contains("sweeps=100+10"), "{line}");
    }
}
