//! Property tests: samplers and BP validated against the exact oracle on
//! random small factor graphs.

use probkb_support::check::prelude::*;

use probkb_factorgraph::prelude::{Factor, FactorGraph};
use probkb_inference::prelude::*;

/// Random small factor graphs (≤ 7 variables so exact enumeration is
/// instant).
fn arb_graph() -> impl Strategy<Value = FactorGraph> {
    (2usize..7).prop_flat_map(|n| {
        let factor = (0..n, prop::collection::vec(0..n, 0..=2), -2.0f64..2.0).prop_map(
            move |(head, mut body, weight)| {
                body.retain(|&v| v != head);
                body.dedup();
                Factor { head, body, weight }
            },
        );
        prop::collection::vec(factor, 1..8).prop_map(move |f| FactorGraph::new(n, f))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Gibbs marginals converge to the exact ones.
    #[test]
    fn gibbs_matches_exact(g in arb_graph()) {
        let exact = exact_marginals(&g);
        let est = gibbs_marginals(
            &g,
            &GibbsConfig { burn_in: 300, samples: 12_000, seed: 17, ..GibbsConfig::default() },
        );
        for (v, (e, m)) in exact.iter().zip(est.p.iter()).enumerate() {
            prop_assert!((e - m).abs() < 0.05, "var {v}: exact {e} vs gibbs {m}");
        }
    }

    /// Chromatic parallel Gibbs matches the exact oracle too.
    #[test]
    fn chromatic_matches_exact(g in arb_graph()) {
        let exact = exact_marginals(&g);
        let est = chromatic_marginals(
            &g,
            3,
            &GibbsConfig { burn_in: 300, samples: 12_000, seed: 23, ..GibbsConfig::default() },
        );
        for (v, (e, m)) in exact.iter().zip(est.p.iter()).enumerate() {
            prop_assert!((e - m).abs() < 0.05, "var {v}: exact {e} vs chromatic {m}");
        }
    }

    /// Exact marginals are proper probabilities and respect evidence sign:
    /// adding a positive singleton never lowers that variable's marginal.
    #[test]
    fn marginals_monotone_in_evidence(g in arb_graph(), boost in 0.1f64..2.0) {
        let before = exact_marginals(&g);
        prop_assert!(before.iter().all(|p| (0.0..=1.0).contains(p)));
        let mut factors = g.factors().to_vec();
        factors.push(Factor::singleton(0, boost));
        let g2 = FactorGraph::new(g.num_vars(), factors);
        let after = exact_marginals(&g2);
        prop_assert!(
            after[0] >= before[0] - 1e-9,
            "positive evidence lowered P: {} -> {}",
            before[0],
            after[0]
        );
    }

    /// MAP solutions: annealing's score is ≥ ICM's, and the exact MAP
    /// scores ≥ both.
    #[test]
    fn map_solver_ordering(g in arb_graph()) {
        let oracle = exact_map(&g);
        let (icm_sol, _) = icm(&g);
        let annealed = anneal(&g, &AnnealConfig { sweeps: 150, seed: 31, ..AnnealConfig::default() });
        prop_assert!(oracle.log_score >= icm_sol.log_score - 1e-9);
        prop_assert!(oracle.log_score >= annealed.log_score - 1e-9);
        prop_assert!(annealed.log_score >= icm_sol.log_score - 1e-9);
    }

    /// BP beliefs are proper probabilities, and exact when the graph is a
    /// tree (every variable in ≤ 1 multi-variable factor ⇒ acyclic).
    #[test]
    fn bp_sane_and_exact_on_trees(g in arb_graph()) {
        let r = belief_propagation(&g, &BpConfig::default());
        prop_assert!(r.marginals.p.iter().all(|p| (0.0..=1.0).contains(p)));

        let mut seen = vec![0usize; g.num_vars()];
        for f in g.factors() {
            if !f.body.is_empty() {
                for v in f.vars() {
                    seen[v] += 1;
                }
            }
        }
        let tree_like = seen.iter().all(|&c| c <= 1);
        if tree_like && r.converged {
            let exact = exact_marginals(&g);
            for (v, (e, m)) in exact.iter().zip(r.marginals.p.iter()).enumerate() {
                prop_assert!((e - m).abs() < 1e-4, "var {v}: exact {e} vs bp {m}");
            }
        }
    }
}
