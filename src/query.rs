//! Query interface over an expanded knowledge base.
//!
//! ProbKB stores marginals *in* the KB precisely so queries need no
//! inference at run time (§2.2). This module is that run-time side: an
//! indexed, read-only view over the expanded facts supporting the lookups
//! a downstream application needs — by relation, by entity, by
//! probability threshold — with names resolved through the KB's
//! dictionaries.

use std::collections::HashMap;

use probkb_core::relmodel::tpi;
use probkb_kb::prelude::{EntityId, ProbKb, RelationId};
use probkb_relational::prelude::Table;

/// One queryable fact: resolved ids plus its stored probability/weight.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFact {
    /// Fact id (`I` in `TΠ`).
    pub id: i64,
    /// Relation.
    pub rel: RelationId,
    /// Subject entity.
    pub x: EntityId,
    /// Object entity.
    pub y: EntityId,
    /// Stored weight: extraction confidence for base facts, estimated
    /// marginal for inferred facts; `None` if inference never ran.
    pub probability: Option<f64>,
    /// True when this fact was inferred (absent from the extractions).
    pub inferred: bool,
}

/// An indexed view over an expanded `TΠ` snapshot.
#[derive(Debug)]
pub struct ExpandedKb {
    facts: Vec<QueryFact>,
    by_relation: HashMap<RelationId, Vec<usize>>,
    by_entity: HashMap<EntityId, Vec<usize>>,
}

impl ExpandedKb {
    /// Build the view from a `TΠ` snapshot (e.g.
    /// [`crate::pipeline::PipelineResult::facts_with_marginals`]) and the
    /// set of base-fact ids. Facts whose id is not in `base_ids` are
    /// marked inferred.
    pub fn new(facts: &Table, base_ids: &std::collections::HashSet<i64>) -> Self {
        let mut out = ExpandedKb {
            facts: Vec::with_capacity(facts.len()),
            by_relation: HashMap::new(),
            by_entity: HashMap::new(),
        };
        for row in facts.rows() {
            let id = row[tpi::I].as_int().expect("fact id");
            let fact = QueryFact {
                id,
                rel: RelationId::from_i64(row[tpi::R].as_int().expect("R")),
                x: EntityId::from_i64(row[tpi::X].as_int().expect("x")),
                y: EntityId::from_i64(row[tpi::Y].as_int().expect("y")),
                probability: row[tpi::W].as_float(),
                inferred: !base_ids.contains(&id),
            };
            let idx = out.facts.len();
            out.by_relation.entry(fact.rel).or_default().push(idx);
            out.by_entity.entry(fact.x).or_default().push(idx);
            if fact.y != fact.x {
                out.by_entity.entry(fact.y).or_default().push(idx);
            }
            out.facts.push(fact);
        }
        out
    }

    /// Build from a pipeline result, deriving base ids from the original
    /// KB's fact count (base facts keep the lowest ids).
    pub fn from_pipeline(result: &crate::pipeline::PipelineResult) -> Self {
        let base_ids: std::collections::HashSet<i64> = result
            .expansion
            .outcome
            .facts
            .rows()
            .iter()
            .filter(|r| !r[tpi::W].is_null())
            .map(|r| r[tpi::I].as_int().expect("id"))
            .collect();
        ExpandedKb::new(&result.facts_with_marginals, &base_ids)
    }

    /// All facts.
    pub fn facts(&self) -> &[QueryFact] {
        &self.facts
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Facts of a relation (by id).
    pub fn by_relation(&self, rel: RelationId) -> Vec<&QueryFact> {
        self.by_relation
            .get(&rel)
            .map(|idxs| idxs.iter().map(|&i| &self.facts[i]).collect())
            .unwrap_or_default()
    }

    /// Facts of a relation by name, resolved through a KB's dictionary.
    pub fn by_relation_name(&self, kb: &ProbKb, name: &str) -> Vec<&QueryFact> {
        match kb.relations.get(name) {
            Some(id) => self.by_relation(RelationId(id)),
            None => Vec::new(),
        }
    }

    /// Facts mentioning an entity (either side).
    pub fn about(&self, entity: EntityId) -> Vec<&QueryFact> {
        self.by_entity
            .get(&entity)
            .map(|idxs| idxs.iter().map(|&i| &self.facts[i]).collect())
            .unwrap_or_default()
    }

    /// Facts mentioning an entity by name.
    pub fn about_name(&self, kb: &ProbKb, name: &str) -> Vec<&QueryFact> {
        match kb.entities.get(name) {
            Some(id) => self.about(EntityId(id)),
            None => Vec::new(),
        }
    }

    /// Inferred facts with probability ≥ `threshold`, most probable
    /// first — the "give me the new knowledge you're sure about" query.
    pub fn confident_inferences(&self, threshold: f64) -> Vec<&QueryFact> {
        let mut out: Vec<&QueryFact> = self
            .facts
            .iter()
            .filter(|f| f.inferred && f.probability.is_some_and(|p| p >= threshold))
            .collect();
        out.sort_by(|a, b| {
            b.probability
                .unwrap_or(0.0)
                .total_cmp(&a.probability.unwrap_or(0.0))
        });
        out
    }

    /// Does the KB (now) contain `rel(x, y)`? Returns its probability.
    pub fn lookup(&self, rel: RelationId, x: EntityId, y: EntityId) -> Option<&QueryFact> {
        self.by_relation
            .get(&rel)?
            .iter()
            .map(|&i| &self.facts[i])
            .find(|f| f.x == x && f.y == y)
    }

    /// Render a fact for humans.
    pub fn describe(&self, kb: &ProbKb, fact: &QueryFact) -> String {
        let rel = kb.relations.resolve(fact.rel.raw()).unwrap_or("?");
        let x = kb.entities.resolve(fact.x.raw()).unwrap_or("?");
        let y = kb.entities.resolve(fact.y.raw()).unwrap_or("?");
        let tag = if fact.inferred { "inferred" } else { "extracted" };
        match fact.probability {
            Some(p) => format!("[{tag}, P={p:.2}] {rel}({x}, {y})"),
            None => format!("[{tag}] {rel}({x}, {y})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, PipelineOptions};
    use probkb_inference::prelude::GibbsConfig;
    use probkb_kb::prelude::parse;

    fn expanded() -> (ProbKb, ExpandedKb) {
        let kb = parse(
            r#"
            fact 2.0 born_in(RG:Writer, NYC:City)
            fact 1.5 born_in(AB:Writer, SF:City)
            rule 2.0 live_in(x:Writer, y:City) :- born_in(x, y)
            "#,
        )
        .unwrap()
        .build();
        let result = run_pipeline(
            &kb,
            &PipelineOptions {
                gibbs: GibbsConfig {
                    burn_in: 100,
                    samples: 2000,
                    seed: 8,
                    ..GibbsConfig::default()
                },
                ..PipelineOptions::default()
            },
        )
        .unwrap();
        let view = ExpandedKb::from_pipeline(&result);
        (kb, view)
    }

    #[test]
    fn indexes_cover_all_facts() {
        let (kb, view) = expanded();
        assert_eq!(view.len(), 4); // 2 base + 2 inferred
        assert!(!view.is_empty());
        assert_eq!(view.by_relation_name(&kb, "born_in").len(), 2);
        assert_eq!(view.by_relation_name(&kb, "live_in").len(), 2);
        assert_eq!(view.by_relation_name(&kb, "nope").len(), 0);
    }

    #[test]
    fn entity_queries_cover_both_sides() {
        let (kb, view) = expanded();
        let rg = view.about_name(&kb, "RG");
        assert_eq!(rg.len(), 2); // born_in + live_in
        let nyc = view.about_name(&kb, "NYC");
        assert_eq!(nyc.len(), 2);
        assert!(view.about_name(&kb, "ghost").is_empty());
    }

    #[test]
    fn confident_inferences_sorted_and_thresholded() {
        let (_, view) = expanded();
        let confident = view.confident_inferences(0.5);
        assert!(!confident.is_empty());
        assert!(confident.iter().all(|f| f.inferred));
        for pair in confident.windows(2) {
            assert!(pair[0].probability >= pair[1].probability);
        }
        // An impossible threshold yields nothing.
        assert!(view.confident_inferences(1.01).is_empty());
    }

    #[test]
    fn lookup_and_describe() {
        let (kb, view) = expanded();
        let rel = RelationId(kb.relations.get("live_in").unwrap());
        let x = EntityId(kb.entities.get("RG").unwrap());
        let y = EntityId(kb.entities.get("NYC").unwrap());
        let fact = view.lookup(rel, x, y).expect("inferred fact queryable");
        assert!(fact.inferred);
        let text = view.describe(&kb, fact);
        assert!(text.contains("live_in(RG, NYC)"));
        assert!(text.contains("inferred"));
        assert!(view.lookup(rel, y, x).is_none());
    }
}
