//! # ProbKB
//!
//! A from-scratch Rust reproduction of *Knowledge Expansion over
//! Probabilistic Knowledge Bases* (Chen & Wang, SIGMOD 2014): a
//! probabilistic knowledge base system that infers missing facts at scale
//! by storing Markov-logic rules as relational tables and grounding them
//! with batched join queries, on single-node and shared-nothing MPP
//! backends, with quality control that keeps machine-built KBs from
//! drowning in propagated errors.
//!
//! The workspace crates (all re-exported here):
//!
//! | crate | role |
//! |---|---|
//! | [`relational`] | in-memory set-oriented relational engine (PostgreSQL stand-in) |
//! | [`mpp`] | shared-nothing MPP simulator with motions + redistributed views (Greenplum stand-in) |
//! | [`kb`] | the probabilistic KB model: entities, classes, typed facts, Horn rules, constraints |
//! | [`core`] | the paper's contribution: relational MLN model + batch grounding (Algorithm 1) |
//! | [`factorgraph`] | ground factor graphs, lineage, coloring, JSON export |
//! | [`inference`] | Gibbs sampling (sequential + chromatic parallel) and an exact oracle |
//! | [`quality`] | constraints, ambiguity detection, rule cleaning, precision evaluation |
//! | [`datagen`] | ReVerb-Sherlock-style synthetic workloads with ground truth |
//! | [`storage`] | durable storage: snapshots, write-ahead log, checkpoint codecs |
//!
//! ## End-to-end example
//!
//! ```
//! use probkb::pipeline::{run_pipeline, PipelineOptions};
//! use probkb::kb::parser::parse;
//!
//! let kb = parse(r#"
//!     fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
//!     rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
//! "#).unwrap().build();
//!
//! let result = run_pipeline(&kb, &PipelineOptions::default()).unwrap();
//! assert_eq!(result.expansion.new_facts.len(), 1);
//! // The inferred fact now carries an estimated marginal probability.
//! let p = result.marginal_of_new_fact(0).unwrap();
//! assert!(p > 0.5 && p < 1.0);
//! ```

pub use probkb_core as core;
pub use probkb_datagen as datagen;
pub use probkb_factorgraph as factorgraph;
pub use probkb_inference as inference;
pub use probkb_kb as kb;
pub use probkb_mpp as mpp;
pub use probkb_quality as quality;
pub use probkb_relational as relational;
pub use probkb_storage as storage;

pub mod query;

pub mod pipeline {
    //! The full ProbKB pipeline of Figure 1: grounding → factor graph →
    //! marginal inference → write marginals back into the KB.

    use probkb_core::prelude::{
        expand, DeltaReport, DeltaSession, ExpandOptions, Expansion, GroundingConfig, KbDelta,
    };
    use probkb_factorgraph::prelude::{
        color, extend_color, from_phi, Coloring, GroundGraph, Lineage, VarId,
    };
    use probkb_inference::prelude::{
        belief_propagation, blanket_of, blanket_resample_with, chromatic_marginals,
        gibbs_marginals, partitioned_marginals, write_marginals, BlanketReport, BpConfig,
        GibbsConfig, GibbsReport, Marginals,
    };
    use probkb_kb::prelude::ProbKb;
    use probkb_relational::prelude::{Result, Table};

    /// Which engine runs the marginal-inference stage.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Sampler {
        /// Sequential Gibbs.
        Gibbs,
        /// Chromatic parallel Gibbs with the given thread count.
        ChromaticGibbs(usize),
        /// Partition-sharded multi-chain Gibbs with online convergence
        /// control (chains/workers/target R̂ come from the `gibbs` config;
        /// the worker count never changes results).
        Partitioned,
        /// Deterministic loopy belief propagation.
        BeliefPropagation(BpConfig),
    }

    /// Options for [`run_pipeline`].
    #[derive(Debug, Clone)]
    pub struct PipelineOptions {
        /// Grounding backend and configuration.
        pub expand: ExpandOptions,
        /// Sampler selection.
        pub sampler: Sampler,
        /// Sampler schedule.
        pub gibbs: GibbsConfig,
    }

    impl Default for PipelineOptions {
        fn default() -> Self {
            PipelineOptions {
                expand: ExpandOptions::default(),
                sampler: Sampler::Gibbs,
                gibbs: GibbsConfig::default(),
            }
        }
    }

    /// The pipeline's outputs.
    #[derive(Debug)]
    pub struct PipelineResult {
        /// Knowledge expansion result (facts, factors, report).
        pub expansion: Expansion,
        /// The ground factor graph with fact-id mapping.
        pub graph: GroundGraph,
        /// Estimated marginals.
        pub marginals: Marginals,
        /// Inference execution report with `workers=`/`sweeps=`/`rhat=`
        /// annotations (populated by [`Sampler::Partitioned`]).
        pub inference: Option<GibbsReport>,
        /// `TΠ` with NULL weights replaced by marginals.
        pub facts_with_marginals: Table,
        /// Lineage index over `TΦ`.
        pub lineage: Lineage,
    }

    impl PipelineResult {
        /// The marginal probability of the `i`-th newly inferred fact.
        pub fn marginal_of_new_fact(&self, i: usize) -> Option<f64> {
            use probkb_core::relmodel::tpi;
            let mut seen = 0usize;
            for row in self.expansion.outcome.facts.rows() {
                if row[tpi::W].is_null() {
                    if seen == i {
                        let id = row[tpi::I].as_int()?;
                        let var = self.graph.var_of(id)?;
                        return Some(self.marginals.p[var]);
                    }
                    seen += 1;
                }
            }
            None
        }
    }

    /// Run the full pipeline.
    pub fn run_pipeline(kb: &ProbKb, options: &PipelineOptions) -> Result<PipelineResult> {
        let expansion = expand(kb, &options.expand)?;
        let graph = from_phi(&expansion.outcome.factors);
        let mut inference = None;
        let marginals = match options.sampler {
            Sampler::Gibbs => gibbs_marginals(&graph.graph, &options.gibbs),
            Sampler::ChromaticGibbs(threads) => {
                chromatic_marginals(&graph.graph, threads, &options.gibbs)
            }
            Sampler::Partitioned => {
                let run = partitioned_marginals(&graph.graph, &options.gibbs);
                inference = Some(run.report);
                run.marginals
            }
            Sampler::BeliefPropagation(config) => {
                belief_propagation(&graph.graph, &config).marginals
            }
        };
        let (facts_with_marginals, _) =
            write_marginals(&expansion.outcome.facts, &graph, &marginals);
        let lineage = Lineage::from_phi(&expansion.outcome.factors);
        Ok(PipelineResult {
            expansion,
            graph,
            marginals,
            inference,
            facts_with_marginals,
            lineage,
        })
    }

    /// What one [`IncrementalPipeline::apply_delta`] call did.
    #[derive(Debug)]
    pub struct PipelineDelta {
        /// Grounding-side report (rounds, reuse counters, fallback flag).
        pub grounding: DeltaReport,
        /// Inference-side report: how much of the graph was resampled.
        pub inference: BlanketReport,
        /// Old fact id → new fact id (the delta may renumber: new base
        /// facts take low ids ahead of previously derived facts). Empty
        /// when the delta fell back to a full re-ground.
        pub remap: Vec<i64>,
        /// Post-delta fact ids whose conditional changed (the resampled
        /// Markov blanket) — the invalidation set query-time local
        /// caches check their support against. Empty when the delta
        /// fell back to a full re-ground (everything changed).
        pub touched_facts: Vec<i64>,
    }

    /// A live expansion pipeline: grounded state, factor graph, coloring,
    /// warm Gibbs chains, and marginals — all maintained **in place** as
    /// deltas arrive, instead of re-running Figure 1 from scratch.
    ///
    /// Each [`IncrementalPipeline::apply_delta`] grounds only what the
    /// delta can derive ([`DeltaSession`]), splices the new factors into
    /// the existing graph, extends the coloring, and resamples only the
    /// Markov blanket of the touched variables with warm-started chains.
    #[derive(Debug)]
    pub struct IncrementalPipeline {
        session: DeltaSession,
        graph: GroundGraph,
        coloring: Coloring,
        chains: Vec<Vec<bool>>,
        marginals: Vec<f64>,
        gibbs: GibbsConfig,
    }

    impl IncrementalPipeline {
        /// Ground `kb` from scratch and run a full cold-start sampling
        /// pass, establishing the state later deltas update in place. The
        /// session is [`DeltaSession::prepare`]d here, so the first
        /// delta's apply latency excludes that maintenance; call
        /// [`IncrementalPipeline::prepare`] between deltas to keep it off
        /// the critical path for subsequent ones.
        pub fn new(kb: ProbKb, config: GroundingConfig, gibbs: GibbsConfig) -> Result<Self> {
            let mut session = DeltaSession::new(kb, config)?;
            session.prepare()?;
            let graph = from_phi(session.factors());
            let coloring = color(&graph.graph);
            let mut pipeline = IncrementalPipeline {
                session,
                graph,
                coloring,
                chains: Vec::new(),
                marginals: Vec::new(),
                gibbs,
            };
            pipeline.rebuild_all();
            Ok(pipeline)
        }

        /// Re-derive graph, coloring, and marginals from the session's
        /// current factors (cold start; used at construction and after a
        /// constraint-driven full-fallback delta).
        fn rebuild_all(&mut self) -> BlanketReport {
            self.graph = from_phi(self.session.factors());
            self.coloring = color(&self.graph.graph);
            let n = self.graph.graph.num_vars();
            let all: Vec<VarId> = (0..n).collect();
            let run = blanket_resample_with(
                &self.graph.graph,
                &self.coloring,
                &all,
                &[],
                &vec![0.5; n],
                &self.gibbs,
            );
            self.chains = run.states;
            self.marginals = run.marginals.p;
            run.report
        }

        /// Merge `delta` into the live pipeline. Returns both reports;
        /// marginals for untouched variables are carried through.
        pub fn apply_delta(&mut self, delta: &KbDelta) -> Result<PipelineDelta> {
            use probkb_core::relmodel::tphi;

            let applied = self.session.apply_delta(delta)?;
            if applied.report.full_fallback {
                let inference = self.rebuild_all();
                return Ok(PipelineDelta {
                    grounding: applied.report,
                    inference,
                    remap: applied.remap,
                    touched_facts: Vec::new(),
                });
            }

            // Renumber existing variables to post-delta fact ids, then
            // splice in the delta's factors.
            let remap = &applied.remap;
            self.graph
                .remap_fact_ids(|id| remap.get(id as usize).copied().unwrap_or(id));
            let old_num_vars = self.graph.graph.num_vars();
            self.graph.extend_with(&applied.added_factors);
            self.coloring = extend_color(&self.graph.graph, &self.coloring, old_num_vars);

            // Every variable an added factor touches has a changed
            // conditional — seed the blanket from all of them, not just
            // the brand-new variables.
            let mut seeds: Vec<VarId> = Vec::new();
            for row in applied.added_factors.rows() {
                for col in [tphi::I1, tphi::I2, tphi::I3] {
                    if let Some(id) = row[col].as_int() {
                        if let Some(v) = self.graph.var_of(id) {
                            seeds.push(v);
                        }
                    }
                }
            }
            seeds.sort_unstable();
            seeds.dedup();
            let touched = blanket_of(&self.graph.graph, &seeds);

            self.marginals.resize(self.graph.graph.num_vars(), 0.5);
            let run = blanket_resample_with(
                &self.graph.graph,
                &self.coloring,
                &touched,
                &self.chains,
                &self.marginals,
                &self.gibbs,
            );
            self.chains = run.states;
            self.marginals = run.marginals.p;
            let touched_facts = touched.iter().map(|&v| self.graph.fact_of(v)).collect();
            Ok(PipelineDelta {
                grounding: applied.report,
                inference: run.report,
                remap: applied.remap,
                touched_facts,
            })
        }

        /// The live grounding session (facts, factors, schedule).
        pub fn session(&self) -> &DeltaSession {
            &self.session
        }

        /// The sampler configuration the pipeline runs under (the
        /// serving layer reuses it for query-time local inference).
        pub fn gibbs(&self) -> &GibbsConfig {
            &self.gibbs
        }

        /// Parse KB-text statements into a [`KbDelta`] against the live
        /// session's id space (see [`DeltaSession::parse_delta`]). New
        /// names are interned immediately; nothing is grounded until the
        /// delta is passed to [`IncrementalPipeline::apply_delta`].
        pub fn parse_delta(
            &mut self,
            text: &str,
        ) -> std::result::Result<KbDelta, probkb_kb::parser::ParseError> {
            self.session.parse_delta(text)
        }

        /// Parse KB-text into the facts/rules it denotes, without
        /// duplicate suppression (see [`DeltaSession::parse_retraction`])
        /// — the ingestion path for retraction statements, which refer
        /// to facts that already exist.
        pub fn parse_retraction(
            &self,
            text: &str,
        ) -> std::result::Result<KbDelta, probkb_kb::parser::ParseError> {
            self.session.parse_retraction(text)
        }

        /// Retraction stub (see [`DeltaSession::retract`]): always
        /// returns the structured `Unsupported` error, leaving the
        /// pipeline untouched.
        pub fn retract(&mut self, retraction: &KbDelta) -> Result<()> {
            self.session.retract(retraction).map(|_| ())
        }

        /// Precompute the next delta's delta-independent grounding state
        /// ([`DeltaSession::prepare`]) — maintenance best done between
        /// deltas, off the update critical path.
        pub fn prepare(&mut self) -> Result<()> {
            self.session.prepare()
        }

        /// The live factor graph with fact-id mapping.
        pub fn graph(&self) -> &GroundGraph {
            &self.graph
        }

        /// Current per-variable marginal estimates.
        pub fn marginals(&self) -> &[f64] {
            &self.marginals
        }

        /// The estimated marginal of a `TΠ` fact id, if it has a
        /// variable (i.e. appears in some factor).
        pub fn marginal_of_fact(&self, fact_id: i64) -> Option<f64> {
            self.graph.var_of(fact_id).map(|v| self.marginals[v])
        }
    }
}

/// Convenient glob import: everything a downstream user typically needs.
pub mod prelude {
    pub use crate::pipeline::{
        run_pipeline, IncrementalPipeline, PipelineDelta, PipelineOptions, PipelineResult,
        Sampler,
    };
    pub use probkb_core::prelude::*;
    pub use probkb_datagen::prelude::*;
    pub use probkb_factorgraph::prelude::*;
    pub use probkb_inference::prelude::*;
    pub use probkb_kb::prelude::*;
    pub use probkb_quality::prelude::*;
    pub use probkb_storage::prelude::*;
}
