//! # ProbKB
//!
//! A from-scratch Rust reproduction of *Knowledge Expansion over
//! Probabilistic Knowledge Bases* (Chen & Wang, SIGMOD 2014): a
//! probabilistic knowledge base system that infers missing facts at scale
//! by storing Markov-logic rules as relational tables and grounding them
//! with batched join queries, on single-node and shared-nothing MPP
//! backends, with quality control that keeps machine-built KBs from
//! drowning in propagated errors.
//!
//! The workspace crates (all re-exported here):
//!
//! | crate | role |
//! |---|---|
//! | [`relational`] | in-memory set-oriented relational engine (PostgreSQL stand-in) |
//! | [`mpp`] | shared-nothing MPP simulator with motions + redistributed views (Greenplum stand-in) |
//! | [`kb`] | the probabilistic KB model: entities, classes, typed facts, Horn rules, constraints |
//! | [`core`] | the paper's contribution: relational MLN model + batch grounding (Algorithm 1) |
//! | [`factorgraph`] | ground factor graphs, lineage, coloring, JSON export |
//! | [`inference`] | Gibbs sampling (sequential + chromatic parallel) and an exact oracle |
//! | [`quality`] | constraints, ambiguity detection, rule cleaning, precision evaluation |
//! | [`datagen`] | ReVerb-Sherlock-style synthetic workloads with ground truth |
//! | [`storage`] | durable storage: snapshots, write-ahead log, checkpoint codecs |
//!
//! ## End-to-end example
//!
//! ```
//! use probkb::pipeline::{run_pipeline, PipelineOptions};
//! use probkb::kb::parser::parse;
//!
//! let kb = parse(r#"
//!     fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
//!     rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
//! "#).unwrap().build();
//!
//! let result = run_pipeline(&kb, &PipelineOptions::default()).unwrap();
//! assert_eq!(result.expansion.new_facts.len(), 1);
//! // The inferred fact now carries an estimated marginal probability.
//! let p = result.marginal_of_new_fact(0).unwrap();
//! assert!(p > 0.5 && p < 1.0);
//! ```

pub use probkb_core as core;
pub use probkb_datagen as datagen;
pub use probkb_factorgraph as factorgraph;
pub use probkb_inference as inference;
pub use probkb_kb as kb;
pub use probkb_mpp as mpp;
pub use probkb_quality as quality;
pub use probkb_relational as relational;
pub use probkb_storage as storage;

pub mod query;

pub mod pipeline {
    //! The full ProbKB pipeline of Figure 1: grounding → factor graph →
    //! marginal inference → write marginals back into the KB.

    use probkb_core::prelude::{expand, ExpandOptions, Expansion};
    use probkb_factorgraph::prelude::{from_phi, GroundGraph, Lineage};
    use probkb_inference::prelude::{
        belief_propagation, chromatic_marginals, gibbs_marginals, partitioned_marginals,
        write_marginals, BpConfig, GibbsConfig, GibbsReport, Marginals,
    };
    use probkb_kb::prelude::ProbKb;
    use probkb_relational::prelude::{Result, Table};

    /// Which engine runs the marginal-inference stage.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Sampler {
        /// Sequential Gibbs.
        Gibbs,
        /// Chromatic parallel Gibbs with the given thread count.
        ChromaticGibbs(usize),
        /// Partition-sharded multi-chain Gibbs with online convergence
        /// control (chains/workers/target R̂ come from the `gibbs` config;
        /// the worker count never changes results).
        Partitioned,
        /// Deterministic loopy belief propagation.
        BeliefPropagation(BpConfig),
    }

    /// Options for [`run_pipeline`].
    #[derive(Debug, Clone)]
    pub struct PipelineOptions {
        /// Grounding backend and configuration.
        pub expand: ExpandOptions,
        /// Sampler selection.
        pub sampler: Sampler,
        /// Sampler schedule.
        pub gibbs: GibbsConfig,
    }

    impl Default for PipelineOptions {
        fn default() -> Self {
            PipelineOptions {
                expand: ExpandOptions::default(),
                sampler: Sampler::Gibbs,
                gibbs: GibbsConfig::default(),
            }
        }
    }

    /// The pipeline's outputs.
    #[derive(Debug)]
    pub struct PipelineResult {
        /// Knowledge expansion result (facts, factors, report).
        pub expansion: Expansion,
        /// The ground factor graph with fact-id mapping.
        pub graph: GroundGraph,
        /// Estimated marginals.
        pub marginals: Marginals,
        /// Inference execution report with `workers=`/`sweeps=`/`rhat=`
        /// annotations (populated by [`Sampler::Partitioned`]).
        pub inference: Option<GibbsReport>,
        /// `TΠ` with NULL weights replaced by marginals.
        pub facts_with_marginals: Table,
        /// Lineage index over `TΦ`.
        pub lineage: Lineage,
    }

    impl PipelineResult {
        /// The marginal probability of the `i`-th newly inferred fact.
        pub fn marginal_of_new_fact(&self, i: usize) -> Option<f64> {
            use probkb_core::relmodel::tpi;
            let mut seen = 0usize;
            for row in self.expansion.outcome.facts.rows() {
                if row[tpi::W].is_null() {
                    if seen == i {
                        let id = row[tpi::I].as_int()?;
                        let var = self.graph.var_of(id)?;
                        return Some(self.marginals.p[var]);
                    }
                    seen += 1;
                }
            }
            None
        }
    }

    /// Run the full pipeline.
    pub fn run_pipeline(kb: &ProbKb, options: &PipelineOptions) -> Result<PipelineResult> {
        let expansion = expand(kb, &options.expand)?;
        let graph = from_phi(&expansion.outcome.factors);
        let mut inference = None;
        let marginals = match options.sampler {
            Sampler::Gibbs => gibbs_marginals(&graph.graph, &options.gibbs),
            Sampler::ChromaticGibbs(threads) => {
                chromatic_marginals(&graph.graph, threads, &options.gibbs)
            }
            Sampler::Partitioned => {
                let run = partitioned_marginals(&graph.graph, &options.gibbs);
                inference = Some(run.report);
                run.marginals
            }
            Sampler::BeliefPropagation(config) => {
                belief_propagation(&graph.graph, &config).marginals
            }
        };
        let (facts_with_marginals, _) =
            write_marginals(&expansion.outcome.facts, &graph, &marginals);
        let lineage = Lineage::from_phi(&expansion.outcome.factors);
        Ok(PipelineResult {
            expansion,
            graph,
            marginals,
            inference,
            facts_with_marginals,
            lineage,
        })
    }
}

/// Convenient glob import: everything a downstream user typically needs.
pub mod prelude {
    pub use crate::pipeline::{run_pipeline, PipelineOptions, PipelineResult, Sampler};
    pub use probkb_core::prelude::*;
    pub use probkb_datagen::prelude::*;
    pub use probkb_factorgraph::prelude::*;
    pub use probkb_inference::prelude::*;
    pub use probkb_kb::prelude::*;
    pub use probkb_quality::prelude::*;
    pub use probkb_storage::prelude::*;
}
